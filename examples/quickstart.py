#!/usr/bin/env python
"""Quickstart: auto-configure a small 802.11n WLAN with ACORN.

Builds a two-cell network by link quality, runs the full ACORN pass
(Algorithm 1 association + Algorithm 2 CB-aware allocation) and compares
the result against the greedy single-width baseline the paper calls
"[17]".

Run:  python examples/quickstart.py
"""

from repro import Acorn, ChannelPlan, Network
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController


def build_network() -> Network:
    """Two APs: one cell of poor clients, one cell of good clients."""
    network = Network()
    network.add_ap("AP-lab")
    network.add_ap("AP-lounge")
    # Link qualities are 20 MHz per-subcarrier SNRs in dB. Anything
    # under ~4 dB is a "poor" link that channel bonding would strand.
    links = {
        ("AP-lab", "sensor-1"): 1.0,
        ("AP-lab", "sensor-2"): 2.0,
        ("AP-lounge", "laptop-1"): 25.0,
        ("AP-lounge", "laptop-2"): 27.0,
    }
    for (ap_id, client_id), snr_db in links.items():
        if client_id not in network.client_ids:
            network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr_db)
    # The cells are far apart: no interference edges.
    network.set_explicit_conflicts([])
    return network


def main() -> None:
    plan = ChannelPlan()  # the twelve 5 GHz channels + six bonded pairs
    order = ["sensor-1", "laptop-1", "sensor-2", "laptop-2"]

    acorn = Acorn(build_network(), plan, seed=7)
    acorn_result = acorn.configure(order)

    baseline = KauffmannController(build_network(), plan)
    baseline_result = baseline.configure(order)

    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        rows.append(
            [
                ap_id,
                str(acorn_result.report.assignment[ap_id]),
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
            ]
        )
    rows.append(
        ["TOTAL", "", acorn_result.total_mbps, baseline_result.total_mbps]
    )
    print(
        render_table(
            ["AP", "ACORN channel", "ACORN (Mbps)", "greedy 40 MHz (Mbps)"],
            rows,
            float_format=".1f",
            title="ACORN vs greedy single-width configuration",
        )
    )
    print()
    print(
        "ACORN kept the poor cell on a 20 MHz channel — bonding would "
        "have lowered its per-subcarrier SNR by ~3 dB and stranded the "
        "sensors (the greedy column)."
    )


if __name__ == "__main__":
    main()
