#!/usr/bin/env python
"""Enterprise deployment: configure a multi-cell office WLAN.

Recreates the paper's Topology 2 flavour of deployment — five APs with
a mix of good, marginal, and poor clients, some of whom hear several
APs — and walks through what ACORN actually decides:

* which AP each client joins (Eq. 4 quality grouping),
* which cells get a bonded 40 MHz channel,
* per-AP and total throughput against the legacy greedy baseline,
* and the random-configuration comparison of Table 3.

Run:  python examples/enterprise_wlan.py
"""

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController, RandomConfigurator
from repro.net import ThroughputModel
from repro.sim import topology2


def main() -> None:
    scenario = topology2()
    model = ThroughputModel()

    acorn = Acorn(scenario.network, scenario.plan, model, seed=7)
    acorn_result = acorn.configure(scenario.client_order)

    baseline_scenario = topology2()
    baseline = KauffmannController(
        baseline_scenario.network, baseline_scenario.plan, ThroughputModel()
    )
    baseline_result = baseline.configure(baseline_scenario.client_order)

    # --- per-AP comparison -------------------------------------------
    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        acorn_clients = [
            c for c, ap in acorn_result.report.associations.items() if ap == ap_id
        ]
        rows.append(
            [
                ap_id,
                str(acorn_result.report.assignment[ap_id]),
                len(acorn_clients),
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
            ]
        )
    rows.append(
        [
            "TOTAL",
            "",
            len(acorn_result.report.associations),
            acorn_result.total_mbps,
            baseline_result.total_mbps,
        ]
    )
    print(
        render_table(
            ["AP", "ACORN channel", "clients", "ACORN (Mbps)", "[17] (Mbps)"],
            rows,
            float_format=".1f",
            title="Five-AP enterprise WLAN (the paper's Topology 2 shape)",
        )
    )

    # --- association detail ------------------------------------------
    print()
    print("ACORN associations (clients grouped by link quality):")
    by_ap = {}
    for client_id, ap_id in sorted(acorn_result.report.associations.items()):
        by_ap.setdefault(ap_id, []).append(client_id)
    for ap_id, clients in sorted(by_ap.items()):
        print(f"  {ap_id}: {', '.join(clients)}")

    # --- Table 3 style random comparison ------------------------------
    configurator = RandomConfigurator(
        scenario.network, acorn.graph, scenario.plan, model
    )
    best = configurator.best(50, keep=10, rng=5)
    print()
    print(
        f"ACORN total: {acorn_result.total_mbps:.1f} Mbps — best of 50 "
        f"random manual configurations: {best[0].total_mbps:.1f} Mbps "
        f"(10th best: {best[-1].total_mbps:.1f})"
    )


if __name__ == "__main__":
    main()
