#!/usr/bin/env python
"""The per-channel scanning extension: accuracy vs convergence time.

Section 4.2 sketches a variant of ACORN where "each AP scans (one at a
time) all the available channels and gets more accurate information
regarding the link quality to its clients ... however, this would add
more complexity and increase the convergence time". This example makes
both sides of that trade-off concrete:

* On MIMO hardware (per-channel variation ~0, the Fig 8 finding) the
  scan buys nothing — the width-calibrated single measurement already
  predicts every channel.
* On frequency-selective (SISO-like) links, scan-informed allocation
  finds better channels, at a scan-time cost that grows linearly with
  the channel count.

Run:  python examples/scanning_tradeoff.py
"""

from repro.analysis.tables import render_table
from repro.core import ChannelScanner, ScanningThroughputModel, allocate_channels
from repro.net import ChannelPlan, Network, ThroughputModel, build_interference_graph


def build_network() -> Network:
    network = Network()
    network.add_ap("AP1")
    network.add_ap("AP2")
    for client_id, ap_id, snr in (
        ("u1", "AP1", 12.0),
        ("u2", "AP1", 15.0),
        ("u3", "AP2", 18.0),
        ("u4", "AP2", 22.0),
    ):
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts([("AP1", "AP2")])
    return network


def run_case(variation_db: float) -> dict:
    """Allocate with and without scan information; truth = scanned."""
    network = build_network()
    graph = build_interference_graph(network)
    plan = ChannelPlan().subset(6)
    scanner = ChannelScanner(variation_sigma_db=variation_db, seed=3)
    truth = ScanningThroughputModel(scanner=scanner)

    informed = allocate_channels(network, graph, plan, truth, rng=0)
    blind = allocate_channels(
        network, graph, plan, truth, rng=0, decision_model=ThroughputModel()
    )
    # Account the scan airtime each AP would burn.
    scanner.scan_time_s = 0.0
    for ap_id in network.ap_ids:
        scanner.scan(network, ap_id, plan)
    return {
        "variation": variation_db,
        "informed": informed.aggregate_mbps,
        "blind": blind.aggregate_mbps,
        "scan_time": scanner.scan_time_s,
    }


def main() -> None:
    rows = []
    for variation_db in (0.0, 3.0, 6.0):
        case = run_case(variation_db)
        rows.append(
            [
                case["variation"],
                case["blind"],
                case["informed"],
                case["informed"] - case["blind"],
                case["scan_time"],
            ]
        )
    print(
        render_table(
            [
                "per-channel sigma (dB)",
                "width-only (Mbps)",
                "scan-informed (Mbps)",
                "gain (Mbps)",
                "scan cost (s)",
            ],
            rows,
            float_format=".1f",
            title="Scanning extension: allocation quality vs convergence cost",
        )
    )
    print()
    print(
        "With MIMO-flat channels (sigma = 0, the paper's Fig 8 regime) "
        "scanning buys nothing and only costs airtime — which is why "
        "base ACORN skips it. Frequency-selective links change the math."
    )


if __name__ == "__main__":
    main()
