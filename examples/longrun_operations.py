#!/usr/bin/env python
"""Operations view: a working day of ACORN-managed WLAN.

Runs the full operational loop an enterprise controller would:

1. build and configure the WLAN,
2. persist the configuration to JSON (auditable, diffable),
3. simulate four hours of client churn (CRAWDAD-calibrated session
   lengths, Poisson arrivals) under three re-allocation policies,
4. report the throughput/stability trade-off behind T = 30 min.

Run:  python examples/longrun_operations.py
"""

import json
import tempfile

from repro.analysis.tables import render_table
from repro.net import ChannelPlan, Network, dump_network, load_network
from repro.sim.longrun import ChurnConfig, run_long_run


def build_wlan() -> Network:
    """A four-AP office floor with a chain of interference edges."""
    network = Network()
    for index in range(4):
        network.add_ap(f"AP{index + 1}")
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4")]
    )
    return network


def main() -> None:
    plan = ChannelPlan().subset(6)

    # --- persistence round trip ----------------------------------------
    network = build_wlan()
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        path = handle.name
    dump_network(network, path)
    network = load_network(path)
    with open(path, encoding="utf-8") as handle:
        n_keys = len(json.load(handle))
    print(f"configuration persisted to JSON ({n_keys} top-level keys) and reloaded")
    print()

    # --- periodicity sweep ----------------------------------------------
    rows = []
    for period_min in (5, 30, 120):
        config = ChurnConfig(
            duration_s=4 * 3600.0, period_s=period_min * 60.0, seed=3
        )
        result = run_long_run(build_wlan(), plan, config)
        rows.append(
            [
                period_min,
                result.mean_throughput_mbps,
                result.n_reallocations,
                result.downtime_s,
                result.n_arrivals,
            ]
        )
    print(
        render_table(
            [
                "re-allocation period (min)",
                "mean throughput (Mbps)",
                "re-allocations",
                "downtime (s)",
                "client arrivals",
            ],
            rows,
            float_format=".1f",
            title="Four hours of churned operation, three control policies",
        )
    )
    print()
    print(
        "Re-allocating every 5 minutes burns throughput on channel-switch "
        "downtime; every 2 hours leaves stale width decisions as the "
        "client mix drifts. The paper's 30-minute period — the median "
        "association duration — balances the two."
    )


if __name__ == "__main__":
    main()
