#!/usr/bin/env python
"""Beyond the paper: ACORN on the partially-overlapped 2.4 GHz band.

The paper evaluates on the 5 GHz band, where channels are orthogonal
and a conflict is binary. Its reference [7] (Mishra et al.) shows the
2.4 GHz band's partially overlapped channels are a resource, not a
hazard — neighbours cost airtime *in proportion to spectral overlap*.
This example runs Algorithm 2 with the weighted contention model on a
2.4 GHz plan and shows it spreading APs across partially overlapped
channels (the 1/4/8/11-style packing) instead of collapsing onto the
three orthogonal ones.

Run:  python examples/partial_overlap_24ghz.py
"""

from repro.analysis.tables import render_table
from repro.core import allocate_channels
from repro.net import (
    Channel,
    ChannelPlan,
    Network,
    ThroughputModel,
    WeightedThroughputModel,
    build_interference_graph,
    spectral_overlap_fraction,
)


def build_network(n_aps: int = 4) -> Network:
    """Four mutually audible APs, one good client each."""
    network = Network()
    conflicts = []
    for index in range(n_aps):
        ap_id = f"AP{index + 1}"
        network.add_ap(ap_id)
        client_id = f"u{index + 1}"
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, 25.0)
        network.associate(client_id, ap_id)
        for other in range(index):
            conflicts.append((f"AP{other + 1}", ap_id))
    network.set_explicit_conflicts(conflicts)
    return network


def main() -> None:
    # The 2.4 GHz band: 11 channels, 5 MHz apart, no bonding (2.4 GHz
    # bonding was rare and is omitted here).
    plan = ChannelPlan(list(range(1, 12)), bonded_pairs=[])

    # Ground truth on 2.4 GHz is the weighted model (partial overlap is
    # physically real there); the binary model acts as the *decision*
    # maker that cannot see it.
    truth = WeightedThroughputModel()
    results = {}
    for label, decision_model in (
        ("binary conflicts (paper's model)", ThroughputModel()),
        ("weighted partial overlap ([7])", None),  # decide with the truth
    ):
        network = build_network()
        graph = build_interference_graph(network)
        allocation = allocate_channels(
            network, graph, plan, truth, rng=1, decision_model=decision_model
        )
        results[label] = (allocation, network)

    rows = []
    for label, (allocation, network) in results.items():
        channels = [
            allocation.assignment[ap_id].primary for ap_id in network.ap_ids
        ]
        rows.append(
            [label, " ".join(str(c) for c in channels), allocation.aggregate_mbps]
        )
    print(
        render_table(
            ["allocator's contention model", "channels (AP1..AP4)", "true total (Mbps)"],
            rows,
            float_format=".1f",
            title=(
                "Four contending APs on eleven 2.4 GHz channels\n"
                "(both allocations scored under the weighted ground truth)"
            ),
        )
    )

    _, (allocation, network) = list(results.items())[1]
    print()
    print("Pairwise spectral overlap under the weighted allocation:")
    ap_ids = network.ap_ids
    for i, ap_a in enumerate(ap_ids):
        for ap_b in ap_ids[i + 1 :]:
            fraction = spectral_overlap_fraction(
                allocation.assignment[ap_a], allocation.assignment[ap_b]
            )
            print(
                f"  {ap_a} ch{allocation.assignment[ap_a].primary} / "
                f"{ap_b} ch{allocation.assignment[ap_b].primary}: "
                f"{fraction:.0%}"
            )
    print()
    print(
        "The binary model sees only 3 orthogonal channels (1/6/11) for 4 "
        "APs, so someone must fully share; the weighted model spreads the "
        "four APs with small partial overlaps instead — reference [7]'s "
        "point, quantified."
    )


if __name__ == "__main__":
    main()
