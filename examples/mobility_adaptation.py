#!/usr/bin/env python
"""Mobility: opportunistic 20/40 MHz switching as a client walks.

The Fig 13 experiment: one AP with two static, good clients and a
laptop walking away (then toward). Because the AP owns both halves of
its bonded allocation, it can drop to the primary 20 MHz channel at any
time without changing the interference projected on neighbours — ACORN
uses that freedom whenever the estimator says the wide channel hurts.

Run:  python examples/mobility_adaptation.py
"""

from repro.analysis.tables import render_table
from repro.sim.mobility import run_mobility_experiment


def show_trace(direction: str, reference: str) -> None:
    trace = run_mobility_experiment(direction, duration_s=50.0)
    rows = []
    for index in range(0, len(trace.times_s), 5):
        rows.append(
            [
                trace.times_s[index],
                trace.mobile_snr20_db[index],
                f"{trace.acorn_width_mhz[index]} MHz",
                trace.acorn_mbps[index],
                trace.fixed_mbps[index],
            ]
        )
    print(
        render_table(
            ["t (s)", "mobile SNR (dB)", "ACORN width", "ACORN (Mbps)", f"fixed {reference} (Mbps)"],
            rows,
            float_format=".1f",
            title=f"Walking {direction} from the AP — ACORN vs fixed {reference}",
        )
    )
    switch = trace.switch_time_s
    if switch is None:
        print("  ACORN never needed to switch widths.")
    else:
        print(
            f"  ACORN switched width at t = {switch:.0f} s and averaged "
            f"{trace.post_switch_gain():.1f}x the fixed configuration "
            "afterwards."
        )
    print()


def main() -> None:
    show_trace("away", "40 MHz")
    show_trace("toward", "20 MHz")
    print(
        "Walking away, the bonded channel strands the mobile client "
        "(3 dB less SNR per subcarrier) and the 802.11 performance "
        "anomaly drags the whole cell down — ACORN falls back to "
        "20 MHz. Walking toward the AP, ACORN re-enables bonding as "
        "soon as the link supports it."
    )


if __name__ == "__main__":
    main()
