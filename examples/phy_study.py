#!/usr/bin/env python
"""PHY study: why channel bonding is not panacea (Section 3).

Walks through the paper's measurement chain on the simulated WarpLab
substrate:

1. the ~3 dB per-subcarrier PSD drop at equal transmit power,
2. BER vs SNR (width-independent) and vs Tx (bonding worse),
3. the σ metric and the per-modcod transition SNRs (Table 1),
4. what this does to goodput through the 802.11n MCS ladder.

Run:  python examples/phy_study.py   (takes ~10 s)
"""

from repro.analysis.tables import render_table
from repro.link.budget import LinkBudget
from repro.link.quality import sigma_from_snr, transition_snr_db
from repro.mcs.selection import optimal_mcs
from repro.phy.modulation import QAM16, QAM64, QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.psd import occupied_band_level_db, welch_psd
from repro.warp.bermac import BerMacHarness
from repro.warp.waveform import OfdmTransmitter


def psd_comparison() -> None:
    rows = []
    for params in (OFDM_20MHZ, OFDM_40MHZ):
        transmitter = OfdmTransmitter(params=params, tx_power=1.0)
        frame = transmitter.build_frame(200, rng=0)
        payload = frame.samples[frame.preamble_length :]
        sample_rate = params.bandwidth_mhz * 1e6
        freqs, psd = welch_psd(
            payload, sample_rate, segment_length=params.fft_size * 4
        )
        level = occupied_band_level_db(freqs, psd, sample_rate * 0.8)
        rows.append([params.name, params.n_data, level])
    print(
        render_table(
            ["numerology", "data subcarriers", "occupied-band PSD (dB)"],
            rows,
            title="1. Equal power over more subcarriers -> ~3 dB/subcarrier drop",
        )
    )
    print()


def ber_comparison() -> None:
    rows = []
    for tx_dbm in (6.0, 10.0, 14.0):
        bers = {}
        for params in (OFDM_20MHZ, OFDM_40MHZ):
            harness = BerMacHarness(params, QPSK)
            measurement = harness.measure_at_tx_power(
                tx_dbm, path_loss_db=118.0, n_packets=20, packet_bytes=300,
                rng=int(tx_dbm),
            )
            bers[params.name] = measurement.ber
        rows.append([tx_dbm, bers["HT20"], bers["HT40"]])
    print(
        render_table(
            ["Tx (dBm)", "BER 20 MHz", "BER 40 MHz"],
            rows,
            float_format=".4f",
            title="2. At equal transmit power the bonded channel errs more",
        )
    )
    print()


def sigma_table() -> None:
    rows = []
    for label, modulation, rate in (
        ("QPSK 3/4", QPSK, 3 / 4),
        ("16QAM 3/4", QAM16, 3 / 4),
        ("64QAM 3/4", QAM64, 3 / 4),
        ("64QAM 5/6", QAM64, 5 / 6),
    ):
        boundary = transition_snr_db(modulation, rate)
        rows.append(
            [label, boundary, sigma_from_snr(boundary, modulation, rate) >= 2]
        )
    print(
        render_table(
            ["modcod", "sigma=2 boundary (dB)", "CB hurts below it"],
            rows,
            float_format=".1f",
            title="3. Transition SNRs rise with modulation aggressiveness (Table 1)",
        )
    )
    print()


def goodput_ladder() -> None:
    rows = []
    for snr20 in (0.0, 4.0, 10.0, 18.0, 26.0, 34.0):
        budget = LinkBudget.from_snr20(snr20)
        d20 = optimal_mcs(budget.subcarrier_snr_db(OFDM_20MHZ), OFDM_20MHZ)
        d40 = optimal_mcs(budget.subcarrier_snr_db(OFDM_40MHZ), OFDM_40MHZ)
        rows.append(
            [
                snr20,
                d20.mcs.label,
                d20.goodput_mbps,
                d40.mcs.label,
                d40.goodput_mbps,
                "20 MHz" if d20.goodput_mbps > d40.goodput_mbps else "40 MHz",
            ]
        )
    print(
        render_table(
            ["SNR20 (dB)", "best 20MHz", "G20", "best 40MHz", "G40", "winner"],
            rows,
            float_format=".1f",
            title="4. Net effect on goodput: bonding wins only on strong links",
        )
    )


def main() -> None:
    psd_comparison()
    ber_comparison()
    sigma_table()
    goodput_ladder()


if __name__ == "__main__":
    main()
