#!/usr/bin/env python
"""Dense deployment: allocate scarce spectrum among contending cells.

The Fig 11 situation: three APs that all hear each other, but only four
20 MHz channels. At most one AP can bond and stay orthogonal, so the
allocator must decide *who deserves the wide channel*. ACORN gives it
to the cell whose clients can actually exploit it, and the example also
prints the whole manual width-combination table so you can see why.

Run:  python examples/dense_deployment.py
"""

from repro import Acorn, Channel
from repro.analysis.tables import render_table
from repro.net import ThroughputModel, build_interference_graph
from repro.sim import dense_triangle


def manual_width_table(network, graph, model):
    """Evaluate every sensible manual width combination (Fig 11 rows)."""
    combos = {
        "40,40,40 (aggressive)": {
            "AP1": Channel(36, 40),
            "AP2": Channel(44, 48),
            "AP3": Channel(36, 40),
        },
        "40,20,20": {
            "AP1": Channel(36, 40),
            "AP2": Channel(44),
            "AP3": Channel(48),
        },
        "20,40,20": {
            "AP1": Channel(36),
            "AP2": Channel(44, 48),
            "AP3": Channel(40),
        },
        "20,20,40": {
            "AP1": Channel(36),
            "AP2": Channel(40),
            "AP3": Channel(44, 48),
        },
    }
    return {
        label: model.aggregate_mbps(network, graph, assignment=assignment)
        for label, assignment in combos.items()
    }


def main() -> None:
    scenario = dense_triangle()
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=7)
    result = acorn.configure(scenario.client_order)

    combo_values = manual_width_table(
        scenario.network, acorn.graph, model
    )
    rows = [[label, value] for label, value in combo_values.items()]
    rows.append(["ACORN (automatic)", result.total_mbps])
    print(
        render_table(
            ["width combination (AP1, AP2, AP3)", "total (Mbps)"],
            rows,
            float_format=".1f",
            title=(
                "3 contending APs, four 20 MHz channels — who gets to bond?"
            ),
        )
    )
    print()
    print("ACORN's allocation:")
    for ap_id, channel in sorted(result.report.assignment.items()):
        clients = [
            c for c, ap in result.report.associations.items() if ap == ap_id
        ]
        print(f"  {ap_id}: {channel}  serving {', '.join(clients)}")
    print()
    aggressive = combo_values["40,40,40 (aggressive)"]
    print(
        f"ACORN reaches {result.total_mbps:.1f} Mbps — "
        f"{result.total_mbps / aggressive:.1f}x the aggressive all-40 "
        "configuration, by bonding only the AP whose client can use it."
    )


if __name__ == "__main__":
    main()
