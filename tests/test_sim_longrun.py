"""Tests for the long-run churn simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ChannelPlan, Network
from repro.sim.longrun import ChurnConfig, LongRunResult, run_long_run


def small_wlan() -> Network:
    network = Network()
    network.add_ap("AP1")
    network.add_ap("AP2")
    network.set_explicit_conflicts([("AP1", "AP2")])
    return network


def quick_config(**overrides) -> ChurnConfig:
    defaults = dict(
        duration_s=1800.0,
        arrival_rate_per_s=1 / 60.0,
        period_s=600.0,
        seed=1,
    )
    defaults.update(overrides)
    return ChurnConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(arrival_rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(period_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(reallocation_downtime_s=-1.0)


class TestRun:
    def test_produces_traffic_and_churn(self):
        result = run_long_run(small_wlan(), ChannelPlan().subset(4), quick_config())
        assert result.mean_throughput_mbps > 0
        assert result.n_arrivals > 0
        # A 30-minute run with ~31-minute median sessions sees few
        # departures, but the accounting must stay consistent.
        assert 0 <= result.n_departures <= result.n_arrivals

    def test_reallocations_match_period(self):
        result = run_long_run(small_wlan(), ChannelPlan().subset(4), quick_config())
        # duration 1800 s, period 600 s -> re-allocations at 600 and 1200.
        assert result.n_reallocations == 2
        assert result.downtime_s == pytest.approx(
            2 * result.config.reallocation_downtime_s
        )

    def test_deterministic_given_seed(self):
        first = run_long_run(small_wlan(), ChannelPlan().subset(4), quick_config())
        second = run_long_run(small_wlan(), ChannelPlan().subset(4), quick_config())
        assert first.mean_throughput_mbps == pytest.approx(
            second.mean_throughput_mbps
        )
        assert first.n_arrivals == second.n_arrivals

    def test_different_seeds_differ(self):
        a = run_long_run(
            small_wlan(), ChannelPlan().subset(4), quick_config(seed=1)
        )
        b = run_long_run(
            small_wlan(), ChannelPlan().subset(4), quick_config(seed=2)
        )
        assert a.n_arrivals != b.n_arrivals or (
            a.mean_throughput_mbps != pytest.approx(b.mean_throughput_mbps)
        )

    def test_downtime_lowers_throughput(self):
        free = run_long_run(
            small_wlan(),
            ChannelPlan().subset(4),
            quick_config(reallocation_downtime_s=0.0),
        )
        costly = run_long_run(
            small_wlan(),
            ChannelPlan().subset(4),
            quick_config(reallocation_downtime_s=120.0),
        )
        assert costly.mean_throughput_mbps < free.mean_throughput_mbps

    def test_samples_are_time_ordered(self):
        result = run_long_run(small_wlan(), ChannelPlan().subset(4), quick_config())
        times = [t for t, _ in result.samples]
        assert times == sorted(times)
        assert result.peak_throughput_mbps >= result.mean_throughput_mbps

    def test_empty_result_peak(self):
        result = LongRunResult(
            config=quick_config(),
            mean_throughput_mbps=0.0,
            n_arrivals=0,
            n_departures=0,
            n_reallocations=0,
            downtime_s=0.0,
        )
        assert result.peak_throughput_mbps == 0.0
