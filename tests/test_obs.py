"""Tests for repro.obs — tracer, metrics, clocks, reports.

Three property-style guarantees anchor the suite: span durations are
never negative under any open/close sequence on any monotone clock,
unbalanced nesting always raises :class:`~repro.errors.ObsError`
instead of producing a silently wrong trace, and metric merges across
fleet workers are order-independent (integer observations, so float
associativity cannot blur the assertion).
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ObsError, ReproError
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    ManualClock,
    MetricsRegistry,
    NullTracer,
    Tracer,
    activate,
    active_tracer,
    merge_traces,
    monotonic_clock,
    render_trace_json,
    render_trace_text,
)


class TestClock:
    def test_monotonic_clock_is_callable_and_monotone(self):
        clock = monotonic_clock()
        a, b = clock(), clock()
        assert b >= a

    def test_manual_clock_advances(self):
        clock = ManualClock(start=2.0)
        assert clock() == 2.0
        clock.advance(0.5)
        assert clock.now == 2.5

    def test_manual_clock_auto_step(self):
        clock = ManualClock(step=0.25)
        assert clock() == 0.0
        assert clock() == 0.25

    def test_manual_clock_rejects_negative(self):
        with pytest.raises(ObsError):
            ManualClock(start=-1.0)
        with pytest.raises(ObsError):
            ManualClock(step=-0.1)
        with pytest.raises(ObsError):
            ManualClock().advance(-0.5)


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ObsError):
            Counter("c").inc(-1)

    def test_gauge_merge_takes_max(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.merge_value(1.0)
        assert gauge.value == 3.0
        gauge.merge_value(7.0)
        assert gauge.value == 7.0

    def test_histogram_buckets_and_mean(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(55.5 / 3)
        assert hist.counts == [1, 1, 1]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ObsError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ObsError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_histogram_merge_requires_equal_bounds(self):
        left = Histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ObsError):
            left.merge(
                {"bounds": [1.0, 3.0], "counts": [1, 0, 0], "count": 1}
            )

    def test_registry_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObsError):
            registry.gauge("x")

    def test_registry_payload_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("peak").set(1.5)
        registry.histogram("lat", bounds=(0.1, 1.0)).observe(0.4)
        clone = MetricsRegistry.from_payload(registry.to_payload())
        assert clone.to_payload() == registry.to_payload()
        assert len(clone) == 3

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]), st.integers(0, 1000)
            ),
            max_size=30,
        ),
        st.randoms(use_true_random=False),
    )
    def test_counter_merge_is_order_independent(self, increments, rng):
        """Worker payloads fold to the same totals in any arrival order."""
        payloads = []
        for name, amount in increments:
            worker = MetricsRegistry()
            worker.counter(name).inc(amount)
            worker.histogram("obs", bounds=(10.0, 100.0)).observe(amount)
            payloads.append(worker.to_payload())
        shuffled = list(payloads)
        rng.shuffle(shuffled)
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for payload in payloads:
            forward.merge_payload(payload)
        for payload in shuffled:
            backward.merge_payload(payload)
        assert forward.to_payload() == backward.to_payload()


class TestTracer:
    def test_null_tracer_is_default_and_inert(self):
        assert active_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False
        NULL_TRACER.start("x")
        NULL_TRACER.end("x")
        NULL_TRACER.metrics.counter("x").inc()
        with NULL_TRACER.span("y"):
            pass
        assert NULL_TRACER.spans() == ()
        payload = NULL_TRACER.to_payload()
        assert payload["spans"] == []
        assert payload["metrics"]["counters"] == {}
        assert isinstance(NULL_TRACER, NullTracer)

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert active_tracer() is tracer
            inner = Tracer()
            with activate(inner):
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is NULL_TRACER

    def test_span_records_duration_and_depth(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        tracer.start("outer")
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(0.5)
        tracer.end("outer")
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].depth == 1 and spans[1].depth == 0
        assert spans[0].duration_s == pytest.approx(0.5)
        assert spans[1].duration_s == pytest.approx(1.5)

    def test_end_without_start_raises(self):
        with pytest.raises(ObsError):
            Tracer().end()
        with pytest.raises(ObsError):
            Tracer().end("ghost")

    def test_mismatched_end_raises_and_preserves_stack(self):
        tracer = Tracer()
        tracer.start("a")
        with pytest.raises(ObsError):
            tracer.end("b")
        assert tracer.open_spans() == ("a",)
        tracer.end("a")
        assert [s.name for s in tracer.spans()] == ["a"]

    def test_payload_with_open_span_raises(self):
        tracer = Tracer()
        tracer.start("open")
        with pytest.raises(ObsError):
            tracer.to_payload()

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        assert tracer.open_spans() == ()
        assert [s.name for s in tracer.spans()] == ["risky"]

    def test_count_shorthand(self):
        tracer = Tracer()
        tracer.count("hits", 2)
        tracer.count("hits")
        assert tracer.metrics.counter("hits").value == 3

    def test_payload_round_trip(self):
        clock = ManualClock(step=0.125)
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            tracer.count("steps")
        clone = Tracer.from_payload(tracer.to_payload())
        assert clone.to_payload() == tracer.to_payload()

    def test_obs_error_is_repro_error(self):
        assert issubclass(ObsError, ReproError)

    @given(
        st.lists(st.integers(0, 3), max_size=40),
        st.lists(
            st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
            max_size=40,
        ),
    )
    def test_random_sequences_never_go_negative(self, ops, advances):
        """Any open/close walk on a monotone clock yields durations >= 0.

        Opcode 0–1 opens a span, 2 advances the clock, 3 closes the
        innermost span (when one is open); leftovers close at the end.
        """
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        advance = iter(advances)
        for op in ops:
            if op <= 1:
                tracer.start(f"s{op}")
            elif op == 2:
                clock.advance(next(advance, 0.25))
            elif tracer.open_spans():
                tracer.end()
        while tracer.open_spans():
            tracer.end()
        assert all(span.duration_s >= 0.0 for span in tracer.spans())
        assert all(span.end_s >= span.start_s for span in tracer.spans())

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=30))
    def test_unbalanced_nesting_always_raises(self, ops):
        """Closing the wrong span (or none) is always a loud ObsError."""
        tracer = Tracer()
        depth = 0
        for op in ops:
            if op == 0:
                tracer.start(f"d{depth}")
                depth += 1
            elif op == 1 and depth:
                tracer.end(f"d{depth - 1}")
                depth -= 1
            else:
                with pytest.raises(ObsError):
                    tracer.end("never-opened" if depth else None)
        assert len(tracer.open_spans()) == depth


class TestReports:
    def _payload(self):
        clock = ManualClock(step=0.01)
        tracer = Tracer(clock=clock)
        with tracer.span("phase"):
            tracer.count("widgets", 3)
            tracer.metrics.gauge("peak").set(2.0)
            tracer.metrics.histogram("lat", bounds=(0.1, 1.0)).observe(0.2)
        return tracer.to_payload()

    def test_merge_traces_is_order_independent(self):
        one, two = self._payload(), self._payload()
        forward = merge_traces([one, two])
        backward = merge_traces([two, one])
        assert forward["metrics"] == backward["metrics"]
        assert forward["metrics"]["counters"]["widgets"] == 6
        assert len(forward["spans"]) == 2

    def test_render_text_contains_tables(self):
        text = render_trace_text(self._payload(), title="T")
        assert "phase" in text
        assert "widgets" in text
        assert "lat" in text

    def test_render_text_empty_payload(self):
        text = render_trace_text({"spans": [], "metrics": {}})
        assert "empty trace" in text

    def test_render_json_is_canonical(self):
        payload = self._payload()
        data = json.loads(render_trace_json(payload))
        assert data["metrics"]["counters"]["widgets"] == 3
