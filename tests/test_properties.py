"""Cross-cutting property-based tests on the core invariants.

These use hypothesis to sweep randomised networks and parameters,
checking the structural guarantees the paper's analysis relies on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import allocate_channels, random_assignment
from repro.graph.coloring import worst_case_ratio
from repro.link.quality import sigma_from_snr
from repro.mcs.selection import optimal_mcs
from repro.net.channels import Channel, ChannelPlan
from repro.net.interference import build_interference_graph
from repro.net.throughput import ThroughputModel
from repro.net.topology import Network
from repro.phy.ber import coded_ber, uncoded_ber
from repro.phy.modulation import QAM16, QAM64, QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.per import per_from_ber

MODEL = ThroughputModel()

MODCODS = [(QPSK, 1 / 2), (QPSK, 3 / 4), (QAM16, 3 / 4), (QAM64, 5 / 6)]


def random_network(n_aps: int, n_clients: int, edge_bits: int, snrs) -> Network:
    """Deterministic network from hypothesis-drawn parameters."""
    network = Network()
    for index in range(n_aps):
        network.add_ap(f"ap{index}")
    for index in range(n_clients):
        client = f"u{index}"
        network.add_client(client)
        ap = f"ap{index % n_aps}"
        network.set_link_snr(ap, client, snrs[index])
        network.associate(client, ap)
    edges = []
    bit = 0
    for i in range(n_aps):
        for j in range(i + 1, n_aps):
            if (edge_bits >> bit) & 1:
                edges.append((f"ap{i}", f"ap{j}"))
            bit += 1
    network.set_explicit_conflicts(edges)
    return network


class TestPhyInvariants:
    @given(
        st.sampled_from(MODCODS),
        st.floats(min_value=-10.0, max_value=40.0),
    )
    def test_coding_never_worse_than_half(self, modcod, snr_db):
        modulation, rate = modcod
        assert 0.0 <= coded_ber(modulation, rate, snr_db) <= 0.5

    @given(
        st.sampled_from(MODCODS),
        st.floats(min_value=-10.0, max_value=37.0),
        st.floats(min_value=0.1, max_value=3.0),
    )
    def test_uncoded_ber_monotone_in_snr(self, modcod, snr_db, delta):
        modulation, _ = modcod
        assert uncoded_ber(modulation, snr_db + delta) <= uncoded_ber(
            modulation, snr_db
        ) + 1e-15

    @given(
        st.sampled_from(MODCODS),
        st.floats(min_value=-5.0, max_value=40.0),
    )
    def test_sigma_at_least_one_ish(self, modcod, snr_db):
        """σ compares delivery without/with CB at equal power; because
        bonding only lowers the per-subcarrier SNR, delivery without CB
        is never meaningfully worse: σ ≳ 1 everywhere."""
        modulation, rate = modcod
        value = sigma_from_snr(snr_db, modulation, rate)
        assert value >= 1.0 - 1e-6

    @given(st.floats(min_value=-8.0, max_value=40.0))
    def test_bonding_at_most_doubles_goodput(self, snr20):
        """Inequality 3's flip side: CB gives at most the rate-ratio
        (~2.08x) gain, because at equal SNR it cannot reduce PER."""
        d20 = optimal_mcs(snr20, OFDM_20MHZ)
        d40 = optimal_mcs(snr20 - 3.1, OFDM_40MHZ)
        assert d40.goodput_mbps <= (108 / 52) * d20.goodput_mbps + 1e-6

    @given(
        st.floats(min_value=0.0, max_value=0.001),
        st.floats(min_value=1.0, max_value=4.0),
    )
    def test_per_superlinear_in_length(self, ber, factor):
        short = per_from_ber(ber, 500)
        longer = per_from_ber(ber, int(500 * factor))
        assert longer >= short - 1e-12


class TestAllocationInvariants:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_greedy_never_below_worst_case_bound(
        self, n_aps, edge_bits, seed
    ):
        """The paper's O(1/(Δ+1)) guarantee, stress-tested."""
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(0.0, 30.0, size=n_aps * 2)
        network = random_network(n_aps, n_aps * 2, edge_bits, snrs)
        graph = build_interference_graph(network)
        plan = ChannelPlan().subset(4)
        result = allocate_channels(network, graph, plan, MODEL, rng=seed)
        from repro.baselines.optimal import isolation_upper_bound_mbps

        y_star = isolation_upper_bound_mbps(
            network, plan, MODEL, network.associations
        )
        assert result.aggregate_mbps >= worst_case_ratio(graph) * y_star - 1e-6

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_greedy_never_worse_than_initial(self, n_aps, edge_bits, seed):
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(0.0, 30.0, size=n_aps * 2)
        network = random_network(n_aps, n_aps * 2, edge_bits, snrs)
        graph = build_interference_graph(network)
        plan = ChannelPlan().subset(4)
        initial = random_assignment(network.ap_ids, plan, rng=seed)
        start = MODEL.aggregate_mbps(network, graph, assignment=initial)
        result = allocate_channels(
            network, graph, plan, MODEL, initial=initial
        )
        assert result.aggregate_mbps >= start - 1e-9

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_evaluation_is_pure(self, seed):
        """Evaluating assignments must not change the stored network."""
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(0.0, 30.0, size=6)
        network = random_network(3, 6, 7, snrs)
        graph = build_interference_graph(network)
        assignment_before = dict(network.channel_assignment)
        associations_before = dict(network.associations)
        trial = {ap: Channel(36) for ap in network.ap_ids}
        MODEL.aggregate_mbps(network, graph, assignment=trial)
        assert network.channel_assignment == assignment_before
        assert network.associations == associations_before


class TestThroughputInvariants:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_contention_never_raises_throughput(self, seed):
        """Adding an interference edge can only lower the aggregate."""
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(5.0, 30.0, size=4)
        isolated = random_network(2, 4, 0, snrs)
        contended = random_network(2, 4, 1, snrs)
        assignment = {"ap0": Channel(36), "ap1": Channel(36)}
        value_isolated = MODEL.aggregate_mbps(
            isolated, build_interference_graph(isolated), assignment=assignment
        )
        value_contended = MODEL.aggregate_mbps(
            contended,
            build_interference_graph(contended),
            assignment=assignment,
        )
        assert value_contended <= value_isolated + 1e-9

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=-5.0, max_value=35.0),
    )
    def test_per_ap_throughput_nonnegative(self, seed, extra_snr):
        rng = np.random.default_rng(seed)
        snrs = list(rng.uniform(-5.0, 35.0, size=5)) + [extra_snr]
        network = random_network(3, 6, 7, snrs)
        graph = build_interference_graph(network)
        assignment = random_assignment(network.ap_ids, ChannelPlan(), rng=seed)
        report = MODEL.evaluate(network, graph, assignment=assignment)
        assert all(v >= 0 for v in report.per_ap_mbps.values())
