"""Tests for repro.lint — the AST-based invariant checker.

Every rule gets at least one true-positive fixture (the violation is
found), one true-negative fixture (idiomatic code passes), and a
waiver-comment case. The meta-test at the bottom pins the repository
invariant the PR establishes: ``repro lint src/repro`` is clean at
HEAD, with at most 10 explicit waivers.
"""

import json
import pathlib
import textwrap

import pytest

from repro.errors import LintError, ReproError
from repro.lint import (
    PARSE_RULE_ID,
    RULES,
    WAIVER_RULE_ID,
    Finding,
    LintRule,
    default_rules,
    lint_paths,
    lint_source,
    module_path,
    parse_waivers,
    register_rule,
    rule_catalog,
)

REPO = pathlib.Path(__file__).parent.parent
SRC_REPRO = REPO / "src" / "repro"


def findings_for(source, rule_id, path="mod.py"):
    """Findings of one rule over a dedented source snippet."""
    found = lint_source(textwrap.dedent(source), path=path)
    return [finding for finding in found if finding.rule_id == rule_id]


def rule_ids(source, path="mod.py"):
    return {f.rule_id for f in lint_source(textwrap.dedent(source), path=path)}


class TestDeterminismRL001:
    def test_np_random_global_call_flagged(self):
        source = """
        import numpy as np
        x = np.random.rand(3)
        """
        found = findings_for(source, "RL001")
        assert len(found) == 1
        assert "global" in found[0].message
        assert found[0].line == 3

    def test_np_random_seed_flagged(self):
        found = findings_for("import numpy as np\nnp.random.seed(0)\n", "RL001")
        assert len(found) == 1

    def test_stdlib_random_call_flagged(self):
        source = """
        import random
        random.shuffle([1, 2, 3])
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_from_random_import_flagged(self):
        assert len(findings_for("from random import shuffle\n", "RL001")) == 1

    def test_time_time_flagged(self):
        source = """
        import time
        stamp = time.time()
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_from_time_import_time_flagged(self):
        assert len(findings_for("from time import time\n", "RL001")) == 1

    def test_datetime_now_flagged(self):
        source = """
        from datetime import datetime
        stamp = datetime.now()
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_explicit_generator_plumbing_passes(self):
        source = """
        import numpy as np

        def draw(rng: np.random.Generator):
            return rng.normal(size=4)

        rng = np.random.default_rng(np.random.SeedSequence(7))
        """
        assert findings_for(source, "RL001") == []

    def test_perf_counter_flagged_outside_seam(self):
        source = """
        import time
        elapsed = time.perf_counter()
        """
        found = findings_for(source, "RL001")
        assert len(found) == 1
        assert "repro.obs.clock" in found[0].message

    def test_from_time_import_monotonic_flagged(self):
        found = findings_for("from time import monotonic\n", "RL001")
        assert len(found) == 1
        assert "repro.obs.clock" in found[0].message

    def test_time_sleep_passes(self):
        source = """
        import time
        time.sleep(0.0)
        """
        assert findings_for(source, "RL001") == []

    def test_clock_seam_module_is_exempt(self):
        source = """
        import time
        now = time.monotonic()
        tick = time.perf_counter()
        """
        assert findings_for(source, "RL001", path="repro/obs/clock.py") == []

    def test_executor_module_is_exempt(self):
        source = """
        import time
        stamp = time.time()
        """
        assert findings_for(source, "RL001", path="repro/fleet/executor.py") == []

    def test_loop_time_chained_call_flagged(self):
        source = """
        import asyncio
        stamp = asyncio.get_event_loop().time()
        """
        found = findings_for(source, "RL001")
        assert len(found) == 1
        assert "repro.service" in found[0].message

    def test_loop_time_via_bound_name_flagged(self):
        source = """
        import asyncio

        loop = asyncio.get_running_loop()
        stamp = loop.time()
        """
        found = findings_for(source, "RL001")
        assert len(found) == 1
        assert "event-loop clock" in found[0].message

    def test_loop_time_from_import_accessor_flagged(self):
        source = """
        from asyncio import get_event_loop

        stamp = get_event_loop().time_ns()
        """
        assert len(findings_for(source, "RL001")) == 1

    def test_loop_time_allowed_inside_service(self):
        source = """
        import asyncio

        loop = asyncio.get_running_loop()
        stamp = loop.time()
        """
        assert (
            findings_for(source, "RL001", path="repro/service/frontend.py")
            == []
        )

    def test_service_module_still_gets_other_rl001_checks(self):
        # The loop-time allowance is a path allowlist, NOT a module
        # exemption — wall-clock reads in repro.service stay flagged.
        source = """
        import time
        stamp = time.time()
        """
        found = findings_for(source, "RL001", path="repro/service/frontend.py")
        assert len(found) == 1

    def test_non_loop_time_attribute_passes(self):
        # Near miss: .time() on an object that is not an event loop.
        source = """
        import asyncio

        class Stopwatch:
            def time(self):
                return 0.0

        watch = Stopwatch()
        stamp = watch.time()
        """
        assert findings_for(source, "RL001") == []

    def test_waiver_suppresses(self):
        source = """
        # reprolint: ok RL001 fixture demonstrating the waiver path
        import random
        random.random()
        """
        assert findings_for(source, "RL001") == []


class TestUnitsRL002:
    def test_ten_log10_flagged(self):
        source = """
        import math
        snr_db = 10.0 * math.log10(ratio)
        """
        found = findings_for(source, "RL002")
        assert len(found) == 1
        assert "linear_to_db" in found[0].message

    def test_np_log10_with_factor_chain_flagged(self):
        source = """
        import numpy as np
        loss = 10.0 * exponent * np.log10(d / d0)
        """
        assert len(findings_for(source, "RL002")) == 1

    def test_twenty_log10_flagged(self):
        source = """
        import math
        gain_db = 20.0 * math.log10(amplitude)
        """
        assert len(findings_for(source, "RL002")) == 1

    def test_ten_pow_tenth_flagged(self):
        found = findings_for("linear = 10.0 ** (x_db / 10.0)\n", "RL002")
        assert len(found) == 1
        assert "db_to_linear" in found[0].message

    def test_amplitude_pow_flagged(self):
        assert len(findings_for("g = 10.0 ** (g_db / 20.0)\n", "RL002")) == 1

    def test_reversed_operands_flagged(self):
        source = """
        import math
        snr_db = math.log10(ratio) * 10.0
        """
        assert len(findings_for(source, "RL002")) == 1

    def test_innocent_arithmetic_passes(self):
        source = """
        import math
        y = 2.0 * math.log10(x)
        z = x ** 2
        w = 10.0 * x
        v = 2.0 ** (x / 10.0)
        """
        assert findings_for(source, "RL002") == []

    def test_units_module_is_exempt(self):
        source = "ratio = 10.0 ** (db / 10.0)\n"
        assert findings_for(source, "RL002", path="repro/units.py") == []

    def test_waiver_suppresses(self):
        source = """
        import math
        # reprolint: ok RL002 deliberate PHY-layer spectral math
        psd_db = 10.0 * math.log10(power)
        """
        assert findings_for(source, "RL002") == []


class TestErrorDisciplineRL003:
    def test_raise_valueerror_flagged(self):
        source = """
        def f(x):
            if x < 0:
                raise ValueError("negative")
        """
        found = findings_for(source, "RL003")
        assert len(found) == 1
        assert "ReproError" in found[0].message

    def test_raise_runtimeerror_name_flagged(self):
        source = """
        def f():
            raise RuntimeError
        """
        assert len(findings_for(source, "RL003")) == 1

    def test_repro_error_subclass_passes(self):
        source = """
        from repro.errors import ConfigurationError

        def f(x):
            if x < 0:
                raise ConfigurationError("negative")
        """
        assert findings_for(source, "RL003") == []

    def test_bare_reraise_passes(self):
        source = """
        def f():
            try:
                g()
            except Exception:
                raise
        """
        assert findings_for(source, "RL003") == []

    def test_cli_module_is_exempt(self):
        source = "raise ValueError('x')\n"
        assert findings_for(source, "RL003", path="repro/cli.py") == []

    def test_waiver_suppresses(self):
        source = """
        # reprolint: ok RL003 fixture demonstrating the waiver path
        raise ValueError("x")
        """
        assert findings_for(source, "RL003") == []


class TestNoPrintRL004:
    def test_print_flagged(self):
        source = """
        def report(x):
            print(x)
        """
        found = findings_for(source, "RL004")
        assert len(found) == 1

    def test_logging_and_returns_pass(self):
        source = """
        def report(x):
            return f"value: {x}"
        """
        assert findings_for(source, "RL004") == []

    def test_print_in_docstring_passes(self):
        source = '''
        def demo():
            """Example::

                print(result.total_mbps)
            """
            return 1
        '''
        assert findings_for(source, "RL004") == []

    def test_cli_is_exempt(self):
        assert findings_for("print('ok')\n", "RL004", path="repro/cli.py") == []

    def test_waiver_suppresses(self):
        source = """
        # reprolint: ok RL004 fixture demonstrating the waiver path
        print("debug")
        """
        assert findings_for(source, "RL004") == []


class TestRegistryPicklabilityRL005:
    def test_lambda_registration_flagged(self):
        source = """
        register_algorithm("bad", lambda scenario, traffic, rng: None)
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_def_registration_flagged(self):
        source = """
        def outer():
            def runner(scenario, traffic, rng):
                return None

        register_scenario("bad", runner)
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert "nested def" in found[0].message

    def test_module_level_lambda_registration_flagged(self):
        source = """
        runner = lambda scenario, traffic, rng: None
        register_algorithm("bad", runner)
        """
        assert len(findings_for(source, "RL005")) == 1

    def test_registration_inside_function_flagged(self):
        source = """
        def runner(scenario, traffic, rng):
            return None

        def setup():
            register_algorithm("late", runner)
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert "import time" in found[0].message

    def test_registry_dict_lambda_flagged(self):
        source = """
        ALGORITHMS = {"bad": lambda scenario, traffic, rng: None}
        """
        assert len(findings_for(source, "RL005")) == 1

    def test_module_level_def_passes(self):
        source = """
        def runner(scenario, traffic, rng):
            return None

        ALGORITHMS = {"good": runner}
        register_algorithm("good", runner)
        """
        assert findings_for(source, "RL005") == []

    def test_waiver_suppresses(self):
        source = """
        # reprolint: ok RL005 fixture demonstrating the waiver path
        register_algorithm("bad", lambda s, t, r: None)
        """
        assert findings_for(source, "RL005") == []

    def test_builder_class_instance_in_method_passes(self):
        # The scenario-builder pattern: registering an instance of a
        # module-level class from a method is picklable-by-class-reference.
        source = """
        class CompiledChain:
            def __call__(self, seed=0):
                return None

        class ScenarioBuilder:
            def freeze(self) -> "CompiledChain":
                return CompiledChain()

            def register(self):
                chain = self.freeze()
                register_scenario("built", chain)
                return chain
        """
        assert findings_for(source, "RL005") == []

    def test_direct_constructor_call_in_method_passes(self):
        source = """
        class CompiledChain:
            def __call__(self, seed=0):
                return None

        class ScenarioBuilder:
            def register(self):
                register_scenario("built", CompiledChain())
        """
        assert findings_for(source, "RL005") == []

    def test_unannotated_method_result_still_flagged(self):
        # Near miss: without the return annotation the rule cannot prove
        # the registered value is a class instance, so it stays flagged.
        source = """
        class CompiledChain:
            def __call__(self, seed=0):
                return None

        class ScenarioBuilder:
            def freeze(self):
                return CompiledChain()

            def register(self):
                chain = self.freeze()
                register_scenario("built", chain)
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert "import time" in found[0].message

    def test_module_def_arg_inside_function_still_flagged(self):
        # Near miss: a plain function factory registered from inside a
        # function is still a deferred registration, class or no class.
        source = """
        class CompiledChain:
            def __call__(self, seed=0):
                return None

        def factory(seed=0):
            return None

        def setup():
            register_scenario("late", factory)
        """
        found = findings_for(source, "RL005")
        assert len(found) == 1
        assert "import time" in found[0].message


class TestPublicApiRL006:
    COMPLETE = '''
    """A documented module."""

    __all__ = ["helper"]


    def helper():
        """Do the thing."""
        return 1
    '''

    def test_complete_module_passes(self):
        assert findings_for(self.COMPLETE, "RL006") == []

    def test_missing_all_flagged(self):
        source = '''
        """A documented module."""

        def helper():
            """Do the thing."""
            return 1
        '''
        found = findings_for(source, "RL006")
        assert len(found) == 1
        assert "__all__" in found[0].message

    def test_all_naming_undefined_symbol_flagged(self):
        source = '''
        """A documented module."""

        __all__ = ["missing"]
        '''
        found = findings_for(source, "RL006")
        assert any("missing" in f.message for f in found)

    def test_public_def_not_exported_flagged(self):
        source = '''
        """A documented module."""

        __all__ = []


        def helper():
            """Do the thing."""
            return 1
        '''
        found = findings_for(source, "RL006")
        assert len(found) == 1
        assert "helper" in found[0].message

    def test_undocumented_public_def_flagged(self):
        source = '''
        """A documented module."""

        __all__ = ["helper"]


        def helper():
            return 1
        '''
        found = findings_for(source, "RL006")
        assert any("docstring" in f.message for f in found)

    def test_non_literal_all_flagged(self):
        source = '''
        """A documented module."""

        __all__ = sorted(globals())
        '''
        found = findings_for(source, "RL006")
        assert any("statically" in f.message for f in found)

    def test_underscore_names_ignored(self):
        source = '''
        """A documented module."""

        __all__ = []


        def _internal():
            return 1
        '''
        assert findings_for(source, "RL006") == []

    def test_main_module_is_exempt(self):
        source = "import sys\n"
        assert findings_for(source, "RL006", path="repro/__main__.py") == []

    def test_waiver_suppresses(self):
        source = """
        # reprolint: ok RL006 fixture demonstrating the waiver path
        x = 1
        """
        assert findings_for(source, "RL006") == []


class TestWaiverSyntax:
    def test_waiver_without_reason_is_rl000(self):
        source = """
        # reprolint: ok RL004
        print("x")
        """
        found = findings_for(source, WAIVER_RULE_ID)
        assert len(found) == 1
        assert "reason" in found[0].message
        # The malformed waiver must NOT suppress the underlying finding.
        assert len(findings_for(source, "RL004")) == 1

    def test_waiver_with_unknown_rule_is_rl000(self):
        source = """
        # reprolint: ok RL123 no such rule
        x = 1
        """
        found = findings_for(source, WAIVER_RULE_ID)
        assert len(found) == 1
        assert "RL123" in found[0].message

    def test_unknown_directive_is_rl000(self):
        source = """
        # reprolint: nope RL004 because reasons
        x = 1
        """
        found = findings_for(source, WAIVER_RULE_ID)
        assert len(found) == 1
        assert "nope" in found[0].message

    def test_waiver_without_rule_id_is_rl000(self):
        source = """
        # reprolint: ok just because
        x = 1
        """
        assert len(findings_for(source, WAIVER_RULE_ID)) == 1

    def test_multi_rule_waiver(self):
        source = '''
        """Fixture module."""

        __all__ = []
        # reprolint: ok RL003, RL004 fixture demonstrating multi-rule waivers
        print("x")
        raise ValueError("y")
        '''
        assert rule_ids(source) == set()

    def test_docstring_mentioning_waiver_is_not_a_waiver(self):
        source = '''
        """Docs quoting the syntax: # reprolint: ok RL004 some reason."""

        __all__ = []
        print("x")
        '''
        assert len(findings_for(source, "RL004")) == 1
        assert findings_for(source, WAIVER_RULE_ID) == []

    def test_parse_waivers_counts_well_formed(self):
        source = "# reprolint: ok RL004 reason one\nx = 1\n"
        waived, findings, count = parse_waivers(source, "mod.py")
        assert waived == {"RL004"}
        assert findings == []
        assert count == 1

    def test_crlf_line_endings(self):
        # Windows checkouts: the \r must not leak into the reason or id.
        source = "# reprolint: ok RL004 printing fixture\r\nprint('x')\r\n"
        waived, findings, count = parse_waivers(source, "mod.py")
        assert waived == {"RL004"}
        assert findings == []
        assert count == 1

    def test_comma_separated_ids_with_inconsistent_spacing(self):
        # Doubled commas and uneven spacing must not drop ids silently.
        source = (
            "# reprolint: ok RL003 ,,RL004,  RL005 fixture with messy ids\n"
            "x = 1\n"
        )
        waived, findings, count = parse_waivers(source, "mod.py")
        assert waived == {"RL003", "RL004", "RL005"}
        assert findings == []
        assert count == 1

    def test_waiver_on_last_line_without_trailing_newline(self):
        source = "x = 1\n# reprolint: ok RL004 end-of-file fixture"
        waived, findings, count = parse_waivers(source, "mod.py")
        assert waived == {"RL004"}
        assert findings == []
        assert count == 1


class TestPerRuleTiming:
    def test_report_accumulates_rule_seconds(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""Fixture."""\n__all__ = []\n')
        report = lint_paths([pkg], use_cache=False)
        assert report.rule_seconds
        assert all(sec >= 0.0 for sec in report.rule_seconds.values())
        rows = report.timing_rows()
        # Sorted slowest-first so the CI summary reads top-down.
        assert [rid for rid, _ in rows] == [
            rid
            for rid, _ in sorted(
                report.rule_seconds.items(), key=lambda r: (-r[1], r[0])
            )
        ]

    def test_json_format_carries_timing_and_cache_meta(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""Fixture."""\n__all__ = []\n')
        report = lint_paths([pkg], use_cache=False)
        document = json.loads(report.render("json"))
        assert "rule_seconds" in document
        assert set(document["cache"]) == {
            "files_from_cache",
            "flow_reanalyzed",
        }
        assert document["cache"]["files_from_cache"] == 0


class TestEngine:
    def test_syntax_error_is_rl900_finding(self):
        found = findings_for("def broken(:\n", PARSE_RULE_ID)
        assert len(found) == 1
        assert "parse" in found[0].message

    def test_nonexistent_target_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_paths(["definitely/not/a/path"])
        assert issubclass(LintError, ReproError)

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(LintError):
            lint_paths([str(SRC_REPRO / "units.py")], select=["RL999"])

    def test_rule_selection_limits_findings(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("print('x')\nraise ValueError('y')\n")
        only_print = lint_paths([str(bad)], select=["RL004"])
        assert {f.rule_id for f in only_print.findings} == {"RL004"}

    def test_directory_walk_and_exit_codes(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "clean.py").write_text(
            '"""Clean module."""\n\n__all__ = []\n'
        )
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 1
        assert report.exit_code == 0
        (tmp_path / "pkg" / "dirty.py").write_text(
            '"""Dirty module."""\n\n__all__ = []\nprint("x")\n'
        )
        report = lint_paths([str(tmp_path)])
        assert report.exit_code == 1

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("print('x')\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 0

    def test_module_path_resolution(self):
        assert module_path(pathlib.Path("src/repro/phy/noise.py")) == "phy/noise.py"
        assert module_path(pathlib.Path("src/repro/cli.py")) == "cli.py"
        assert module_path(pathlib.Path("/tmp/fixture.py")) == "fixture.py"

    def test_finding_rendering(self):
        finding = Finding(
            path="a.py", line=3, col=0, rule_id="RL004", message="no print"
        )
        assert finding.render() == "a.py:3: RL004 no print"


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
        }.issubset(RULES)

    def test_duplicate_registration_rejected(self):
        class Impostor(LintRule):
            rule_id = "RL001"
            title = "impostor"

        with pytest.raises(LintError):
            register_rule(Impostor())

    def test_reregistering_same_object_is_noop(self):
        register_rule(RULES["RL001"])

    def test_custom_rule_plugs_into_lint_source(self):
        class NoTodoRule(LintRule):
            rule_id = "RL777"
            title = "no TODO-named functions"

            def run(self, module):
                import ast

                for node in ast.walk(module.tree):
                    if isinstance(node, ast.FunctionDef) and "todo" in node.name:
                        yield self.finding(module, node, "rename it")

        found = lint_source("def todo_later():\n    pass\n", rules=[NoTodoRule()])
        assert [f.rule_id for f in found] == ["RL777"]

    def test_catalog_covers_all_rules_and_meta_ids(self):
        ids = {row["id"] for row in rule_catalog()}
        assert set(RULES).issubset(ids)
        assert WAIVER_RULE_ID in ids
        assert PARSE_RULE_ID in ids
        for row in rule_catalog():
            assert row["title"]
            assert row["rationale"]


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "clean.py"
        clean.write_text('"""Clean module."""\n\n__all__ = []\n')
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_findings_exit_one_text_format(self, tmp_path, capsys):
        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text('"""Dirty module."""\n\n__all__ = []\nprint("x")\n')
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert f"{dirty}:4: RL004" in out

    def test_lint_json_format(self, tmp_path, capsys):
        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text('"""Dirty module."""\n\n__all__ = []\nprint("x")\n')
        assert main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1
        assert payload["counts"] == {"RL004": 1}
        assert payload["findings"][0]["rule"] == "RL004"
        assert payload["findings"][0]["line"] == 4

    def test_lint_internal_error_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "no/such/path"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in sorted(RULES):
            assert rule_id in out

    def test_rules_selection_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text("print('x')\n")
        assert main(["lint", str(dirty), "--rules", "RL003"]) == 0


class TestTreeIsClean:
    """The repository invariant this PR establishes and CI enforces."""

    def test_src_repro_is_clean_at_head(self):
        report = lint_paths([str(SRC_REPRO)])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings at HEAD:\n{rendered}"
        assert report.exit_code == 0

    def test_waiver_budget(self):
        report = lint_paths([str(SRC_REPRO)])
        assert report.waivers <= 10, "waiver budget exceeded (acceptance: <= 10)"

    def test_every_default_rule_ran_over_real_tree(self):
        assert len(default_rules()) >= 6
