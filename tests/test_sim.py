"""Tests for scenarios, traffic models, and mobility."""

import pytest

from repro.errors import ConfigurationError
from repro.net.interference import build_interference_graph, max_degree
from repro.sim.mobility import LinearWalk, run_mobility_experiment
from repro.sim.scenario import (
    ap_triple,
    dense_triangle,
    random_enterprise,
    topology1,
    topology2,
)
from repro.sim.traffic import TcpTraffic, UdpTraffic


class TestScenarios:
    def test_topology1_shape(self):
        scenario = topology1()
        assert len(scenario.network.ap_ids) == 2
        assert len(scenario.network.client_ids) == 4
        assert scenario.network.explicit_conflicts == set()

    def test_topology2_shape(self):
        scenario = topology2()
        assert len(scenario.network.ap_ids) == 5
        assert len(scenario.client_order) == len(scenario.network.client_ids)

    def test_topology2_shared_clients_hear_two_aps(self):
        scenario = topology2()
        assert set(scenario.network.candidate_aps("s1")) == {"AP1", "AP3"}

    def test_dense_triangle_contention(self):
        scenario = dense_triangle()
        graph = build_interference_graph(scenario.network)
        assert max_degree(graph) == 2
        assert scenario.plan.n_basic == 4

    def test_ap_triple_deterministic(self):
        first = ap_triple(3)
        second = ap_triple(3)
        for client in first.network.client_ids:
            for ap in first.network.ap_ids:
                if first.network.has_link(ap, client):
                    assert first.network.link_budget(
                        ap, client
                    ).snr20_db == pytest.approx(
                        second.network.link_budget(ap, client).snr20_db
                    )

    def test_random_enterprise_deterministic(self):
        first = random_enterprise(n_aps=4, n_clients=8, seed=7)
        second = random_enterprise(n_aps=4, n_clients=8, seed=7)
        assert first.network.explicit_conflicts == second.network.explicit_conflicts

    def test_random_enterprise_scales(self):
        scenario = random_enterprise(n_aps=3, n_clients=5, seed=1)
        assert len(scenario.network.ap_ids) == 3
        assert len(scenario.network.client_ids) == 5

    def test_random_enterprise_validation(self):
        with pytest.raises(ConfigurationError):
            random_enterprise(n_aps=0)

    def test_fresh_network_is_unconfigured(self):
        scenario = topology1()
        scenario.network.associate("u1", "AP1")
        fresh = scenario.fresh_network()
        assert fresh.associations == {}


class TestTraffic:
    def test_udp_factor_constant(self):
        assert UdpTraffic().goodput_factor(0.4) == 1.0

    def test_tcp_factor_at_zero_loss(self):
        traffic = TcpTraffic()
        assert traffic.goodput_factor(0.0) == pytest.approx(0.85)

    def test_tcp_more_loss_sensitive_than_udp(self):
        traffic = TcpTraffic()
        assert traffic.goodput_factor(0.3) < UdpTraffic().goodput_factor(0.3)

    def test_tcp_factor_monotone(self):
        traffic = TcpTraffic()
        factors = [traffic.goodput_factor(p / 10) for p in range(11)]
        assert factors == sorted(factors, reverse=True)

    def test_tcp_invalid_per_rejected(self):
        with pytest.raises(ConfigurationError):
            TcpTraffic().goodput_factor(1.5)

    def test_tcp_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TcpTraffic(ack_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            TcpTraffic(loss_exponent=-1.0)


class TestLinearWalk:
    def test_interpolation(self):
        walk = LinearWalk(0.0, 100.0, 50.0)
        assert walk.distance_at(0.0) == 0.0
        assert walk.distance_at(25.0) == pytest.approx(50.0)
        assert walk.distance_at(50.0) == 100.0

    def test_clamps_outside_duration(self):
        walk = LinearWalk(10.0, 20.0, 10.0)
        assert walk.distance_at(-5.0) == 10.0
        assert walk.distance_at(99.0) == 20.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearWalk(0.0, 10.0, 0.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearWalk(-1.0, 10.0, 5.0)


class TestMobilityExperiment:
    def test_away_switches_to_20mhz(self):
        trace = run_mobility_experiment("away", duration_s=50.0)
        assert trace.acorn_width_mhz[0] == 40
        assert trace.acorn_width_mhz[-1] == 20
        assert trace.switch_time_s is not None

    def test_away_beats_fixed_40_after_switch(self):
        trace = run_mobility_experiment("away", duration_s=50.0)
        assert trace.post_switch_gain() > 2.0

    def test_toward_switches_to_40mhz(self):
        trace = run_mobility_experiment("toward", duration_s=50.0)
        assert trace.acorn_width_mhz[0] == 20
        assert trace.acorn_width_mhz[-1] == 40

    def test_toward_beats_fixed_20_after_switch(self):
        trace = run_mobility_experiment("toward", duration_s=50.0)
        assert trace.post_switch_gain() > 1.1

    def test_acorn_never_below_fixed(self):
        """The opportunistic mode always picks the better width."""
        for direction in ("away", "toward"):
            trace = run_mobility_experiment(direction, duration_s=30.0)
            for acorn, fixed in zip(trace.acorn_mbps, trace.fixed_mbps):
                assert acorn >= fixed - 1e-9

    def test_snr_monotone_along_walk(self):
        trace = run_mobility_experiment("away", duration_s=30.0)
        snrs = trace.mobile_snr20_db
        assert all(b <= a + 1e-9 for a, b in zip(snrs, snrs[1:]))

    def test_invalid_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mobility_experiment("sideways")

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mobility_experiment("away", step_s=0.0)

    def test_no_switch_returns_unit_gain(self):
        # A short walk that stays near the AP never leaves 40 MHz.
        trace = run_mobility_experiment(
            "away", duration_s=10.0, near_m=5.0, far_m=6.0
        )
        assert trace.switch_time_s is None
        assert trace.post_switch_gain() == 1.0


class TestAdversarialLibrary:
    """The adversarial scenario library (EXPERIMENTS.md table)."""

    def test_library_has_at_least_eight_entries(self):
        from repro.sim.adversarial import ADVERSARIAL_SCENARIOS

        assert len(ADVERSARIAL_SCENARIOS) >= 8

    def test_every_entry_is_registered_with_checks(self):
        from repro.sim.adversarial import ADVERSARIAL_SCENARIOS
        from repro.sim.scenario import SCENARIOS

        for name, chain in ADVERSARIAL_SCENARIOS.items():
            assert SCENARIOS[name] is chain
            assert len(chain.checks) >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_network_checks_hold_across_seeds(self, seed):
        from repro.sim.adversarial import ADVERSARIAL_SCENARIOS
        from repro.sim.checks import evaluate_network_checks

        for name, chain in sorted(ADVERSARIAL_SCENARIOS.items()):
            built = chain(seed)
            failed = [v for v in evaluate_network_checks(built) if not v.passed]
            assert not failed, f"{name} seed {seed}: {failed}"

    def test_entries_build_deterministically(self):
        from repro.net import network_fingerprint
        from repro.sim.adversarial import ADVERSARIAL_SCENARIOS

        for chain in ADVERSARIAL_SCENARIOS.values():
            assert network_fingerprint(chain(3).network) == network_fingerprint(
                chain(3).network
            )
