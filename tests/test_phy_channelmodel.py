"""Tests for AWGN, fading gains, and frequency-domain equalisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channelmodel import (
    FadingChannel,
    awgn,
    measure_snr_db,
    rayleigh_subcarrier_gains,
    rician_subcarrier_gains,
)


class TestAwgn:
    def test_realised_snr_matches_target(self):
        rng = np.random.default_rng(0)
        clean = np.exp(1j * rng.uniform(0, 2 * np.pi, 50_000))
        noisy = awgn(clean, 10.0, rng=rng)
        assert measure_snr_db(clean, noisy) == pytest.approx(10.0, abs=0.2)

    def test_snr_independent_of_signal_scale(self):
        rng = np.random.default_rng(1)
        clean = 7.3 * np.exp(1j * rng.uniform(0, 2 * np.pi, 50_000))
        noisy = awgn(clean, 5.0, rng=2)
        assert measure_snr_db(clean, noisy) == pytest.approx(5.0, abs=0.2)

    def test_empty_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            awgn(np.array([]), 10.0)

    def test_deterministic_with_seed(self):
        clean = np.ones(100, dtype=complex)
        assert np.array_equal(awgn(clean, 3.0, rng=9), awgn(clean, 3.0, rng=9))


class TestMeasureSnr:
    def test_identical_signals_infinite_snr(self):
        clean = np.ones(10, dtype=complex)
        assert measure_snr_db(clean, clean) == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_snr_db(np.ones(3), np.ones(4))

    def test_known_ratio(self):
        clean = np.ones(4, dtype=complex)
        noisy = clean + np.full(4, 0.1 + 0j)
        assert measure_snr_db(clean, noisy) == pytest.approx(20.0, abs=1e-6)


class TestFadingGains:
    def test_rayleigh_unit_mean_power(self):
        gains = rayleigh_subcarrier_gains(200_000, rng=3)
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_rician_unit_mean_power(self):
        gains = rician_subcarrier_gains(200_000, k_factor_db=6.0, rng=4)
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_rician_less_variable_than_rayleigh(self):
        """A strong LOS component concentrates the gain distribution."""
        rayleigh = np.abs(rayleigh_subcarrier_gains(50_000, rng=5))
        rician = np.abs(rician_subcarrier_gains(50_000, k_factor_db=10.0, rng=5))
        assert np.std(rician) < np.std(rayleigh)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            rayleigh_subcarrier_gains(0)
        with pytest.raises(ConfigurationError):
            rician_subcarrier_gains(-1)


class TestFadingChannel:
    def test_apply_then_equalize_roundtrip(self):
        gains = rayleigh_subcarrier_gains(52, rng=6)
        channel = FadingChannel(gains)
        rng = np.random.default_rng(7)
        symbols = rng.standard_normal((10, 52)) + 1j * rng.standard_normal((10, 52))
        recovered = channel.equalize(channel.apply(symbols))
        assert np.allclose(recovered, symbols, atol=1e-9)

    def test_dimension_checks(self):
        channel = FadingChannel(np.ones(52, dtype=complex))
        with pytest.raises(ConfigurationError):
            channel.apply(np.ones((4, 51), dtype=complex))
        with pytest.raises(ConfigurationError):
            channel.equalize(np.ones(51, dtype=complex))

    def test_empty_gains_rejected(self):
        with pytest.raises(ConfigurationError):
            FadingChannel(np.array([], dtype=complex))
