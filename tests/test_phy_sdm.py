"""Tests for 2x2 spatial multiplexing with zero forcing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channelmodel import awgn
from repro.phy.modulation import QPSK
from repro.phy.sdm import SdmChannel, sdm_decode, sdm_encode
from repro.phy.stbc import AlamoutiChannel, alamouti_decode, alamouti_encode


def random_channel(seed: int, spread: float = 0.0) -> np.ndarray:
    """A random 2x2 channel; ``spread`` pulls it toward singular."""
    rng = np.random.default_rng(seed)
    h = (rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))) / np.sqrt(2)
    if spread:
        # Blend toward a rank-one matrix.
        rank_one = np.outer(h[:, 0], np.array([1.0, 1.0]))
        h = (1 - spread) * h + spread * rank_one
    return h


class TestEncode:
    def test_shape_and_power(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 4000, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        streams = sdm_encode(symbols)
        assert streams.shape == (2, symbols.size // 2)
        total_power = np.mean(np.sum(np.abs(streams) ** 2, axis=0))
        assert total_power == pytest.approx(1.0, rel=0.05)

    def test_odd_count_rejected(self):
        with pytest.raises(ConfigurationError):
            sdm_encode(np.ones(3, dtype=complex))


class TestChannel:
    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            SdmChannel(np.ones((3, 2), dtype=complex))

    def test_singular_channel_rejected_for_zf(self):
        singular = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        with pytest.raises(ConfigurationError):
            SdmChannel(singular).zero_forcing_matrix()

    def test_identity_channel_no_noise_enhancement(self):
        channel = SdmChannel(np.eye(2, dtype=complex))
        assert channel.noise_enhancement_db() == pytest.approx(0.0, abs=1e-9)

    def test_ill_conditioned_channel_enhances_noise(self):
        good = SdmChannel(random_channel(1))
        bad = SdmChannel(random_channel(1, spread=0.95))
        assert bad.noise_enhancement_db() > good.noise_enhancement_db()
        assert bad.condition_number > good.condition_number


class TestDecode:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_noiseless_roundtrip(self, seed):
        channel = SdmChannel(random_channel(seed))
        rng = np.random.default_rng(seed + 50)
        bits = rng.integers(0, 2, 800, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        received = channel.transmit(sdm_encode(symbols))
        decoded = sdm_decode(received, channel)
        assert np.allclose(decoded, symbols, atol=1e-9)

    def test_decode_shape_checks(self):
        channel = SdmChannel(random_channel(4))
        with pytest.raises(ConfigurationError):
            sdm_decode(np.ones(6, dtype=complex), channel)

    def test_sdm_doubles_spectral_efficiency(self):
        """The whole point of the mode: n symbols in n/2 channel uses."""
        symbols = QPSK.map_bits(
            np.random.default_rng(5).integers(0, 2, 400, dtype=np.uint8)
        )
        streams = sdm_encode(symbols)
        assert streams.shape[1] == symbols.size // 2
        encoded = alamouti_encode(symbols)
        assert encoded.shape[1] == symbols.size  # STBC: 1 symbol/use


class TestModeComparison:
    def test_stbc_more_robust_than_sdm_at_low_snr(self):
        """The mode crossover the analysis model encodes: at low SNR on
        a fading channel, Alamouti's diversity beats ZF-SDM's rate."""
        h = random_channel(7, spread=0.7)
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 4000, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)

        sdm_channel = SdmChannel(h)
        sdm_rx = awgn(sdm_channel.transmit(sdm_encode(symbols)), 10.0, rng=9)
        sdm_bits = QPSK.demap_symbols(sdm_decode(sdm_rx, sdm_channel))
        sdm_ber = np.mean(sdm_bits != bits)

        stbc_channel = AlamoutiChannel(h)
        stbc_rx = awgn(
            stbc_channel.transmit(alamouti_encode(symbols)), 10.0, rng=9
        )
        stbc_bits = QPSK.demap_symbols(alamouti_decode(stbc_rx, stbc_channel))
        stbc_ber = np.mean(stbc_bits != bits)

        assert stbc_ber < sdm_ber
