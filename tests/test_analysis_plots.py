"""Tests for ASCII plotting."""

import pytest

from repro.analysis.plots import ascii_line_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_monotone_series_non_decreasing_glyphs(self):
        line = sparkline(range(8))
        positions = ["▁▂▃▄▅▆▇█".index(ch) for ch in line]
        assert positions == sorted(positions)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_line_chart(
            [0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0], title="squares"
        )
        assert "squares" in chart
        assert "*" in chart
        assert "9.0" in chart  # y max label
        assert "0.0" in chart  # y min label

    def test_dimensions(self):
        chart = ascii_line_chart([0, 1], [0, 1], width=20, height=5)
        data_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(data_lines) == 5

    def test_marker_override(self):
        chart = ascii_line_chart([0, 1], [0, 1], marker="o")
        assert "o" in chart and "*" not in chart

    def test_y_label_included(self):
        chart = ascii_line_chart([0, 1], [0, 1], y_label="Mbps")
        assert "[Mbps]" in chart

    def test_constant_y_handled(self):
        chart = ascii_line_chart([0, 1, 2], [3.0, 3.0, 3.0])
        assert "*" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([], [])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart([0, 1], [0, 1], width=5)

    def test_mobility_trace_renders(self):
        """Charts the Fig 13 trace without error (integration)."""
        from repro.sim.mobility import run_mobility_experiment

        trace = run_mobility_experiment("away", duration_s=20.0)
        chart = ascii_line_chart(
            trace.times_s,
            trace.acorn_mbps,
            title="ACORN cell throughput",
            y_label="Mbps",
        )
        assert "ACORN cell throughput" in chart
