"""Tests for the per-channel scanning extension (§4.2's sketch)."""

import pytest

from repro.core.allocation import allocate_channels
from repro.core.scanner import ChannelScanner, ScanningThroughputModel
from repro.errors import ConfigurationError
from repro.net import Channel, ChannelPlan, ThroughputModel, build_interference_graph
from repro.net.topology import Network


def small_network() -> Network:
    network = Network()
    network.add_ap("ap1")
    network.add_ap("ap2")
    for client_id, ap_id, snr in (
        ("u1", "ap1", 12.0),
        ("u2", "ap1", 14.0),
        ("u3", "ap2", 20.0),
    ):
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts([("ap1", "ap2")])
    return network


class TestChannelScanner:
    def test_zero_sigma_matches_budget(self):
        network = small_network()
        scanner = ChannelScanner(variation_sigma_db=0.0)
        channel = Channel(36)
        measured = scanner.link_snr_db(network, "ap1", "u1", channel)
        expected = network.link_budget("ap1", "u1").subcarrier_snr_db(
            channel.params
        )
        assert measured == pytest.approx(expected)

    def test_offsets_deterministic(self):
        network = small_network()
        scanner = ChannelScanner(variation_sigma_db=4.0, seed=1)
        channel = Channel(44)
        first = scanner.link_snr_db(network, "ap1", "u1", channel)
        second = scanner.link_snr_db(network, "ap1", "u1", channel)
        assert first == second

    def test_offsets_differ_across_channels(self):
        network = small_network()
        scanner = ChannelScanner(variation_sigma_db=4.0, seed=1)
        values = {
            scanner.link_snr_db(network, "ap1", "u1", Channel(number))
            for number in (36, 40, 44, 48)
        }
        assert len(values) > 1

    def test_bonded_channel_keyed_by_primary_pair(self):
        """A bonded channel's deviation follows its lower constituent,
        so the 20 MHz fallback sees consistent spectrum."""
        network = small_network()
        scanner = ChannelScanner(variation_sigma_db=4.0, seed=1)
        bonded = scanner.link_snr_db(network, "ap1", "u1", Channel(36, 40))
        primary = scanner.link_snr_db(network, "ap1", "u1", Channel(36))
        budget = network.link_budget("ap1", "u1")
        offset_bonded = bonded - budget.subcarrier_snr_db(Channel(36, 40).params)
        offset_primary = primary - budget.subcarrier_snr_db(Channel(36).params)
        assert offset_bonded == pytest.approx(offset_primary)

    def test_scan_accumulates_time(self):
        network = small_network()
        scanner = ChannelScanner(dwell_s=0.1)
        plan = ChannelPlan().subset(4)
        scanner.scan(network, "ap1", plan)
        assert scanner.scan_time_s == pytest.approx(0.1 * len(plan))
        scanner.scan(network, "ap2", plan)
        assert scanner.scan_time_s == pytest.approx(0.2 * len(plan))

    def test_scan_returns_all_channels_and_clients(self):
        network = small_network()
        scanner = ChannelScanner()
        plan = ChannelPlan().subset(2)
        results = scanner.scan(network, "ap1", plan)
        assert set(results) == set(plan.all_channels())
        for snrs in results.values():
            assert set(snrs) == {"u1", "u2"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelScanner(variation_sigma_db=-1.0)
        with pytest.raises(ConfigurationError):
            ChannelScanner(dwell_s=0.0)


class TestScanningThroughputModel:
    def test_reduces_to_base_model_without_variation(self):
        network = small_network()
        graph = build_interference_graph(network)
        plan = ChannelPlan().subset(4)
        base = ThroughputModel()
        scanning = ScanningThroughputModel(
            scanner=ChannelScanner(variation_sigma_db=0.0)
        )
        assignment = {"ap1": Channel(36), "ap2": Channel(44, 48)}
        assert scanning.aggregate_mbps(
            network, graph, assignment=assignment
        ) == pytest.approx(
            base.aggregate_mbps(network, graph, assignment=assignment)
        )

    def test_scanning_decisions_exploit_channel_differences(self):
        """With real per-channel variation (the truth being the
        scanning model), scan-informed allocation does at least as well
        as the width-only estimator — the benefit side of the paper's
        accuracy/convergence-time trade-off."""
        network = small_network()
        graph = build_interference_graph(network)
        plan = ChannelPlan().subset(6)
        truth = ScanningThroughputModel(
            scanner=ChannelScanner(variation_sigma_db=6.0, seed=3)
        )
        blind = ThroughputModel()
        informed = allocate_channels(
            network, graph, plan, truth, rng=0
        )
        uninformed = allocate_channels(
            network, graph, plan, truth, rng=0, decision_model=blind
        )
        assert informed.aggregate_mbps >= uninformed.aggregate_mbps - 1e-9

    def test_convergence_cost_scales_with_channels(self):
        """The cost side of the trade-off: scanning every AP over the
        full plan takes channels x dwell per AP."""
        network = small_network()
        scanner = ChannelScanner(dwell_s=0.2)
        for n_channels in (2, 4):
            scanner.scan_time_s = 0.0
            plan = ChannelPlan().subset(n_channels)
            for ap_id in network.ap_ids:
                scanner.scan(network, ap_id, plan)
            expected = 0.2 * len(plan) * len(network.ap_ids)
            assert scanner.scan_time_s == pytest.approx(expected)
