"""Tests for the fairness metrics and the paper's trade-off claim."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fairness import (
    jain_index,
    proportional_fair_utility,
    throughput_fairness_report,
)
from repro.errors import ConfigurationError


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user_takes_all(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(
            jain_index([10.0, 20.0, 30.0])
        )

    def test_all_zero_degenerate(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=20))
    def test_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


class TestPfUtility:
    def test_known_value(self):
        import math

        assert proportional_fair_utility([math.e, math.e]) == pytest.approx(2.0)

    def test_starved_user_floored(self):
        value = proportional_fair_utility([10.0, 0.0], floor=1e-3)
        assert value < 0  # the starved user dominates negatively

    def test_invalid_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            proportional_fair_utility([1.0], floor=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            proportional_fair_utility([])


class TestReport:
    def test_fields(self):
        report = throughput_fairness_report([1.0, 3.0])
        assert report["total"] == pytest.approx(4.0)
        assert report["min"] == 1.0
        assert report["max"] == 3.0
        assert 0 < report["jain"] <= 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            throughput_fairness_report([])


class TestPaperTradeoff:
    def test_acorn_trades_fairness_for_throughput(self):
        """The §4 claim, measured: on Topology 2 ACORN's per-client
        throughputs total more than [17]'s (that is the objective), and
        the fairness accounting quantifies the price."""
        from repro import Acorn
        from repro.baselines import KauffmannController
        from repro.sim.scenario import topology2

        acorn_scenario = topology2()
        acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
        acorn_result = acorn.configure(acorn_scenario.client_order)
        acorn_report = throughput_fairness_report(
            acorn_result.report.per_client_mbps.values()
        )
        baseline_scenario = topology2()
        baseline = KauffmannController(
            baseline_scenario.network, baseline_scenario.plan
        )
        baseline_result = baseline.configure(baseline_scenario.client_order)
        baseline_report = throughput_fairness_report(
            baseline_result.report.per_client_mbps.values()
        )
        # Throughput objective achieved...
        assert acorn_report["total"] > baseline_report["total"]
        # ...and the fairness numbers are well-defined for both (the
        # trade-off direction depends on how many clients the baseline
        # starves outright, so only sanity is asserted here).
        assert 0 < acorn_report["jain"] <= 1
        assert 0 < baseline_report["jain"] <= 1
