"""Tests for Algorithm 2: the greedy CB-aware channel allocator."""

import pytest

from repro.config import ACORN_EPSILON
from repro.core.allocation import (
    AllocationResult,
    allocate_channels,
    greedy_allocate,
    random_assignment,
)
from repro.errors import AllocationError
from repro.graph.coloring import is_conflict_free
from repro.net.channels import Channel, ChannelPlan
from repro.net.interference import build_interference_graph


class TestRandomAssignment:
    def test_every_ap_assigned(self, plan):
        assignment = random_assignment(["a", "b", "c"], plan, rng=0)
        assert set(assignment) == {"a", "b", "c"}

    def test_deterministic_with_seed(self, plan):
        first = random_assignment(["a", "b"], plan, rng=42)
        second = random_assignment(["a", "b"], plan, rng=42)
        assert first == second

    def test_draws_from_palette(self, plan):
        palette = set(plan.all_channels())
        assignment = random_assignment([f"ap{i}" for i in range(40)], plan, rng=1)
        assert set(assignment.values()) <= palette


class TestGreedyCore:
    def evaluate_factory(self):
        """A toy objective: +10 per AP on a unique channel, +1 otherwise."""

        def evaluate(assignment):
            channels = list(assignment.values())
            return sum(
                10.0 if channels.count(c) == 1 else 1.0 for c in channels
            )

        return evaluate

    def test_improves_over_initial(self):
        palette = (Channel(36), Channel(44), Channel(52))
        initial = {"a": Channel(36), "b": Channel(36), "c": Channel(36)}
        result = greedy_allocate(
            ["a", "b", "c"], palette, self.evaluate_factory(), initial
        )
        assert result.aggregate_mbps == pytest.approx(30.0)
        assert len(set(result.assignment.values())) == 3

    def test_history_records_switches(self):
        palette = (Channel(36), Channel(44))
        initial = {"a": Channel(36), "b": Channel(36)}
        result = greedy_allocate(
            ["a", "b"], palette, self.evaluate_factory(), initial
        )
        assert result.history
        assert all(event.aggregate_mbps > 0 for event in result.history)

    def test_no_improvement_terminates_immediately(self):
        palette = (Channel(36), Channel(44))
        initial = {"a": Channel(36), "b": Channel(44)}
        result = greedy_allocate(
            ["a", "b"], palette, self.evaluate_factory(), initial
        )
        assert result.assignment == initial
        assert not result.history

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(AllocationError):
            greedy_allocate(["a"], (Channel(36),), lambda _: 0.0, {"a": Channel(36)}, epsilon=0.9)

    def test_empty_ap_list_rejected(self):
        with pytest.raises(AllocationError):
            greedy_allocate([], (Channel(36),), lambda _: 0.0, {})

    def test_incomplete_initial_rejected(self):
        with pytest.raises(AllocationError):
            greedy_allocate(
                ["a", "b"], (Channel(36),), lambda _: 0.0, {"a": Channel(36)}
            )

    def test_channel_of_lookup(self):
        result = AllocationResult(
            assignment={"a": Channel(36)},
            aggregate_mbps=1.0,
            rounds=1,
            evaluations=1,
        )
        assert result.channel_of("a") == Channel(36)
        with pytest.raises(AllocationError):
            result.channel_of("ghost")


class TestAllocateChannels:
    def test_isolates_when_channels_abound(self, triangle_network, model):
        """With 6+ channels, three contending APs end up conflict-free."""
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(6)
        result = allocate_channels(
            triangle_network, graph, plan, model, rng=0
        )
        assert is_conflict_free(graph, result.assignment)

    def test_never_worse_than_initial(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        initial = {ap: Channel(36) for ap in triangle_network.ap_ids}
        start = model.aggregate_mbps(
            triangle_network, graph, assignment=initial
        )
        result = allocate_channels(
            triangle_network, graph, plan, model, initial=initial
        )
        assert result.aggregate_mbps >= start - 1e-9

    def test_result_deterministic_given_seed(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        first = allocate_channels(triangle_network, graph, plan, model, rng=3)
        second = allocate_channels(triangle_network, graph, plan, model, rng=3)
        assert first.assignment == second.assignment

    def test_poor_cell_assigned_narrow_channel(self, two_cell_network, model):
        """The Fig 10 decision: the poor cell must not bond."""
        for client in ("poor1", "poor2", "good1", "good2"):
            pass  # associations already set by fixture
        graph = build_interference_graph(two_cell_network)
        result = allocate_channels(
            two_cell_network, graph, ChannelPlan(), model, rng=1
        )
        assert not result.assignment["ap1"].is_bonded
        assert result.assignment["ap2"].is_bonded

    def test_decision_model_ablation_scored_with_truth(
        self, two_cell_network, model
    ):
        """A distorted estimator decides; ground truth scores."""
        from repro.link.adaptation import RateController
        from repro.net.throughput import ThroughputModel

        graph = build_interference_graph(two_cell_network)
        truth_value = allocate_channels(
            two_cell_network, graph, ChannelPlan(), model, rng=2
        ).aggregate_mbps
        distorted = ThroughputModel(controller=RateController(packet_bytes=100))
        ablated = allocate_channels(
            two_cell_network,
            graph,
            ChannelPlan(),
            model,
            rng=2,
            decision_model=distorted,
        )
        # Whatever the distorted model decided, the score is in the
        # true model's units and cannot beat the true optimiser's pick
        # by construction of the greedy search space.
        assert ablated.aggregate_mbps <= truth_value + 1e-6

    def test_epsilon_matches_paper_default(self):
        assert ACORN_EPSILON == pytest.approx(1.05)
