"""Tests for network JSON serialisation."""

import pytest

from repro.errors import TopologyError
from repro.net.channels import Channel
from repro.net.serialization import (
    dump_network,
    load_network,
    network_from_dict,
    network_to_dict,
)
from repro.net.topology import Network


def full_network() -> Network:
    network = Network()
    network.add_ap("ap1", position=(0.0, 0.0), tx_power_dbm=20.0)
    network.add_ap("ap2")
    network.add_client("u1", position=(5.0, 3.0))
    network.add_client("u2")
    network.set_link_snr("ap1", "u1", 18.5)
    network.set_link_snr("ap2", "u2", 7.0)
    network.set_explicit_conflicts([("ap1", "ap2")])
    network.associate("u1", "ap1")
    network.associate("u2", "ap2")
    network.set_channel("ap1", Channel(36, 40))
    network.set_channel("ap2", Channel(44))
    return network


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        original = full_network()
        rebuilt = network_from_dict(network_to_dict(original))
        assert rebuilt.ap_ids == original.ap_ids
        assert rebuilt.client_ids == original.client_ids
        assert rebuilt.associations == original.associations
        assert rebuilt.channel_assignment == original.channel_assignment
        assert rebuilt.explicit_conflicts == original.explicit_conflicts
        assert rebuilt.ap("ap1").tx_power_dbm == 20.0
        assert rebuilt.ap("ap1").position == (0.0, 0.0)
        assert rebuilt.link_budget("ap1", "u1").snr20_db == pytest.approx(18.5)

    def test_file_roundtrip(self, tmp_path):
        original = full_network()
        path = tmp_path / "network.json"
        dump_network(original, str(path))
        rebuilt = load_network(str(path))
        assert rebuilt.associations == original.associations
        assert rebuilt.channel_assignment == original.channel_assignment

    def test_rebuilt_network_evaluates_identically(self, model):
        from repro.net import build_interference_graph

        original = full_network()
        rebuilt = network_from_dict(network_to_dict(original))
        value_original = model.aggregate_mbps(
            original, build_interference_graph(original)
        )
        value_rebuilt = model.aggregate_mbps(
            rebuilt, build_interference_graph(rebuilt)
        )
        assert value_rebuilt == pytest.approx(value_original)

    def test_empty_network(self):
        rebuilt = network_from_dict(network_to_dict(Network()))
        assert rebuilt.ap_ids == ()
        assert rebuilt.client_ids == ()

    def test_geometry_only_network(self):
        network = Network()
        network.add_ap("a", position=(1.0, 2.0))
        network.add_client("c", position=(3.0, 4.0))
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.client("c").position == (3.0, 4.0)
        # No explicit conflicts were set; that state survives as None.
        assert rebuilt.explicit_conflicts is None


class TestFormat:
    def test_version_field_present(self):
        data = network_to_dict(Network())
        assert data["version"] == 1

    def test_unknown_version_rejected(self):
        data = network_to_dict(Network())
        data["version"] = 99
        with pytest.raises(TopologyError):
            network_from_dict(data)

    def test_json_serialisable(self):
        import json

        text = json.dumps(network_to_dict(full_network()))
        assert "ap1" in text

    def test_conflicts_sorted_for_stable_diffs(self):
        network = Network()
        for name in ("c", "a", "b"):
            network.add_ap(name)
        network.set_explicit_conflicts([("c", "a"), ("b", "a")])
        data = network_to_dict(network)
        assert data["conflicts"] == [["a", "b"], ["a", "c"]]
