"""Tests for network JSON serialisation."""

import pytest

from repro.errors import TopologyError
from repro.net.channels import Channel
from repro.net.serialization import (
    dump_network,
    load_network,
    network_from_dict,
    network_to_dict,
)
from repro.net.topology import Network


def full_network() -> Network:
    network = Network()
    network.add_ap("ap1", position=(0.0, 0.0), tx_power_dbm=20.0)
    network.add_ap("ap2")
    network.add_client("u1", position=(5.0, 3.0))
    network.add_client("u2")
    network.set_link_snr("ap1", "u1", 18.5)
    network.set_link_snr("ap2", "u2", 7.0)
    network.set_explicit_conflicts([("ap1", "ap2")])
    network.associate("u1", "ap1")
    network.associate("u2", "ap2")
    network.set_channel("ap1", Channel(36, 40))
    network.set_channel("ap2", Channel(44))
    return network


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        original = full_network()
        rebuilt = network_from_dict(network_to_dict(original))
        assert rebuilt.ap_ids == original.ap_ids
        assert rebuilt.client_ids == original.client_ids
        assert rebuilt.associations == original.associations
        assert rebuilt.channel_assignment == original.channel_assignment
        assert rebuilt.explicit_conflicts == original.explicit_conflicts
        assert rebuilt.ap("ap1").tx_power_dbm == 20.0
        assert rebuilt.ap("ap1").position == (0.0, 0.0)
        assert rebuilt.link_budget("ap1", "u1").snr20_db == pytest.approx(18.5)

    def test_file_roundtrip(self, tmp_path):
        original = full_network()
        path = tmp_path / "network.json"
        dump_network(original, str(path))
        rebuilt = load_network(str(path))
        assert rebuilt.associations == original.associations
        assert rebuilt.channel_assignment == original.channel_assignment

    def test_rebuilt_network_evaluates_identically(self, model):
        from repro.net import build_interference_graph

        original = full_network()
        rebuilt = network_from_dict(network_to_dict(original))
        value_original = model.aggregate_mbps(
            original, build_interference_graph(original)
        )
        value_rebuilt = model.aggregate_mbps(
            rebuilt, build_interference_graph(rebuilt)
        )
        assert value_rebuilt == pytest.approx(value_original)

    def test_empty_network(self):
        rebuilt = network_from_dict(network_to_dict(Network()))
        assert rebuilt.ap_ids == ()
        assert rebuilt.client_ids == ()

    def test_geometry_only_network(self):
        network = Network()
        network.add_ap("a", position=(1.0, 2.0))
        network.add_client("c", position=(3.0, 4.0))
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.client("c").position == (3.0, 4.0)
        # No explicit conflicts were set; that state survives as None.
        assert rebuilt.explicit_conflicts is None


class TestFormat:
    def test_version_field_present(self):
        data = network_to_dict(Network())
        assert data["version"] == 2

    def test_unknown_version_rejected(self):
        data = network_to_dict(Network())
        data["version"] = 99
        with pytest.raises(TopologyError):
            network_from_dict(data)

    def test_version1_rejected_with_clear_error(self):
        from repro.errors import SerializationError

        data = network_to_dict(full_network())
        data["version"] = 1
        with pytest.raises(SerializationError, match="version 1"):
            network_from_dict(data)
        # SerializationError subclasses TopologyError, so pre-existing
        # guards keep catching it.
        with pytest.raises(TopologyError):
            network_from_dict(data)

    def test_fingerprint_round_trips(self):
        from repro.net.state import network_fingerprint

        original = full_network()
        data = network_to_dict(original)
        assert data["fingerprint"] == network_fingerprint(original)
        rebuilt = network_from_dict(data)
        assert network_fingerprint(rebuilt) == data["fingerprint"]

    def test_corrupted_fingerprint_rejected(self):
        from repro.errors import SerializationError

        data = network_to_dict(full_network())
        data["fingerprint"] = "0" * 64
        with pytest.raises(SerializationError, match="fingerprint"):
            network_from_dict(data)

    def test_config_round_trips(self):
        from repro.config import PathLossModel, SimulationConfig

        config = SimulationConfig(
            seed=7,
            noise_figure_db=7.5,
            max_tx_power_dbm=20.0,
            packet_size_bytes=1200,
            path_loss=PathLossModel(pl0_db=40.0, exponent=3.5),
        )
        network = Network(config)
        network.add_ap("a", position=(0.0, 0.0))
        network.add_client("c", position=(10.0, 0.0))
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.config == config
        assert (
            rebuilt.link_budget("a", "c").snr20_db
            == network.link_budget("a", "c").snr20_db
        )

    def test_json_serialisable(self):
        import json

        text = json.dumps(network_to_dict(full_network()))
        assert "ap1" in text

    def test_conflicts_sorted_for_stable_diffs(self):
        network = Network()
        for name in ("c", "a", "b"):
            network.add_ap(name)
        network.set_explicit_conflicts([("c", "a"), ("b", "a")])
        data = network_to_dict(network)
        assert data["conflicts"] == [["a", "b"], ["a", "c"]]
