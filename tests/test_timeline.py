"""Timeline subsystem suite: churn patching, sessions, and the replay.

Three contracts under test. First, incremental recompilation:
:meth:`repro.net.CompiledNetwork.apply_churn` must reproduce a fresh
``compile()`` *bit-for-bit* (fingerprints, rate tables, and the
allocations the batched engine derives from them) after any declared
arrival/departure mix, on every registered scenario, on a seeded sweep
of random enterprises, and on geometric campuses where the interference
graph flows through the AP hearing matrices. Second, the session model:
:func:`repro.traces.associations.synthesize_association_events` must
keep the paper's Fig 9 duration statistics (median ~31 min). Third, the
replay itself: :func:`repro.sim.timeline.run_timeline` is deterministic
per seed (wall-clock telemetry aside) and the controller seam patches
rather than recompiles.
"""

import math
import random

import pytest

from repro import Acorn
from repro.config import make_rng
from repro.core.allocation import allocate_channels, random_assignment
from repro.errors import ConfigurationError, ObsError, TopologyError
from repro.net import (
    ChannelPlan,
    CompiledNetwork,
    ThroughputModel,
    build_interference_graph,
    network_fingerprint,
)
from repro.obs import MetricsRegistry, Tracer, activate
from repro.sim.scenario import SCENARIOS, random_enterprise
from repro.sim.timeline import (
    TimelineConfig,
    campus_network,
    place_client_random_links,
    place_client_uniform,
    run_timeline,
)
from repro.traces.associations import (
    PAPER_MEDIAN_S,
    PAPER_P90_S,
    synthesize_association_events,
)

RANDOM_SEEDS = tuple(range(8))
ALL_CASES = [("scenario", name) for name in SCENARIOS] + [
    ("random", seed) for seed in RANDOM_SEEDS
]


def build_case(kind, key):
    """A network + plan with associations, as in test_compiled_state."""
    if kind == "scenario":
        scenario = SCENARIOS[key]()
        seed = 0
    else:
        scenario = random_enterprise(
            n_aps=5, n_clients=12, area_m=(60.0, 45.0), seed=key
        )
        seed = key
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    return network, scenario.plan


def apply_network_churn(network, removals, additions, seed=0):
    """Mutate the network: remove ``removals``, add ``additions``.

    Added clients get geometry when the APs have it, otherwise random
    SNR overrides, then associate to their strongest candidate — so the
    footnote-5 via-client edges move too.
    """
    rng = make_rng(seed)
    for client_id in removals:
        network.disassociate(client_id)
        network.remove_client(client_id)
    geometric = all(
        network.ap(ap_id).position is not None for ap_id in network.ap_ids
    )
    for client_id in additions:
        if geometric:
            place_client_uniform(network, client_id, rng)
        else:
            place_client_random_links(network, client_id, rng)
        candidates = network.candidate_aps(client_id, -8.0)
        if candidates:
            network.associate(client_id, candidates[0])


def assert_tables_equal(patched, fresh, model):
    """Rate tables must match entry-for-entry (NaN-aware float ==)."""
    a, b = patched.rate_tables(model), fresh.rate_tables(model)
    for table_a, table_b in ((a.delay, b.delay), (a.factor, b.factor)):
        assert len(table_a) == len(table_b)  # widths: 20 and 40 MHz
        for width_a, width_b in zip(table_a, table_b):
            assert len(width_a) == len(width_b)
            for row_a, row_b in zip(width_a, width_b):
                assert len(row_a) == len(row_b)
                for cell_a, cell_b in zip(row_a, row_b):
                    if math.isnan(cell_a) or math.isnan(cell_b):
                        assert math.isnan(cell_a) and math.isnan(cell_b)
                    else:
                        assert cell_a == cell_b


class TestApplyChurnDifferential:
    """apply_churn vs fresh compile, bit-for-bit."""

    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_churn_matches_fresh_compile(self, kind, key):
        network, plan = build_case(kind, key)
        model = ThroughputModel()
        patched = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        # Live tables before the churn, so the column-patching path runs.
        patched.rate_tables(model)

        removals = list(network.client_ids[-2:])
        additions = [f"churn{index}" for index in range(2)]
        apply_network_churn(
            network, removals, additions, seed=hash(key) % 1000
        )
        patched.apply_churn(
            network, added_clients=additions, removed_clients=removals
        )

        fresh = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        assert patched.fingerprint() == fresh.fingerprint()
        assert patched.fingerprint() == network_fingerprint(network)
        assert patched.client_ids == fresh.client_ids
        assert_tables_equal(patched, fresh, model)

        initial = random_assignment(network.ap_ids, plan, 3)
        results = [
            allocate_channels(
                network,
                build_interference_graph(network),
                plan,
                model,
                initial=initial,
                rng=3,
                compiled=snapshot,
            )
            for snapshot in (patched, fresh)
        ]
        assert results[0].assignment == results[1].assignment
        assert results[0].aggregate_mbps == results[1].aggregate_mbps
        assert results[0].evaluations == results[1].evaluations

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_campus_hearing_path(self, seed):
        """Geometric campus: churn moves footnote-5 hearing edges."""
        network = campus_network(n_aps=12, spacing_m=30.0, seed=seed)
        rng = make_rng(seed)
        for index in range(20):
            client_id = f"c{index}"
            place_client_uniform(network, client_id, rng)
            network.associate(
                client_id, network.candidate_aps(client_id, -8.0)[0]
            )
        plan = ChannelPlan().subset(4)
        patched = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        # Several rounds, reusing the cached hearing matrices each time.
        for round_index in range(3):
            removals = list(network.client_ids[: round_index + 1])
            additions = [f"r{round_index}c{k}" for k in range(2)]
            apply_network_churn(
                network, removals, additions, seed=seed + round_index
            )
            patched.apply_churn(
                network, added_clients=additions, removed_clients=removals
            )
            fresh = CompiledNetwork.compile(
                network, build_interference_graph(network), plan
            )
            assert patched.fingerprint() == fresh.fingerprint()

    def test_association_only_resync(self):
        """Re-association without arrivals/departures is a valid patch."""
        network, plan = build_case("random", 0)
        patched = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        mover = network.client_ids[0]
        candidates = network.candidate_aps(mover, -8.0)
        target = candidates[-1]
        network.associate(mover, target)
        patched.apply_churn(network)
        fresh = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        assert patched.fingerprint() == fresh.fingerprint()
        assert patched.thaw().associations[mover] == target

    def test_ap_set_change_rejected(self):
        network, plan = build_case("random", 1)
        compiled = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        network.add_ap("late-ap", position=(1.0, 2.0))
        with pytest.raises(TopologyError):
            compiled.apply_churn(network)

    def test_undeclared_churn_rejected(self):
        network, plan = build_case("random", 2)
        compiled = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        victim = network.client_ids[0]
        network.disassociate(victim)
        network.remove_client(victim)
        with pytest.raises(TopologyError):
            compiled.apply_churn(network)  # departure not declared

    def test_remove_client_unknown_rejected(self):
        network, _ = build_case("random", 3)
        with pytest.raises(TopologyError):
            network.remove_client("nobody")


class TestThawAfterChurn:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS[:4])
    def test_thaw_round_trip_after_churn(self, seed):
        """A patched snapshot thaws back to the live network, bit-for-bit."""
        network, plan = build_case("random", seed)
        patched = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        removals = list(network.client_ids[-2:])
        additions = ["thaw0", "thaw1"]
        apply_network_churn(network, removals, additions, seed=seed)
        patched.apply_churn(
            network, added_clients=additions, removed_clients=removals
        )
        thawed = patched.thaw()
        assert network_fingerprint(thawed) == network_fingerprint(network)
        assert thawed.client_ids == network.client_ids
        assert thawed.associations == network.associations
        # And the thawed network re-compiles to the same snapshot.
        recompiled = CompiledNetwork.compile(
            thawed, build_interference_graph(thawed), plan
        )
        assert recompiled.fingerprint() == patched.fingerprint()


class TestControllerChurn:
    def _campus_acorn(self, n_clients=6, seed=0):
        network = campus_network(n_aps=6, spacing_m=30.0, seed=seed)
        rng = make_rng(seed)
        acorn = Acorn(
            network, ChannelPlan().subset(4), ThroughputModel(), seed=seed
        )
        acorn.assign_initial_channels()
        for index in range(n_clients):
            place_client_uniform(network, f"c{index}", rng)
            acorn.admit_client(f"c{index}")
        return network, acorn, rng

    def test_apply_churn_patches_instead_of_recompiling(self):
        network, acorn, rng = self._campus_acorn()
        tracer = Tracer()
        with activate(tracer):
            acorn.allocate()  # builds the compiled snapshot
            place_client_uniform(network, "late", rng)
            acorn.apply_churn(added_clients=("late",))
            acorn.allocate()
        counters = tracer.to_payload()["metrics"]["counters"]
        assert counters.get("controller.churn_patches", 0) >= 1
        assert counters.get("controller.compile_builds", 0) == 1
        assert "late" in acorn.compiled.client_ids

    def test_apply_churn_invalidates_when_uncompiled(self):
        network, acorn, rng = self._campus_acorn(n_clients=3)
        place_client_uniform(network, "late", rng)
        acorn.apply_churn(added_clients=("late",))  # no snapshot yet: no-op
        assert acorn.graph is not None  # rebuilt lazily, includes the churn

    def test_churned_controller_matches_fresh_controller(self):
        """A patched controller snapshot equals a fresh controller's."""
        network, acorn, rng = self._campus_acorn()
        acorn.allocate()
        place_client_uniform(network, "late", rng)
        acorn.apply_churn(added_clients=("late",))
        network.associate("late", network.candidate_aps("late", -8.0)[0])
        acorn.apply_churn()

        fresh_acorn = Acorn(
            network, ChannelPlan().subset(4), ThroughputModel(), seed=0
        )
        assert acorn.compiled.fingerprint() == fresh_acorn.compiled.fingerprint()
        assert set(acorn.graph.edges) == set(fresh_acorn.graph.edges)
        assert set(acorn.graph.nodes) == set(fresh_acorn.graph.nodes)

    def test_admit_incremental_equivalent(self):
        """incremental=True admissions match the recompile-everything path."""
        outcomes = []
        for incremental in (False, True):
            network = campus_network(n_aps=6, spacing_m=30.0, seed=7)
            rng = make_rng(7)
            acorn = Acorn(
                network, ChannelPlan().subset(4), ThroughputModel(), seed=7
            )
            acorn.assign_initial_channels()
            acorn.allocate()
            for index in range(8):
                place_client_uniform(network, f"c{index}", rng)
                acorn.admit_client(f"c{index}", incremental=incremental)
            outcomes.append(
                (dict(network.associations), acorn.allocate().assignment)
            )
        assert outcomes[0] == outcomes[1]


class TestAssociationEvents:
    def test_median_matches_paper(self):
        """Session durations keep the Fig 9 median the period T rests on."""
        events = synthesize_association_events(
            200_000.0, 0.1, rng=make_rng(2010)
        )
        durations = sorted(event.duration_s for event in events)
        assert len(durations) > 5_000
        median = durations[len(durations) // 2]
        assert median == pytest.approx(PAPER_MEDIAN_S, rel=0.05)
        p90 = durations[int(len(durations) * 0.9)]
        assert p90 == pytest.approx(PAPER_P90_S, rel=0.08)

    def test_events_ordered_and_bounded(self):
        events = list(
            synthesize_association_events(3600.0, 1 / 60.0, rng=make_rng(5))
        )
        arrivals = [event.arrival_s for event in events]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 3600.0 for t in arrivals)
        assert all(event.duration_s > 0 for event in events)
        assert all(
            event.departure_s == event.arrival_s + event.duration_s
            for event in events
        )

    def test_deterministic_per_seed(self):
        first = list(
            synthesize_association_events(7200.0, 0.01, rng=make_rng(3))
        )
        second = list(
            synthesize_association_events(7200.0, 0.01, rng=make_rng(3))
        )
        assert first == second
        assert len({event.client_id for event in first}) == len(first)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_association_events(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            synthesize_association_events(10.0, -1.0)
        with pytest.raises(ConfigurationError):
            synthesize_association_events(10.0, 1.0, median_s=-5.0)


class TestTimeSeriesMetric:
    def test_merge_is_commutative(self):
        payloads = []
        for offset in range(3):
            registry = MetricsRegistry()
            series = registry.series("timeline.throughput_mbps")
            for step in range(4):
                series.append(offset * 10 + step, float(step))
            payloads.append(registry.to_payload())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for payload in payloads:
            forward.merge_payload(payload)
        for payload in reversed(payloads):
            backward.merge_payload(payload)
        assert forward.to_payload() == backward.to_payload()

    def test_payload_round_trip(self):
        registry = MetricsRegistry()
        registry.series("s").append(1.5, 2.5)
        registry.counter("c").inc()
        clone = MetricsRegistry.from_payload(registry.to_payload())
        assert clone.to_payload() == registry.to_payload()
        assert clone.series("s").samples == [(1.5, 2.5)]

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.series("x")
        with pytest.raises(ObsError):
            registry.counter("x")


class TestRunTimeline:
    CONFIG = TimelineConfig(
        horizon_s=1800.0,
        arrival_rate_per_s=1 / 120.0,
        period_s=900.0,
        seed=11,
    )

    def _run(self, config=None):
        network = campus_network(n_aps=9, spacing_m=30.0, seed=11)
        return run_timeline(network, ChannelPlan().subset(4), config or self.CONFIG)

    def test_replay_accounting(self):
        result = self._run()
        n_periodic = sum(
            1 for epoch in result.epochs if epoch.trigger == "periodic"
        )
        assert result.n_events == (
            result.n_arrivals
            + result.n_rejected
            + result.n_departures
            + n_periodic
        )
        assert result.n_departures <= result.n_arrivals
        assert result.peak_clients >= 1
        assert result.epochs[0].trigger == "initial"
        assert any(epoch.trigger == "periodic" for epoch in result.epochs)
        assert result.mean_throughput_mbps > 0.0
        assert result.downtime_s >= 0.0

    def test_deterministic_per_seed(self):
        def signature(result):
            return (
                result.mean_throughput_mbps,
                result.n_arrivals,
                result.n_departures,
                result.n_rejected,
                result.peak_clients,
                [
                    (e.t_s, e.trigger, e.total_mbps, e.jain, e.n_clients)
                    for e in result.epochs
                ],
                result.samples,
            )

        assert signature(self._run()) == signature(self._run())

    def test_event_triggered_epochs(self):
        config = TimelineConfig(
            horizon_s=1800.0,
            arrival_rate_per_s=1 / 120.0,
            period_s=900.0,
            allocate_every_arrivals=3,
            seed=11,
        )
        result = self._run(config)
        assert any(epoch.trigger == "event" for epoch in result.epochs)

    def test_metrics_stream_under_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            result = self._run()
        payload = tracer.to_payload()["metrics"]
        assert payload["counters"]["timeline.arrivals"] == result.n_arrivals
        series = payload["series"]["timeline.throughput_mbps"]
        assert len(series) == result.n_epochs
        assert payload["counters"]["controller.compile_builds"] == 1

    def test_place_client_random_links(self):
        network, plan = build_case("scenario", list(SCENARIOS)[0])
        rng = make_rng(0)
        place_client_random_links(network, "fresh", rng)
        assert "fresh" in network.client_ids
        assert network.candidate_aps("fresh", -8.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TimelineConfig(horizon_s=-1.0)
        with pytest.raises(ConfigurationError):
            TimelineConfig(arrival_rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            TimelineConfig(period_s=0.0)
        with pytest.raises(ConfigurationError):
            TimelineConfig(allocate_every_arrivals=-1)
