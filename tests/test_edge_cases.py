"""Failure injection and degenerate-topology tests.

Production controllers meet broken deployments: cells full of dead
links, APs with no clients, plans without bonded channels, single-AP
networks. None of these may crash or produce nonsense.
"""

import pytest

from repro import Acorn
from repro.baselines import KauffmannController, RandomConfigurator
from repro.core import allocate_channels
from repro.errors import AssociationError
from repro.net import (
    Channel,
    ChannelPlan,
    Network,
    ThroughputModel,
    build_interference_graph,
)


def network_with(links, conflicts=()):
    """Build a network from {(ap, client): snr} plus conflict pairs."""
    network = Network()
    for (ap_id, client_id), snr in links.items():
        if ap_id not in network.ap_ids:
            network.add_ap(ap_id)
        if client_id is not None and client_id not in network.client_ids:
            network.add_client(client_id)
        if client_id is not None:
            network.set_link_snr(ap_id, client_id, snr)
    network.set_explicit_conflicts(list(conflicts))
    return network


class TestDeadCells:
    def test_all_links_dead_network_evaluates_to_zero(self, model):
        network = network_with(
            {("ap1", "u1"): -30.0, ("ap1", "u2"): -25.0}
        )
        network.associate("u1", "ap1")
        network.associate("u2", "ap1")
        graph = build_interference_graph(network)
        network.set_channel("ap1", Channel(36))
        report = model.evaluate(network, graph)
        assert report.total_mbps == 0.0

    def test_allocation_on_dead_network_terminates(self, model):
        network = network_with({("ap1", "u1"): -30.0})
        network.associate("u1", "ap1")
        graph = build_interference_graph(network)
        result = allocate_channels(
            network, graph, ChannelPlan(), model, rng=0, max_rounds=3
        )
        assert result.aggregate_mbps == 0.0

    def test_acorn_with_unreachable_clients_only(self, model):
        """Every client below the association floor: nothing associates
        but configuration completes."""
        network = network_with({("ap1", "u1"): -30.0, ("ap1", "u2"): -40.0})
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        result = acorn.configure()
        assert result.report.associations == {}
        assert result.total_mbps == 0.0

    def test_one_dead_client_in_live_cell(self, model):
        """A single PER=1 client zeroes its whole cell (the anomaly's
        limit case), but the other cell is untouched."""
        network = network_with(
            {
                ("ap1", "dead"): -4.5,
                ("ap1", "alive"): 25.0,
                ("ap2", "fine"): 25.0,
            }
        )
        for client, ap in (("dead", "ap1"), ("alive", "ap1"), ("fine", "ap2")):
            network.associate(client, ap)
        graph = build_interference_graph(network)
        network.set_channel("ap1", Channel(36, 40))
        network.set_channel("ap2", Channel(44, 48))
        report = ThroughputModel().evaluate(network, graph)
        assert report.per_ap_mbps["ap1"] == 0.0
        assert report.per_ap_mbps["ap2"] > 0


class TestDegenerateShapes:
    def test_single_ap_single_client(self, model):
        network = network_with({("ap1", "u1"): 20.0})
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        result = acorn.configure(["u1"])
        assert result.total_mbps > 0
        assert result.report.associations == {"u1": "ap1"}

    def test_single_ap_many_clients(self, model):
        links = {("ap1", f"u{i}"): 20.0 + i for i in range(10)}
        network = network_with(links)
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        result = acorn.configure()
        assert len(result.report.associations) == 10

    def test_ap_with_no_clients_contributes_zero(self, model):
        network = network_with({("ap1", "u1"): 20.0, ("lonely", None): 0.0})
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        result = acorn.configure(["u1"])
        assert result.report.per_ap_mbps["lonely"] == 0.0

    def test_plan_without_bonded_channels(self, model):
        """An allocator restricted to 20 MHz colours still configures."""
        network = network_with(
            {("ap1", "u1"): 25.0, ("ap2", "u2"): 25.0},
            conflicts=[("ap1", "ap2")],
        )
        plan = ChannelPlan([36, 44], bonded_pairs=[])
        acorn = Acorn(network, plan, model, seed=1)
        result = acorn.configure(["u1", "u2"])
        assert all(
            not channel.is_bonded
            for channel in result.report.assignment.values()
        )
        assert result.total_mbps > 0

    def test_one_channel_total(self, model):
        """A single colour forces full sharing; still no crash."""
        network = network_with(
            {("ap1", "u1"): 25.0, ("ap2", "u2"): 25.0},
            conflicts=[("ap1", "ap2")],
        )
        plan = ChannelPlan([36], bonded_pairs=[])
        acorn = Acorn(network, plan, model, seed=1)
        result = acorn.configure(["u1", "u2"])
        assert result.total_mbps > 0
        # Both APs share the single channel at M = 1/2 each.
        values = list(result.report.per_ap_mbps.values())
        assert values[0] == pytest.approx(values[1], rel=0.01)

    def test_fully_connected_large_clique(self, model):
        """8 mutually interfering APs — Δ = 7 — allocate and satisfy
        the worst-case bound."""
        links = {(f"ap{i}", f"u{i}"): 22.0 for i in range(8)}
        conflicts = [
            (f"ap{i}", f"ap{j}") for i in range(8) for j in range(i + 1, 8)
        ]
        network = network_with(links, conflicts)
        for i in range(8):
            network.associate(f"u{i}", f"ap{i}")
        graph = build_interference_graph(network)
        result = allocate_channels(
            network, graph, ChannelPlan(), model, rng=0
        )
        from repro.baselines import isolation_upper_bound_mbps
        from repro.graph.coloring import worst_case_ratio

        y_star = isolation_upper_bound_mbps(
            network, ChannelPlan(), model, network.associations
        )
        assert result.aggregate_mbps >= worst_case_ratio(graph) * y_star - 1e-6


class TestBaselineRobustness:
    def test_kauffmann_with_unreachable_client(self, model):
        network = network_with(
            {("ap1", "u1"): 20.0, ("ap1", "deaf"): -40.0}
        )
        controller = KauffmannController(network, ChannelPlan(), model)
        result = controller.configure(["u1", "deaf"])
        assert "deaf" not in result.report.associations

    def test_random_configurator_with_orphan_client(self, model):
        network = network_with({("ap1", "u1"): 20.0})
        network.add_client("orphan")  # no links at all
        graph = build_interference_graph(network)
        configurator = RandomConfigurator(
            network, graph, ChannelPlan(), model
        )
        configuration = configurator.draw(rng=0)
        assert "orphan" not in configuration.associations

    def test_admit_client_with_channels_but_no_link(self, model):
        network = network_with({("ap1", "u1"): 20.0})
        network.add_client("deaf")
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        acorn.assign_initial_channels()
        with pytest.raises(AssociationError):
            acorn.admit_client("deaf")


class TestMobilityEdges:
    def test_zero_length_walk(self):
        from repro.sim.mobility import run_mobility_experiment

        trace = run_mobility_experiment(
            "away", duration_s=5.0, near_m=10.0, far_m=10.0
        )
        assert len(set(trace.mobile_snr20_db)) == 1

    def test_client_starting_dead_comes_alive(self):
        """Walking toward the AP from beyond radio range."""
        from repro.sim.mobility import run_mobility_experiment

        trace = run_mobility_experiment(
            "toward", duration_s=40.0, near_m=5.0, far_m=120.0
        )
        assert trace.acorn_mbps[0] == pytest.approx(0.0, abs=1.0)
        assert trace.acorn_mbps[-1] > 50.0
