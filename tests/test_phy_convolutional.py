"""Tests for the K=7 convolutional encoder and Viterbi decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.phy.coding import code_by_rate
from repro.phy.convolutional import (
    CONSTRAINT_LENGTH,
    GENERATORS_OCTAL,
    PUNCTURING_PATTERNS,
    ConvolutionalCodec,
)

ALL_RATES = sorted(PUNCTURING_PATTERNS)


class TestEncoder:
    def test_generators_are_the_standard_pair(self):
        assert GENERATORS_OCTAL == (0o133, 0o171)
        assert CONSTRAINT_LENGTH == 7

    def test_rate_half_output_length(self):
        codec = ConvolutionalCodec(1 / 2)
        coded = codec.encode(np.zeros(100, dtype=np.uint8))
        # (100 + 6 tail bits) * 2 outputs.
        assert coded.size == 212

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_coded_length_matches_encode(self, rate):
        codec = ConvolutionalCodec(rate)
        bits = np.random.default_rng(1).integers(0, 2, 123, dtype=np.uint8)
        assert codec.encode(bits).size == codec.coded_length(123)

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_effective_rate_close_to_nominal(self, rate):
        codec = ConvolutionalCodec(rate)
        n = 3000
        coded = codec.coded_length(n)
        assert n / coded == pytest.approx(rate, rel=0.02)

    def test_all_zero_input_gives_all_zero_output(self):
        codec = ConvolutionalCodec(1 / 2)
        coded = codec.encode(np.zeros(50, dtype=np.uint8))
        assert not np.any(coded)

    def test_encoder_is_linear(self):
        """Convolutional codes are linear: enc(a^b) = enc(a)^enc(b)."""
        codec = ConvolutionalCodec(1 / 2)
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, 64, dtype=np.uint8)
        b = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(
            codec.encode(a ^ b), codec.encode(a) ^ codec.encode(b)
        )

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCodec(1 / 2).encode(np.array([], dtype=np.uint8))

    def test_unsupported_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCodec(7 / 8)

    def test_invalid_length_query_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCodec(1 / 2).coded_length(0)

    def test_minimum_weight_matches_free_distance(self):
        """The lightest nonzero codeword has weight = d_free (10 for
        the unpunctured K=7 code). Checked over all short inputs."""
        codec = ConvolutionalCodec(1 / 2)
        best = None
        for value in range(1, 256):
            bits = np.array(
                [(value >> i) & 1 for i in range(8)], dtype=np.uint8
            )
            weight = int(codec.encode(bits).sum())
            best = weight if best is None else min(best, weight)
        assert best == code_by_rate(1 / 2).free_distance


class TestDecoder:
    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_clean_roundtrip(self, rate):
        codec = ConvolutionalCodec(rate)
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 400, dtype=np.uint8)
        decoded = codec.decode(codec.encode(bits), 400)
        assert np.array_equal(decoded, bits)

    def test_corrects_scattered_errors(self):
        """Rate 1/2 with d_free = 10 corrects any ~4 scattered flips."""
        codec = ConvolutionalCodec(1 / 2)
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 300, dtype=np.uint8)
        coded = codec.encode(bits)
        corrupted = coded.copy()
        # Four flips far apart.
        for position in (10, 150, 350, 550):
            corrupted[position] ^= 1
        assert np.array_equal(codec.decode(corrupted, 300), bits)

    def test_two_percent_channel_errors_decoded_cleanly(self):
        codec = ConvolutionalCodec(1 / 2)
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        coded = codec.encode(bits)
        noise = (rng.random(coded.size) < 0.02).astype(np.uint8)
        decoded = codec.decode(coded ^ noise, 500)
        assert np.mean(decoded != bits) < 0.002

    def test_wrong_length_rejected(self):
        codec = ConvolutionalCodec(1 / 2)
        with pytest.raises(ConfigurationError):
            codec.decode(np.zeros(100, dtype=np.uint8), 80)

    def test_invalid_bit_count_rejected(self):
        codec = ConvolutionalCodec(1 / 2)
        with pytest.raises(ConfigurationError):
            codec.decode(np.zeros(12, dtype=np.uint8), 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=120), st.integers(0, 10_000))
    def test_roundtrip_property(self, n_bits, seed):
        codec = ConvolutionalCodec(3 / 4)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n_bits, dtype=np.uint8)
        assert np.array_equal(codec.decode(codec.encode(bits), n_bits), bits)

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_measured_ber_below_union_bound(self, rate):
        """The union bound of repro.phy.coding upper-bounds the real
        decoder — the consistency check tying the two models together."""
        codec = ConvolutionalCodec(rate)
        rng = np.random.default_rng(6)
        p = 0.01
        errors = 0
        total = 0
        for _ in range(10):
            bits = rng.integers(0, 2, 400, dtype=np.uint8)
            coded = codec.encode(bits)
            noise = (rng.random(coded.size) < p).astype(np.uint8)
            decoded = codec.decode(coded ^ noise, 400)
            errors += int(np.sum(decoded != bits))
            total += 400
        bound = code_by_rate(rate).coded_ber(p)
        assert errors / total <= bound + 0.01

    def test_stronger_code_corrects_more(self):
        """At equal channel error rate, rate 1/2 out-decodes rate 5/6."""
        rng = np.random.default_rng(7)
        p = 0.04
        results = {}
        for rate in (1 / 2, 5 / 6):
            codec = ConvolutionalCodec(rate)
            errors = 0
            for trial in range(8):
                bits = rng.integers(0, 2, 300, dtype=np.uint8)
                coded = codec.encode(bits)
                noise = (rng.random(coded.size) < p).astype(np.uint8)
                decoded = codec.decode(coded ^ noise, 300)
                errors += int(np.sum(decoded != bits))
            results[rate] = errors
        assert results[1 / 2] < results[5 / 6]


class TestCodedHarness:
    def test_high_snr_error_free(self):
        from repro.phy.ofdm import OFDM_20MHZ
        from repro.warp.codedmac import CodedBerHarness

        harness = CodedBerHarness(OFDM_20MHZ, code_rate=1 / 2)
        measurement = harness.measure_at_subcarrier_snr(
            12.0, n_packets=4, packet_bytes=100, rng=8
        )
        assert measurement.ber == 0.0
        assert measurement.per == 0.0

    def test_coding_rescues_marginal_snr(self):
        """At an SNR where the uncoded chain loses every packet, the
        coded chain delivers most of them — the Section 3.2 point about
        raw BER not mapping directly to commercial PER."""
        from repro.phy.ofdm import OFDM_20MHZ
        from repro.warp.bermac import BerMacHarness
        from repro.warp.codedmac import CodedBerHarness

        uncoded = BerMacHarness(OFDM_20MHZ).measure_at_subcarrier_snr(
            6.0, n_packets=6, packet_bytes=150, rng=9
        )
        coded = CodedBerHarness(
            OFDM_20MHZ, code_rate=1 / 2
        ).measure_at_subcarrier_snr(6.0, n_packets=6, packet_bytes=150, rng=9)
        assert uncoded.per == 1.0
        assert coded.per <= 0.5

    def test_invalid_inputs_rejected(self):
        from repro.errors import ConfigurationError
        from repro.phy.ofdm import OFDM_20MHZ
        from repro.warp.codedmac import CodedBerHarness

        harness = CodedBerHarness(OFDM_20MHZ)
        with pytest.raises(ConfigurationError):
            harness.measure_at_subcarrier_snr(5.0, n_packets=0)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            harness.run_packet(5.0, 0, rng)
