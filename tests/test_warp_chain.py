"""Tests for the WARP transmit/receive chain and the BERMAC harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channelmodel import awgn
from repro.phy.modulation import QAM16, QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.warp.bermac import BerMacHarness, BerMeasurement, PacketTrialResult, time_snr_offset_db
from repro.warp.receiver import OfdmReceiver, detect_preamble
from repro.warp.waveform import BARKER_13, OfdmTransmitter, preamble_sequence


class TestWaveform:
    def test_barker_13_autocorrelation(self):
        """Barker codes have unit sidelobes — the reason they are used."""
        full = np.correlate(BARKER_13, BARKER_13, mode="full")
        peak = full[len(BARKER_13) - 1]
        sidelobes = np.abs(np.delete(full, len(BARKER_13) - 1))
        assert peak == 13
        assert sidelobes.max() <= 1

    def test_frame_sample_count(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        frame = transmitter.build_frame(5, rng=0)
        expected_payload = 5 * (64 + 16)
        assert frame.samples.size == frame.preamble_length + expected_payload

    def test_frame_power_scaling(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK, tx_power=2.5)
        frame = transmitter.build_frame(50, rng=1)
        payload = frame.samples[frame.preamble_length :]
        assert np.mean(np.abs(payload) ** 2) == pytest.approx(2.5, rel=1e-6)

    def test_explicit_bits_used(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        bits = np.zeros(104, dtype=np.uint8)
        frame = transmitter.build_frame(1, bits=bits)
        assert np.array_equal(frame.bits, bits)

    def test_wrong_bit_count_rejected(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        with pytest.raises(ConfigurationError):
            transmitter.build_frame(1, bits=np.zeros(10, dtype=np.uint8))

    def test_invalid_symbol_count_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmTransmitter(OFDM_20MHZ, QPSK).build_frame(0)

    def test_invalid_power_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmTransmitter(OFDM_20MHZ, QPSK, tx_power=0.0)


class TestReceiver:
    @pytest.mark.parametrize("params", [OFDM_20MHZ, OFDM_40MHZ])
    @pytest.mark.parametrize("modulation", [QPSK, QAM16])
    def test_noiseless_roundtrip(self, params, modulation):
        transmitter = OfdmTransmitter(params, modulation)
        frame = transmitter.build_frame(3, rng=2)
        receiver = OfdmReceiver(params, modulation)
        result = receiver.demodulate_frame(frame)
        assert result.bit_errors(frame.bits) == 0

    def test_differential_roundtrip(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK, differential=True)
        frame = transmitter.build_frame(4, rng=3)
        receiver = OfdmReceiver(OFDM_20MHZ, QPSK, differential=True)
        result = receiver.demodulate_frame(frame)
        assert result.bit_errors(frame.bits) == 0

    def test_preamble_detected_at_moderate_snr(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        frame = transmitter.build_frame(2, rng=4)
        noisy = awgn(frame.samples, 15.0, rng=5)
        assert detect_preamble(noisy) == frame.preamble_length

    def test_preamble_detection_with_leading_noise(self):
        """The correlator finds the payload start despite a noise prefix."""
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        frame = transmitter.build_frame(2, rng=6)
        rng = np.random.default_rng(7)
        prefix = 0.05 * (rng.standard_normal(37) + 1j * rng.standard_normal(37))
        shifted = np.concatenate([prefix, frame.samples])
        assert detect_preamble(shifted) == 37 + frame.preamble_length

    def test_pure_noise_not_detected(self):
        rng = np.random.default_rng(8)
        noise = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        assert detect_preamble(noise) is None

    def test_fallback_when_detection_fails(self):
        receiver = OfdmReceiver(OFDM_20MHZ, QPSK)
        rng = np.random.default_rng(9)
        garbage = 0.01 * (
            rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        )
        result = receiver.demodulate(garbage, 2)
        assert not result.detected

    def test_short_payload_rejected(self):
        receiver = OfdmReceiver(OFDM_20MHZ, QPSK)
        with pytest.raises(ConfigurationError):
            receiver.demodulate(np.ones(60, dtype=complex), 5, payload_start=0)

    def test_bit_error_count_mismatch_rejected(self):
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK)
        frame = transmitter.build_frame(1, rng=10)
        receiver = OfdmReceiver(OFDM_20MHZ, QPSK)
        result = receiver.demodulate_frame(frame)
        with pytest.raises(ConfigurationError):
            result.bit_errors(np.zeros(5, dtype=np.uint8))


class TestBerMeasurement:
    def test_accumulation(self):
        measurement = BerMeasurement(snr_db=5.0)
        measurement.record(PacketTrialResult(n_bits=100, bit_errors=0))
        measurement.record(PacketTrialResult(n_bits=100, bit_errors=3))
        assert measurement.ber == pytest.approx(0.015)
        assert measurement.per == pytest.approx(0.5)

    def test_empty_measurement_rejected(self):
        measurement = BerMeasurement(snr_db=0.0)
        with pytest.raises(ConfigurationError):
            _ = measurement.ber
        with pytest.raises(ConfigurationError):
            _ = measurement.per


class TestBerMacHarness:
    def test_time_snr_offset_sign(self):
        """Fewer used bins than FFT size -> time SNR below subcarrier SNR."""
        assert time_snr_offset_db(OFDM_20MHZ) < 0
        assert time_snr_offset_db(OFDM_40MHZ) < 0

    def test_measured_ber_tracks_theory(self):
        from repro.phy.ber import uncoded_ber

        harness = BerMacHarness(OFDM_20MHZ, QPSK)
        measurement = harness.measure_at_subcarrier_snr(
            4.0, n_packets=20, packet_bytes=250, rng=11
        )
        assert measurement.ber == pytest.approx(
            uncoded_ber(QPSK, 4.0), rel=0.3
        )

    def test_width_independence_at_fixed_snr(self):
        """Fig 3a: at the same per-subcarrier SNR, width does not matter."""
        kwargs = dict(n_packets=15, packet_bytes=250, rng=12)
        ber20 = (
            BerMacHarness(OFDM_20MHZ, QPSK)
            .measure_at_subcarrier_snr(4.0, **kwargs)
            .ber
        )
        ber40 = (
            BerMacHarness(OFDM_40MHZ, QPSK)
            .measure_at_subcarrier_snr(4.0, **kwargs)
            .ber
        )
        assert ber20 == pytest.approx(ber40, rel=0.35)

    def test_cb_worse_at_fixed_tx_power(self):
        """Fig 3b: at the same transmit power, the wider channel errs more."""
        kwargs = dict(n_packets=15, packet_bytes=250, rng=13)
        ber20 = (
            BerMacHarness(OFDM_20MHZ, QPSK)
            .measure_at_tx_power(10.0, path_loss_db=118.0, **kwargs)
            .ber
        )
        ber40 = (
            BerMacHarness(OFDM_40MHZ, QPSK)
            .measure_at_tx_power(10.0, path_loss_db=118.0, **kwargs)
            .ber
        )
        assert ber40 > ber20

    def test_high_snr_error_free(self):
        harness = BerMacHarness(OFDM_20MHZ, QPSK)
        measurement = harness.measure_at_subcarrier_snr(
            25.0, n_packets=5, packet_bytes=250, rng=14
        )
        assert measurement.ber == 0.0
        assert measurement.per == 0.0

    def test_sweep_returns_one_point_per_snr(self):
        harness = BerMacHarness(OFDM_20MHZ, QPSK)
        sweep = harness.sweep_subcarrier_snr(
            [0.0, 6.0], n_packets=3, packet_bytes=100, rng=15
        )
        assert [m.snr_db for m in sweep] == [0.0, 6.0]

    def test_invalid_packet_count_rejected(self):
        harness = BerMacHarness(OFDM_20MHZ, QPSK)
        with pytest.raises(ConfigurationError):
            harness.measure_at_subcarrier_snr(5.0, n_packets=0)

    def test_fading_harness_runs(self):
        harness = BerMacHarness(OFDM_20MHZ, QPSK, fading_seed=99)
        measurement = harness.measure_at_subcarrier_snr(
            12.0, n_packets=4, packet_bytes=100, rng=16
        )
        assert 0.0 <= measurement.ber <= 0.5
