"""Tests for the ACORN controller: configure() and opportunistic width."""

import pytest

from repro.core.controller import Acorn
from repro.errors import AssociationError
from repro.net.channels import Channel, ChannelPlan
from repro.net.topology import Network


def fresh_two_cell() -> Network:
    network = Network()
    network.add_ap("ap1")
    network.add_ap("ap2")
    links = {
        ("ap1", "poor1"): 1.0,
        ("ap1", "poor2"): 2.0,
        ("ap2", "good1"): 25.0,
        ("ap2", "good2"): 27.0,
    }
    for (ap_id, client_id), snr in links.items():
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
    network.set_explicit_conflicts([])
    return network


class TestConfigure:
    def test_full_pass_produces_working_network(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model, seed=1)
        result = acorn.configure(["poor1", "poor2", "good1", "good2"])
        assert result.total_mbps > 0
        assert set(result.report.associations) == {
            "poor1",
            "poor2",
            "good1",
            "good2",
        }
        assert not network.channel_assignment["ap1"].is_bonded
        assert network.channel_assignment["ap2"].is_bonded

    def test_default_order_is_seeded_shuffle(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model, seed=5)
        result = acorn.configure()
        assert sorted(result.association_order) == sorted(network.client_ids)

    def test_deterministic_given_seed(self, model):
        results = []
        for _ in range(2):
            network = fresh_two_cell()
            acorn = Acorn(network, ChannelPlan(), model, seed=9)
            results.append(acorn.configure().total_mbps)
        assert results[0] == pytest.approx(results[1])

    def test_unreachable_client_skipped(self, model):
        network = fresh_two_cell()
        network.add_client("deaf")  # no links at all
        acorn = Acorn(network, ChannelPlan(), model, seed=2)
        result = acorn.configure()
        assert "deaf" not in result.report.associations

    def test_admit_client_requires_channels(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model)
        with pytest.raises(AssociationError):
            acorn.admit_client("poor1")

    def test_graph_cached_and_invalidated(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model)
        first = acorn.graph
        assert acorn.graph is first
        acorn.invalidate_graph()
        assert acorn.graph is not first


class TestOpportunisticWidth:
    def prepared(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model, seed=4)
        return network, acorn

    def test_bonded_good_cell_keeps_40(self, model):
        network, acorn = self.prepared(model)
        network.set_channel("ap2", Channel(44, 48))
        network.associate("good1", "ap2")
        network.associate("good2", "ap2")
        assert acorn.opportunistic_width("ap2").is_bonded

    def test_bonded_poor_cell_falls_back_to_primary(self, model):
        network, acorn = self.prepared(model)
        network.set_channel("ap1", Channel(36, 40))
        network.associate("poor1", "ap1")
        network.associate("poor2", "ap1")
        decision = acorn.opportunistic_width("ap1")
        assert not decision.is_bonded
        assert decision.primary == 36  # stays inside the allocation

    def test_basic_channel_unchanged(self, model):
        network, acorn = self.prepared(model)
        network.set_channel("ap1", Channel(36))
        assert acorn.opportunistic_width("ap1") == Channel(36)

    def test_unassigned_ap_rejected(self, model):
        network, acorn = self.prepared(model)
        with pytest.raises(AssociationError):
            acorn.opportunistic_width("ap1")


class TestAtomicInvalidation:
    """Regression: stale compiled state cannot survive a topology edit.

    ``invalidate_graph`` replaces the graph, the compiled snapshot, the
    component decomposition and the per-shard warm-start assignments as
    ONE holder — no interleaving can observe a fresh graph next to a
    stale shard map (see ``Acorn.invalidate_graph``).
    """

    def primed(self, model):
        network = fresh_two_cell()
        acorn = Acorn(network, ChannelPlan(), model, seed=3)
        acorn.configure()
        # Populate every derived cache.
        acorn.graph
        acorn.compiled
        sid = acorn.decomposition.shard_ids[0]
        acorn.allocate(shard=sid, warm_start=True)
        assert acorn.shard_assignment(sid) is not None
        return network, acorn, sid

    def test_invalidate_drops_all_derived_caches_atomically(self, model):
        network, acorn, sid = self.primed(model)
        old_graph = acorn.graph
        old_compiled = acorn.compiled
        old_decomposition = acorn.decomposition
        acorn.invalidate_graph()
        assert acorn.shard_assignment(sid) is None
        assert acorn.graph is not old_graph
        assert acorn.compiled is not old_compiled
        assert acorn.decomposition is not old_decomposition

    def test_topology_edit_is_reflected_after_invalidation(self, model):
        network, acorn, sid = self.primed(model)
        network.add_ap("ap3")
        network.set_explicit_conflicts([("ap1", "ap2"), ("ap2", "ap3")])
        acorn.invalidate_graph()
        assert "ap3" in acorn.graph
        assert "ap3" in acorn.compiled.ap_index
        covered = [
            ap
            for _, members in acorn.decomposition.shards()
            for ap in members
        ]
        assert sorted(covered) == sorted(network.ap_ids)

    def test_stale_shard_ids_do_not_alias_after_invalidation(self, model):
        network, acorn, sid = self.primed(model)
        members_before = acorn.decomposition.members(sid)
        network.add_ap("ap3")
        network.set_explicit_conflicts([("ap1", "ap2"), ("ap2", "ap3")])
        acorn.invalidate_graph()
        # The id space restarts; whatever shard now holds ap1 must be a
        # fresh partition of the NEW topology, never the cached members.
        new_sid = acorn.shard_of("ap1")
        assert set(acorn.decomposition.members(new_sid)) != set(
            members_before
        ) or "ap3" in acorn.decomposition.members(new_sid)
