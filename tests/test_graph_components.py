"""Stable-id component decomposition (``repro.graph.components``).

The contract under test: shard ids are deterministic at creation,
survive churn through :meth:`ComponentDecomposition.update` (a merge
keeps the smallest claimed id, a split remainder gets a fresh id,
fresh ids are never recycled), and every update reports exactly which
ids a per-shard cache must drop.
"""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.graph import ComponentDecomposition, ShardDelta, connected_members
from repro.net import build_interference_graph
from repro.sim.scenario import SCENARIOS


def chain_graph(edges, nodes):
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return graph


class TestConnectedMembers:
    def test_members_follow_ap_order(self):
        ap_ids = ["a", "b", "c", "d"]
        adjacency = {"d": ["b"], "b": ["d"]}
        components = connected_members(ap_ids, adjacency)
        assert components == [("a",), ("b", "d"), ("c",)]

    def test_neighbours_outside_ap_ids_are_ignored(self):
        components = connected_members(["a"], {"a": ["ghost"]})
        assert components == [("a",)]

    def test_deep_chain_has_no_recursion_limit(self):
        n = 5000
        ap_ids = [f"ap{i}" for i in range(n)]
        adjacency = {}
        for i in range(n - 1):
            adjacency.setdefault(ap_ids[i], []).append(ap_ids[i + 1])
            adjacency.setdefault(ap_ids[i + 1], []).append(ap_ids[i])
        components = connected_members(ap_ids, adjacency)
        assert len(components) == 1
        assert len(components[0]) == n


class TestDecompositionBasics:
    def test_initial_ids_follow_first_member_order(self):
        graph = chain_graph([("b", "d")], ["a", "b", "c", "d"])
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=("a", "b", "c", "d")
        )
        assert decomposition.shard_ids == (0, 1, 2)
        assert decomposition.members(0) == ("a",)
        assert decomposition.members(1) == ("b", "d")
        assert decomposition.members(2) == ("c",)
        assert decomposition.n_shards == 3
        assert len(decomposition) == 3

    def test_shard_of_and_unknown_lookups(self):
        decomposition = ComponentDecomposition.from_adjacency(
            ("a", "b"), {"a": ("b",), "b": ("a",)}
        )
        assert decomposition.shard_of("b") == 0
        with pytest.raises(TopologyError):
            decomposition.shard_of("nobody")
        with pytest.raises(TopologyError):
            decomposition.members(99)

    def test_shards_iterates_in_id_order(self):
        graph = chain_graph([], ["x", "y"])
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=("x", "y")
        )
        assert list(decomposition.shards()) == [(0, ("x",)), (1, ("y",))]

    def test_position_shards_partition_the_positions(self):
        graph = chain_graph([("b", "d")], ["a", "b", "c", "d"])
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=("a", "b", "c", "d")
        )
        shards = decomposition.position_shards(("a", "b", "c", "d"))
        assert shards == [[0], [1, 3], [2]]
        flat = sorted(p for shard in shards for p in shard)
        assert flat == [0, 1, 2, 3]

    def test_fingerprint_is_stable_and_content_addressed(self):
        graph = chain_graph([("a", "b")], ["a", "b", "c"])
        one = ComponentDecomposition.from_graph(graph, ap_ids=("a", "b", "c"))
        two = ComponentDecomposition.from_graph(graph, ap_ids=("a", "b", "c"))
        assert one.fingerprint() == two.fingerprint()
        two.update(chain_graph([], ["a", "b", "c"]), ap_ids=("a", "b", "c"))
        assert one.fingerprint() != two.fingerprint()


class TestChurnStability:
    def make(self):
        # Three components: {a, b}, {c}, {d, e}.
        graph = chain_graph([("a", "b"), ("d", "e")], list("abcde"))
        return ComponentDecomposition.from_graph(graph, ap_ids=tuple("abcde"))

    def test_noop_update_reports_noop(self):
        decomposition = self.make()
        before = decomposition.fingerprint()
        delta = decomposition.update(
            chain_graph([("a", "b"), ("d", "e")], list("abcde")),
            ap_ids=tuple("abcde"),
        )
        assert delta.is_noop
        assert delta.unchanged == (0, 1, 2)
        assert delta.invalidated == ()
        assert decomposition.fingerprint() == before

    def test_merge_keeps_smallest_claimed_id(self):
        decomposition = self.make()
        merged = chain_graph(
            [("a", "b"), ("d", "e"), ("c", "d")], list("abcde")
        )
        delta = decomposition.update(merged, ap_ids=tuple("abcde"))
        # {c} (id 1) and {d, e} (id 2) merge; the survivor keeps id 1.
        assert delta.retired == (2,)
        assert delta.changed == (1,)
        assert delta.created == ()
        assert delta.unchanged == (0,)
        assert decomposition.members(1) == ("c", "d", "e")
        assert decomposition.shard_of("e") == 1

    def test_split_remainder_gets_a_fresh_id(self):
        decomposition = self.make()
        split = chain_graph([("a", "b")], list("abcde"))  # d-e edge gone
        delta = decomposition.update(split, ap_ids=tuple("abcde"))
        # Anchor 'd' keeps id 2; remainder {e} is brand new.
        assert delta.created == (3,)
        assert delta.changed == (2,)
        assert decomposition.members(2) == ("d",)
        assert decomposition.members(3) == ("e",)

    def test_fresh_ids_are_never_recycled(self):
        decomposition = self.make()
        decomposition.update(chain_graph([("a", "b")], list("abcde")),
                             ap_ids=tuple("abcde"))  # creates id 3 for {e}
        # Re-join then re-split: the remainder must NOT get id 3 back.
        decomposition.update(
            chain_graph([("a", "b"), ("d", "e")], list("abcde")),
            ap_ids=tuple("abcde"),
        )
        delta = decomposition.update(
            chain_graph([("a", "b")], list("abcde")), ap_ids=tuple("abcde")
        )
        assert delta.created == (4,)

    def test_identity_is_independent_of_churn_path(self):
        # Same final graph via two different churn sequences -> same
        # partition content for the shards that survive by anchor.
        final = chain_graph([("a", "b"), ("c", "d")], list("abcde"))
        direct = self.make()
        direct.update(final, ap_ids=tuple("abcde"))
        stepped = self.make()
        stepped.update(chain_graph([("a", "b")], list("abcde")),
                       ap_ids=tuple("abcde"))
        stepped.update(final, ap_ids=tuple("abcde"))
        assert direct.shard_of("a") == stepped.shard_of("a") == 0
        assert direct.members(direct.shard_of("c")) == ("c", "d")
        assert stepped.members(stepped.shard_of("c")) == ("c", "d")

    def test_new_nodes_join_as_created_shards(self):
        decomposition = self.make()
        grown = chain_graph([("a", "b"), ("d", "e")], list("abcdef"))
        delta = decomposition.update(grown, ap_ids=tuple("abcdef"))
        assert delta.created == (3,)
        assert decomposition.members(3) == ("f",)

    def test_delta_invalidated_is_created_plus_changed_sorted(self):
        delta = ShardDelta(created=(5,), retired=(2,), changed=(1,),
                           unchanged=(0,))
        assert delta.invalidated == (1, 5)
        assert not delta.is_noop


class TestAgainstRealGraphs:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_partition_covers_every_ap_exactly_once(self, name):
        scenario = SCENARIOS[name]()
        network = scenario.network
        for client_id in network.client_ids:
            candidates = network.candidate_aps(client_id)
            if candidates:
                network.associate(client_id, candidates[0])
        graph = build_interference_graph(network)
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        covered = [
            ap for _, members in decomposition.shards() for ap in members
        ]
        assert sorted(covered) == sorted(network.ap_ids)
        assert len(covered) == len(set(covered))
        for sid, members in decomposition.shards():
            for ap_id in members:
                assert decomposition.shard_of(ap_id) == sid
