"""Tests for the OFDM numerologies and nominal rates."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.ofdm import (
    OFDM_20MHZ,
    OFDM_40MHZ,
    OFDM_LEGACY,
    OfdmParams,
    nominal_data_rate_mbps,
)


class TestSubcarrierCounts:
    """Section 3.1's counts: 48 legacy, 52 HT20, 108 HT40 data subcarriers."""

    def test_legacy_has_48_data(self):
        assert OFDM_LEGACY.n_data == 48

    def test_ht20_has_52_data(self):
        assert OFDM_20MHZ.n_data == 52

    def test_ht40_has_108_data(self):
        assert OFDM_40MHZ.n_data == 108

    def test_pilot_counts(self):
        assert OFDM_20MHZ.n_pilots == 4
        assert OFDM_40MHZ.n_pilots == 6

    def test_fft_sizes_match_paper(self):
        # "using a 128-point FFT (as opposed to a 64-point FFT with 20MHz)"
        assert OFDM_20MHZ.fft_size == 64
        assert OFDM_40MHZ.fft_size == 128

    def test_no_dc_subcarrier_used(self):
        assert 0 not in OFDM_20MHZ.data_subcarriers
        assert 0 not in OFDM_40MHZ.data_subcarriers

    def test_subcarrier_spacing_constant(self):
        assert OFDM_20MHZ.subcarrier_spacing_hz == pytest.approx(312_500.0)
        assert OFDM_40MHZ.subcarrier_spacing_hz == pytest.approx(312_500.0)

    def test_data_and_pilots_disjoint(self):
        for params in (OFDM_LEGACY, OFDM_20MHZ, OFDM_40MHZ):
            assert not set(params.data_subcarriers) & set(
                params.pilot_subcarriers
            )


class TestSymbolTiming:
    def test_long_gi_symbol_is_4us(self):
        assert OFDM_20MHZ.symbol_duration_s() == pytest.approx(4.0e-6)

    def test_short_gi_symbol_is_3_6us(self):
        assert OFDM_20MHZ.symbol_duration_s(short_gi=True) == pytest.approx(3.6e-6)


class TestNominalRates:
    """Derived rates must reproduce the 802.11n standard table."""

    @pytest.mark.parametrize(
        "bits,rate,streams,short_gi,expected",
        [
            (1, 1 / 2, 1, False, 6.5),    # MCS 0
            (2, 1 / 2, 1, False, 13.0),   # MCS 1
            (6, 5 / 6, 1, False, 65.0),   # MCS 7
            (6, 5 / 6, 2, False, 130.0),  # MCS 15
            (6, 5 / 6, 1, True, 72.2),    # MCS 7 short GI
        ],
    )
    def test_ht20_standard_rates(self, bits, rate, streams, short_gi, expected):
        value = nominal_data_rate_mbps(
            OFDM_20MHZ, bits, rate, n_streams=streams, short_gi=short_gi
        )
        assert value == pytest.approx(expected, rel=0.01)

    @pytest.mark.parametrize(
        "bits,rate,streams,short_gi,expected",
        [
            (1, 1 / 2, 1, False, 13.5),   # MCS 0
            (6, 5 / 6, 1, False, 135.0),  # MCS 7
            (6, 5 / 6, 2, False, 270.0),  # MCS 15
            (6, 5 / 6, 2, True, 300.0),   # MCS 15 short GI
        ],
    )
    def test_ht40_standard_rates(self, bits, rate, streams, short_gi, expected):
        value = nominal_data_rate_mbps(
            OFDM_40MHZ, bits, rate, n_streams=streams, short_gi=short_gi
        )
        assert value == pytest.approx(expected, rel=0.01)

    def test_40mhz_slightly_more_than_double(self):
        # "nominal bit rates with 40MHz are slightly higher than double"
        rate20 = nominal_data_rate_mbps(OFDM_20MHZ, 6, 3 / 4)
        rate40 = nominal_data_rate_mbps(OFDM_40MHZ, 6, 3 / 4)
        assert rate40 / rate20 == pytest.approx(108 / 52)
        assert rate40 > 2 * rate20

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            nominal_data_rate_mbps(OFDM_20MHZ, 0, 1 / 2)

    def test_invalid_code_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            nominal_data_rate_mbps(OFDM_20MHZ, 2, 1.5)

    def test_invalid_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            nominal_data_rate_mbps(OFDM_20MHZ, 2, 1 / 2, n_streams=0)


class TestOfdmParamsValidation:
    def test_bad_fft_size_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmParams(
                name="bad",
                bandwidth_mhz=20.0,
                fft_size=63,
                data_subcarriers=(1,),
                pilot_subcarriers=(),
            )

    def test_out_of_range_subcarrier_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmParams(
                name="bad",
                bandwidth_mhz=20.0,
                fft_size=64,
                data_subcarriers=(40,),
                pilot_subcarriers=(),
            )

    def test_overlapping_pilot_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmParams(
                name="bad",
                bandwidth_mhz=20.0,
                fft_size=64,
                data_subcarriers=(1, 2),
                pilot_subcarriers=(2,),
            )
