"""Tests for ECDF, R², and table rendering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import coefficient_of_determination, ecdf
from repro.analysis.tables import render_table
from repro.errors import ConfigurationError


class TestEcdf:
    def test_sorted_output(self):
        values, probabilities = ecdf(np.array([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert probabilities[-1] == 1.0

    def test_probability_steps(self):
        _, probabilities = ecdf(np.array([5.0, 6.0, 7.0, 8.0]))
        assert list(probabilities) == [0.25, 0.5, 0.75, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ecdf(np.array([]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_probabilities_monotone(self, values):
        _, probabilities = ecdf(np.array(values))
        assert np.all(np.diff(probabilities) > 0)


class TestR2:
    def test_perfect_fit(self):
        observed = np.array([1.0, 2.0, 3.0])
        assert coefficient_of_determination(observed, observed) == 1.0

    def test_mean_prediction_zero(self):
        observed = np.array([1.0, 2.0, 3.0])
        predicted = np.full(3, 2.0)
        assert coefficient_of_determination(observed, predicted) == pytest.approx(0.0)

    def test_bad_fit_negative(self):
        observed = np.array([1.0, 2.0, 3.0])
        predicted = np.array([3.0, 1.0, -2.0])
        assert coefficient_of_determination(observed, predicted) < 0

    def test_constant_observed_degenerate(self):
        constant = np.array([2.0, 2.0])
        assert coefficient_of_determination(constant, constant) == 1.0
        assert coefficient_of_determination(constant, np.array([1.0, 3.0])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_determination(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_determination(np.array([]), np.array([]))


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["beta", 2.25]]
        )
        assert "name" in text
        assert "1.50" in text
        assert "2.25" in text

    def test_title_included(self):
        text = render_table(["x"], [[1]], title="Table 1")
        assert text.startswith("Table 1")

    def test_float_format_respected(self):
        text = render_table(["x"], [[3.14159]], float_format=".4f")
        assert "3.1416" in text

    def test_booleans_rendered(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_column_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_empty_rows_fine(self):
        text = render_table(["a"], [])
        assert "a" in text
