"""Tests for the synthetic association-duration workload (Fig 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traces.associations import (
    PAPER_MEDIAN_S,
    PAPER_P90_S,
    recommended_period_s,
    summarize_durations,
    synthesize_association_durations,
)


class TestSynthesis:
    def test_median_matches_paper(self):
        durations = synthesize_association_durations(50_000, rng=0)
        summary = summarize_durations(durations)
        assert summary.median_s == pytest.approx(PAPER_MEDIAN_S, rel=0.03)

    def test_p90_matches_paper(self):
        """More than 90 % of associations last under 40 minutes."""
        durations = synthesize_association_durations(50_000, rng=1)
        summary = summarize_durations(durations)
        assert summary.p90_s == pytest.approx(PAPER_P90_S, rel=0.03)

    def test_all_durations_positive(self):
        durations = synthesize_association_durations(1_000, rng=2)
        assert np.all(durations > 0)

    def test_deterministic_with_seed(self):
        first = synthesize_association_durations(100, rng=3)
        second = synthesize_association_durations(100, rng=3)
        assert np.array_equal(first, second)

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_association_durations(0)

    def test_invalid_quantiles_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_association_durations(10, median_s=100.0, p90_s=50.0)

    @settings(max_examples=20)
    @given(
        st.floats(min_value=60.0, max_value=7200.0),
        st.floats(min_value=1.05, max_value=4.0),
    )
    def test_custom_quantiles_respected(self, median_s, ratio):
        durations = synthesize_association_durations(
            20_000, median_s=median_s, p90_s=median_s * ratio, rng=4
        )
        summary = summarize_durations(durations)
        assert summary.median_s == pytest.approx(median_s, rel=0.08)


class TestSummary:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_durations(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_durations(np.array([10.0, -1.0]))

    def test_minutes_property(self):
        summary = summarize_durations(np.array([600.0, 600.0, 600.0]))
        assert summary.median_minutes == pytest.approx(10.0)


class TestRecommendedPeriod:
    def test_paper_trace_gives_30_minutes(self):
        """The paper: 'we run our channel allocation every 30 minutes'."""
        durations = synthesize_association_durations(50_000, rng=5)
        assert recommended_period_s(durations) == pytest.approx(30 * 60.0)

    def test_granularity_respected(self):
        durations = np.full(100, 1700.0)
        assert recommended_period_s(durations, granularity_s=600.0) == 1800.0

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ConfigurationError):
            recommended_period_s(np.array([100.0]), granularity_s=0.0)

    def test_never_zero(self):
        durations = np.full(10, 1.0)
        assert recommended_period_s(durations) > 0
