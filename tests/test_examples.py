"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExampleInventory:
    def test_at_least_eight_examples(self):
        assert len(ALL_EXAMPLES) >= 8

    def test_quickstart_exists(self):
        assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    # Every example prints at least one report table.
    assert "---" in output or "|" in output


def test_quickstart_tells_the_story():
    output = run_example("quickstart.py")
    assert "20 MHz" in output
    assert "TOTAL" in output
