"""Tests for partially-overlapped-channel weighting."""

import pytest

from repro.errors import ChannelError
from repro.mac.airtime import medium_share
from repro.net.channels import Channel
from repro.net.overlap import (
    TWO_POINT_FOUR_GHZ_CENTERS,
    channel_center_mhz,
    spectral_overlap_fraction,
    weighted_contention_share,
)


class TestCenters:
    def test_5ghz_channel_36(self):
        assert channel_center_mhz(Channel(36)) == pytest.approx(5180.0)

    def test_bonded_center_is_midpoint(self):
        """The shifted Fc the paper notes: a bonded pair's centre sits
        between its constituents."""
        assert channel_center_mhz(Channel(36, 40)) == pytest.approx(5190.0)

    def test_2_4ghz_channel_1(self):
        assert TWO_POINT_FOUR_GHZ_CENTERS[1] == pytest.approx(2412.0)
        assert TWO_POINT_FOUR_GHZ_CENTERS[6] == pytest.approx(2437.0)

    def test_invalid_input_rejected(self):
        with pytest.raises(ChannelError):
            channel_center_mhz("36")


class TestOverlapFraction:
    def test_co_channel_full_overlap(self):
        assert spectral_overlap_fraction(Channel(36), Channel(36)) == 1.0

    def test_orthogonal_zero_overlap(self):
        assert spectral_overlap_fraction(Channel(36), Channel(44)) == 0.0

    def test_bonded_covers_constituent_fully(self):
        """40 MHz fully covers its inner 20 MHz channel..."""
        assert spectral_overlap_fraction(
            Channel(36), Channel(36, 40)
        ) == pytest.approx(1.0)

    def test_constituent_covers_half_of_bonded(self):
        """...while the 20 MHz channel covers only half the 40 MHz."""
        assert spectral_overlap_fraction(
            Channel(36, 40), Channel(36)
        ) == pytest.approx(0.5)

    def test_24ghz_adjacent_partial_overlap(self):
        """Channels 1 and 2 (5 MHz apart, 20 MHz wide): 75 % overlap —
        the classic partially-overlapped case of [7]."""
        one = Channel(1)
        two = Channel(2)
        assert spectral_overlap_fraction(one, two) == pytest.approx(0.75)

    def test_24ghz_1_and_6_orthogonal(self):
        """The textbook 1/6/11 orthogonal triple."""
        assert spectral_overlap_fraction(Channel(1), Channel(6)) == 0.0

    def test_symmetric_for_equal_widths(self):
        assert spectral_overlap_fraction(
            Channel(1), Channel(3)
        ) == spectral_overlap_fraction(Channel(3), Channel(1))

    def test_fraction_bounds(self):
        for a_num in (1, 3, 6, 11):
            for b_num in (1, 3, 6, 11):
                fraction = spectral_overlap_fraction(
                    Channel(a_num), Channel(b_num)
                )
                assert 0.0 <= fraction <= 1.0


class TestWeightedContention:
    def test_reduces_to_binary_for_orthogonal_plan(self):
        """With fully orthogonal/co-channel neighbours the weighted M
        equals the paper's 1/(|con|+1)."""
        own = Channel(36)
        neighbours = [Channel(36), Channel(44), Channel(36)]
        weighted = weighted_contention_share(own, neighbours)
        binary = medium_share(2)  # two co-channel neighbours
        assert weighted == pytest.approx(binary)

    def test_partial_neighbours_cost_less_than_cochannel(self):
        own = Channel(3)
        partial = weighted_contention_share(own, [Channel(5)])
        cochannel = weighted_contention_share(own, [Channel(3)])
        assert cochannel < partial < 1.0

    def test_no_neighbours_full_share(self):
        assert weighted_contention_share(Channel(36), []) == 1.0

    def test_more_overlap_less_share(self):
        own = Channel(6)
        shares = [
            weighted_contention_share(own, [Channel(number)])
            for number in (11, 9, 8, 7, 6)
        ]
        assert shares == sorted(shares, reverse=True)
