"""Tests for DCF timing, airtime accounting, and the performance anomaly."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mac.airtime import (
    aggregate_transmission_delay_s,
    cell_throughput_mbps,
    client_delay_s,
    medium_share,
    per_client_throughput_mbps,
)
from repro.mac.anomaly import (
    anomaly_cell_throughput_mbps,
    fair_share_throughput_mbps,
)
from repro.mac.dcf import DEFAULT_TIMINGS, MacTimings


class TestMacTimings:
    def test_overhead_components_sum(self):
        timings = MacTimings()
        expected = (
            timings.difs_s
            + timings.cw_min / 2 * timings.slot_s
            + timings.phy_preamble_s
            + timings.sifs_s
            + timings.ack_s
        )
        assert timings.per_packet_overhead_s == pytest.approx(expected)

    def test_airtime_includes_payload(self):
        timings = MacTimings(burst_size=1)
        airtime = timings.packet_airtime_s(12_000, 65.0)
        assert airtime == pytest.approx(
            timings.per_packet_overhead_s + 12_000 / 65e6
        )

    def test_burst_amortises_overhead(self):
        single = MacTimings(burst_size=1).packet_airtime_s(12_000, 130.0)
        double = MacTimings(burst_size=2).packet_airtime_s(12_000, 130.0)
        assert double < single

    def test_efficiency_below_one(self):
        assert DEFAULT_TIMINGS.mac_efficiency(12_000, 270.0) < 1.0

    def test_efficiency_higher_at_lower_rates(self):
        """The fixed overhead taxes fast links proportionally more."""
        slow = DEFAULT_TIMINGS.mac_efficiency(12_000, 6.5)
        fast = DEFAULT_TIMINGS.mac_efficiency(12_000, 270.0)
        assert slow > fast

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_TIMINGS.packet_airtime_s(0, 65.0)
        with pytest.raises(ConfigurationError):
            DEFAULT_TIMINGS.packet_airtime_s(12_000, 0.0)
        with pytest.raises(ConfigurationError):
            MacTimings(burst_size=0)
        with pytest.raises(ConfigurationError):
            MacTimings(sifs_s=-1e-6)


class TestClientDelay:
    def test_loss_free_delay_is_airtime(self):
        delay = client_delay_s(65.0, 0.0)
        assert delay == pytest.approx(
            DEFAULT_TIMINGS.packet_airtime_s(12_000, 65.0)
        )

    def test_retransmissions_scale_delay(self):
        base = client_delay_s(65.0, 0.0)
        lossy = client_delay_s(65.0, 0.5)
        assert lossy == pytest.approx(2 * base)

    def test_dead_link_infinite_delay(self):
        assert client_delay_s(65.0, 1.0) == float("inf")

    def test_invalid_per_rejected(self):
        with pytest.raises(ConfigurationError):
            client_delay_s(65.0, 1.5)

    @given(
        st.floats(min_value=1.0, max_value=300.0),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_delay_positive_and_monotone_in_per(self, rate, per):
        lower = client_delay_s(rate, per)
        higher = client_delay_s(rate, min(per + 0.005, 0.995))
        assert 0 < lower <= higher


class TestAirtimeAccounting:
    def test_atd_sums_delays(self):
        assert aggregate_transmission_delay_s([1e-3, 2e-3]) == pytest.approx(3e-3)

    def test_atd_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_transmission_delay_s([])

    def test_atd_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_transmission_delay_s([1e-3, -1e-3])

    def test_medium_share_values(self):
        assert medium_share(0) == 1.0
        assert medium_share(1) == 0.5
        assert medium_share(2) == pytest.approx(1 / 3)

    def test_medium_share_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            medium_share(-1)

    def test_per_client_throughput_x_equals_m_over_atd(self):
        # X = M/ATD packets/s, converted to Mbps at 1500-byte packets.
        value = per_client_throughput_mbps(0.5, 2e-3)
        assert value == pytest.approx(0.5 / 2e-3 * 12_000 / 1e6)

    def test_per_client_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            per_client_throughput_mbps(0.0, 1e-3)
        with pytest.raises(ConfigurationError):
            per_client_throughput_mbps(0.5, 0.0)

    def test_cell_throughput_scales_with_clients(self):
        one = cell_throughput_mbps([1e-3])
        two = cell_throughput_mbps([1e-3, 1e-3])
        assert two == pytest.approx(one)

    def test_unreachable_client_kills_cell(self):
        assert cell_throughput_mbps([1e-3, float("inf")]) == 0.0

    def test_empty_cell_zero(self):
        assert cell_throughput_mbps([]) == 0.0


class TestPerformanceAnomaly:
    def test_homogeneous_cell_matches_fair_share(self):
        rates = [130.0, 130.0, 130.0]
        anomaly = anomaly_cell_throughput_mbps(rates)
        fair = fair_share_throughput_mbps(rates)
        assert anomaly == pytest.approx(fair, rel=1e-9)

    def test_slow_client_drags_cell_below_fair_share(self):
        """The Heusse et al. effect ACORN is designed around."""
        rates = [130.0, 130.0, 6.5]
        anomaly = anomaly_cell_throughput_mbps(rates)
        fair = fair_share_throughput_mbps(rates)
        assert anomaly < fair

    def test_cell_tends_to_slowest_rate(self):
        """With one very slow client, the cell approaches K x slow rate."""
        slow_mac_rate = 12_000 / DEFAULT_TIMINGS.packet_airtime_s(12_000, 6.5) / 1e6
        rates = [270.0, 270.0, 6.5]
        anomaly = anomaly_cell_throughput_mbps(rates)
        assert anomaly < 3.2 * slow_mac_rate

    def test_per_list_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            anomaly_cell_throughput_mbps([65.0], [0.1, 0.2])

    def test_losses_reduce_cell_throughput(self):
        clean = anomaly_cell_throughput_mbps([65.0, 65.0])
        lossy = anomaly_cell_throughput_mbps([65.0, 65.0], [0.3, 0.3])
        assert lossy < clean

    def test_contention_scales_throughput(self):
        full = anomaly_cell_throughput_mbps([65.0], m_share=1.0)
        half = anomaly_cell_throughput_mbps([65.0], m_share=0.5)
        assert half == pytest.approx(full / 2)

    def test_empty_cell(self):
        assert anomaly_cell_throughput_mbps([]) == 0.0
        assert fair_share_throughput_mbps([]) == 0.0

    def test_fair_share_invalid_m(self):
        with pytest.raises(ConfigurationError):
            fair_share_throughput_mbps([65.0], m_share=0.0)

    @given(st.lists(st.floats(min_value=6.5, max_value=270.0), min_size=1, max_size=6))
    def test_anomaly_never_exceeds_fair_share(self, rates):
        anomaly = anomaly_cell_throughput_mbps(rates)
        fair = fair_share_throughput_mbps(rates)
        assert anomaly <= fair * (1 + 1e-9)
