"""Tests for the colouring theory module."""

import networkx as nx
import pytest

from repro.errors import AllocationError
from repro.graph.coloring import (
    conflict_edges,
    exact_chromatic_number,
    has_k_coloring,
    is_conflict_free,
    worst_case_ratio,
)
from repro.net.channels import Channel


def triangle() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edges_from([("a", "b"), ("a", "c"), ("b", "c")])
    return graph


class TestConflictFreeness:
    def test_orthogonal_assignment_is_free(self):
        assignment = {"a": Channel(36), "b": Channel(44), "c": Channel(52)}
        assert is_conflict_free(triangle(), assignment)

    def test_shared_channel_detected(self):
        assignment = {"a": Channel(36), "b": Channel(36), "c": Channel(44)}
        edges = conflict_edges(triangle(), assignment)
        assert edges == [("a", "b")]

    def test_composite_conflict_detected(self):
        """A bonded channel conflicts with its constituent on a neighbour."""
        assignment = {
            "a": Channel(36, 40),
            "b": Channel(40),
            "c": Channel(52),
        }
        assert not is_conflict_free(triangle(), assignment)

    def test_missing_node_rejected(self):
        with pytest.raises(AllocationError):
            is_conflict_free(triangle(), {"a": Channel(36)})

    def test_nonadjacent_sharing_allowed(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        graph.add_node("c")
        assignment = {"a": Channel(36), "b": Channel(44), "c": Channel(36)}
        assert is_conflict_free(graph, assignment)


class TestWorstCaseRatio:
    def test_triangle_ratio(self):
        assert worst_case_ratio(triangle()) == pytest.approx(1 / 3)

    def test_star_ratio(self):
        graph = nx.star_graph(4)  # centre degree 4
        assert worst_case_ratio(graph) == pytest.approx(1 / 5)

    def test_edgeless_ratio_is_one(self):
        graph = nx.Graph()
        graph.add_nodes_from(["a", "b"])
        assert worst_case_ratio(graph) == 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(AllocationError):
            worst_case_ratio(nx.Graph())


class TestKColoring:
    def test_triangle_needs_three(self):
        graph = triangle()
        assert not has_k_coloring(graph, 2)
        assert has_k_coloring(graph, 3)

    def test_path_is_bipartite(self):
        graph = nx.path_graph(5)
        assert has_k_coloring(graph, 2)

    def test_empty_graph_zero_colors(self):
        assert has_k_coloring(nx.Graph(), 0)

    def test_nonempty_zero_colors(self):
        graph = nx.Graph()
        graph.add_node("a")
        assert not has_k_coloring(graph, 0)

    def test_negative_k_rejected(self):
        with pytest.raises(AllocationError):
            has_k_coloring(triangle(), -1)

    def test_large_graph_guarded(self):
        with pytest.raises(AllocationError):
            has_k_coloring(nx.path_graph(20), 2)

    def test_chromatic_numbers(self):
        assert exact_chromatic_number(triangle()) == 3
        assert exact_chromatic_number(nx.path_graph(4)) == 2
        assert exact_chromatic_number(nx.complete_graph(5)) == 5
        assert exact_chromatic_number(nx.Graph()) == 0

    def test_np_reduction_witness(self):
        """The paper's reduction: Y reaches Y* iff the graph is
        k-colourable. With a triangle and 2 orthogonal channels, no
        conflict-free assignment exists; with 3 it does."""
        graph = triangle()
        two_channels = [Channel(36), Channel(44)]
        from itertools import product

        exists_2 = any(
            is_conflict_free(graph, dict(zip("abc", combo)))
            for combo in product(two_channels, repeat=3)
        )
        assert exists_2 == has_k_coloring(graph, 2) == False  # noqa: E712
        three_channels = [Channel(36), Channel(44), Channel(52)]
        exists_3 = any(
            is_conflict_free(graph, dict(zip("abc", combo)))
            for combo in product(three_channels, repeat=3)
        )
        assert exists_3 == has_k_coloring(graph, 3) == True  # noqa: E712
