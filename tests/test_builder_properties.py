"""Property-based tests for the scenario builder (Hypothesis).

Two contracts under randomized pressure:

* every *valid* step chain compiles, builds deterministically, and
  keeps a consistent id map (declared APs/clients == built network);
* every *invalid* chain — clients before APs, overlapping grids,
  duplicate ids, non-positive counts — raises
  :class:`repro.errors.ScenarioError` **eagerly at the offending
  step**, never later at sweep time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.net import network_fingerprint
from repro.sim.builder import scenario

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def explicit_chains(draw):
    """A valid SNR-pinned chain: ap/client/link/conflicts steps."""
    chain = scenario("prop_explicit")
    n_aps = draw(st.integers(min_value=1, max_value=4))
    for index in range(n_aps):
        chain = chain.ap(f"AP{index + 1}")
    n_clients = draw(st.integers(min_value=1, max_value=6))
    for index in range(n_clients):
        client_id = f"c{index}"
        chain = chain.client(client_id)
        ap_index = draw(st.integers(min_value=1, max_value=n_aps))
        snr = draw(
            st.floats(min_value=-5.0, max_value=35.0, allow_nan=False)
        )
        chain = chain.link(f"AP{ap_index}", client_id, snr)
    if n_aps >= 2 and draw(st.booleans()):
        chain = chain.conflicts(("AP1", "AP2"))
    elif draw(st.booleans()):
        chain = chain.no_conflicts()
    if draw(st.booleans()):
        chain = chain.channels(draw(st.integers(min_value=1, max_value=12)))
    return chain, n_aps, n_clients


@st.composite
def geometric_chains(draw):
    """A valid generative chain: grid APs plus clustered clients."""
    chain = scenario("prop_geometric")
    rows = draw(st.integers(min_value=1, max_value=3))
    columns = draw(st.integers(min_value=1, max_value=3))
    spacing = draw(
        st.floats(min_value=5.0, max_value=60.0, allow_nan=False)
    )
    chain = chain.grid_aps(rows, columns, spacing_m=spacing)
    n_clients = draw(st.integers(min_value=1, max_value=6))
    clusters = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=n_clients))
    )
    chain = chain.clients(n_clients, clusters=clusters)
    return chain, rows * columns, n_clients


@settings(**SETTINGS)
@given(case=st.one_of(explicit_chains(), geometric_chains()))
def test_valid_chains_compile_with_consistent_id_maps(case):
    """Any valid chain freezes, builds, and maps ids consistently."""
    chain, n_aps, n_clients = case
    compiled = chain.freeze()
    built = compiled(0)
    assert len(built.network.ap_ids) == n_aps
    assert len(built.network.client_ids) == n_clients
    # The arrival order is exactly the declared client population.
    assert sorted(built.client_order) == sorted(built.network.client_ids)
    assert len(set(built.client_order)) == len(built.client_order)


@settings(**SETTINGS)
@given(case=st.one_of(explicit_chains(), geometric_chains()))
def test_valid_chains_rebuild_bit_identically(case):
    """Same chain + same seed → bit-identical network, any time."""
    compiled = case[0].freeze()
    assert network_fingerprint(compiled(3).network) == network_fingerprint(
        compiled(3).network
    )


@settings(**SETTINGS)
@given(n=st.integers(min_value=1, max_value=5))
def test_clients_before_aps_raise_eagerly(n):
    """Population steps demand APs first — at the step, not at build."""
    with pytest.raises(ScenarioError):
        scenario("bad").client("c0")
    with pytest.raises(ScenarioError):
        scenario("bad").clients(n)
    with pytest.raises(ScenarioError):
        scenario("bad").quality_choice_clients(per_ap=n)


@settings(**SETTINGS)
@given(
    rows=st.integers(min_value=1, max_value=3),
    columns=st.integers(min_value=1, max_value=3),
)
def test_overlapping_grids_raise_eagerly(rows, columns):
    """A second grid reusing AP ids is a contradiction, not a warning."""
    chain = scenario("bad").grid_aps(rows, columns)
    with pytest.raises(ScenarioError, match="overlapping AP"):
        chain.grid_aps(rows, columns)


@settings(**SETTINGS)
@given(bad=st.integers(max_value=0))
def test_non_positive_counts_raise_eagerly(bad):
    """Zero/negative counts die at the step that received them."""
    with pytest.raises(ScenarioError):
        scenario("bad").grid_aps(bad, 2)
    with pytest.raises(ScenarioError):
        scenario("bad").grid_aps(2, 2).clients(bad)
    with pytest.raises(ScenarioError):
        scenario("bad").enterprise_aps(bad)


@settings(**SETTINGS)
@given(bad=st.one_of(st.floats(), st.text(max_size=3), st.booleans()))
def test_non_integer_counts_raise_eagerly(bad):
    """Counts must be genuine ints (bool is not a count)."""
    with pytest.raises(ScenarioError):
        scenario("bad").grid_aps(bad, 2)


@settings(**SETTINGS)
@given(case=st.one_of(explicit_chains(), geometric_chains()))
def test_duplicate_client_ids_raise_eagerly(case):
    """Re-adding any existing client id fails on the spot."""
    chain, _, _ = case
    existing = sorted(chain._clients)[0]
    with pytest.raises(ScenarioError, match="overlapping client"):
        chain.client(existing)


def test_contradictory_conflict_sources_raise():
    """Explicit edges and carrier sense cannot both own the graph."""
    chain = (
        scenario("bad")
        .ap("AP1", position=(0.0, 0.0))
        .ap("AP2", position=(10.0, 0.0))
        .conflicts(("AP1", "AP2"))
    )
    with pytest.raises(ScenarioError, match="contradicts"):
        chain.carrier_sense_conflicts()


def test_empty_chain_cannot_freeze():
    """A chain with no construction steps has nothing to compile."""
    with pytest.raises(ScenarioError, match="no APs"):
        scenario("empty").freeze()
    with pytest.raises(ScenarioError, match="no clients"):
        scenario("empty").ap("AP1").freeze()
