"""Tests for the MCS tables and goodput-optimal selection."""

import pytest

from repro.errors import ConfigurationError
from repro.mcs.selection import optimal_mcs, optimal_mcs_fixed_mode
from repro.mcs.tables import (
    MCS_TABLE,
    dual_stream_entries,
    mcs_by_index,
    modcod_label,
    single_stream_entries,
)
from repro.phy.mimo import MimoMode
from repro.phy.modulation import BPSK, QAM64
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ


class TestTables:
    def test_sixteen_entries(self):
        assert len(MCS_TABLE) == 16

    def test_mcs0_is_bpsk_half(self):
        entry = mcs_by_index(0)
        assert entry.modulation is BPSK
        assert entry.code_rate == pytest.approx(0.5)
        assert entry.n_streams == 1

    def test_mcs15_is_64qam_5_6_dual(self):
        entry = mcs_by_index(15)
        assert entry.modulation is QAM64
        assert entry.code_rate == pytest.approx(5 / 6)
        assert entry.n_streams == 2

    @pytest.mark.parametrize(
        "index,params,expected",
        [
            (0, OFDM_20MHZ, 6.5),
            (7, OFDM_20MHZ, 65.0),
            (7, OFDM_40MHZ, 135.0),
            (15, OFDM_20MHZ, 130.0),
            (15, OFDM_40MHZ, 270.0),
        ],
    )
    def test_standard_rates(self, index, params, expected):
        assert mcs_by_index(index).rate_mbps(params) == pytest.approx(
            expected, rel=0.01
        )

    def test_per_stream_index_wraps(self):
        assert mcs_by_index(9).per_stream_index == 1
        assert mcs_by_index(3).per_stream_index == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            mcs_by_index(16)

    def test_rates_monotone_within_ladder(self):
        """MCS 0-7 rates strictly increase (same for 8-15)."""
        for entries in (single_stream_entries(), dual_stream_entries()):
            rates = [entry.rate_mbps(OFDM_20MHZ) for entry in entries]
            assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_modcod_label(self):
        assert modcod_label(QAM64, 3 / 4) == "64QAM 3/4"
        assert mcs_by_index(15).label == "64QAM 5/6 x2"


class TestSelection:
    def test_high_snr_picks_top_rate(self):
        decision = optimal_mcs(40.0, OFDM_20MHZ)
        assert decision.mcs.index == 15
        assert decision.mode is MimoMode.SDM
        assert decision.per < 1e-6

    def test_very_low_snr_picks_robust(self):
        decision = optimal_mcs(-2.0, OFDM_20MHZ)
        assert decision.mcs.per_stream_index == 0
        assert decision.mode is MimoMode.STBC

    def test_goodput_never_negative(self):
        for snr in (-10.0, 0.0, 10.0, 30.0):
            assert optimal_mcs(snr, OFDM_40MHZ).goodput_mbps >= 0.0

    def test_goodput_monotone_in_snr(self):
        snrs = [-5 + i for i in range(40)]
        goodputs = [optimal_mcs(s, OFDM_20MHZ).goodput_mbps for s in snrs]
        assert all(b >= a - 1e-9 for a, b in zip(goodputs, goodputs[1:]))

    def test_stbc_to_sdm_crossover(self):
        """STBC dominates poor links, SDM dominates strong ones."""
        assert optimal_mcs(2.0, OFDM_20MHZ).mode is MimoMode.STBC
        assert optimal_mcs(35.0, OFDM_20MHZ).mode is MimoMode.SDM

    @pytest.mark.parametrize("mode", [MimoMode.STBC, MimoMode.SDM])
    def test_fig6b_optimal_40mhz_mcs_not_more_aggressive(self, mode):
        """Fig 6b: at equal Tx the 40 MHz optimum uses an MCS no more
        aggressive than the 20 MHz optimum (exact within a mode)."""
        for snr20 in range(-2, 36, 2):
            d20 = optimal_mcs_fixed_mode(float(snr20), OFDM_20MHZ, mode)
            d40 = optimal_mcs_fixed_mode(float(snr20) - 3.1, OFDM_40MHZ, mode)
            assert d40.per_stream_index <= d20.per_stream_index

    def test_fig6b_mixed_mode_almost_always(self):
        """With free mode choice, the per-stream comparison applies when
        both widths land on the same MIMO mode (Fig 6b plots the two
        modes with distinct markers); the SDM/STBC crossover rows are
        the paper's "almost" exceptions."""
        same_mode_points = 0
        for snr20 in range(-2, 36):
            d20 = optimal_mcs(float(snr20), OFDM_20MHZ)
            d40 = optimal_mcs(float(snr20) - 3.1, OFDM_40MHZ)
            if d20.mode is d40.mode:
                same_mode_points += 1
                assert d40.per_stream_index <= d20.per_stream_index
        # The same-mode case must dominate the sweep.
        assert same_mode_points >= 30

    def test_fixed_mode_restricts_candidates(self):
        decision = optimal_mcs_fixed_mode(35.0, OFDM_20MHZ, MimoMode.STBC)
        assert decision.mode is MimoMode.STBC
        assert decision.mcs.n_streams == 1

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_mcs(10.0, OFDM_20MHZ, packet_bytes=0)

    def test_no_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_mcs(10.0, OFDM_20MHZ, modes=())

    def test_short_gi_raises_rate(self):
        long_gi = optimal_mcs(35.0, OFDM_20MHZ, short_gi=False)
        short_gi = optimal_mcs(35.0, OFDM_20MHZ, short_gi=True)
        assert short_gi.nominal_rate_mbps > long_gi.nominal_rate_mbps
