"""Tests for configuration objects and the path-loss model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    ACORN_EPSILON,
    CB_SUBCARRIER_PENALTY_DB,
    PathLossModel,
    SimulationConfig,
    make_rng,
)
from repro.errors import ConfigurationError


class TestConstants:
    def test_epsilon_is_five_percent(self):
        assert ACORN_EPSILON == pytest.approx(1.05)

    def test_cb_penalty_is_three_db(self):
        assert CB_SUBCARRIER_PENALTY_DB == pytest.approx(3.0)


class TestPathLossModel:
    def test_loss_at_reference_distance(self):
        model = PathLossModel(pl0_db=46.7, exponent=3.0, reference_m=1.0)
        assert model.loss_db(1.0) == pytest.approx(46.7)

    def test_ten_times_distance_adds_10n_db(self):
        model = PathLossModel(pl0_db=40.0, exponent=3.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)

    def test_below_reference_clamps(self):
        model = PathLossModel()
        assert model.loss_db(0.01) == model.loss_db(model.reference_m)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel().loss_db(-1.0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(exponent=0.0)

    def test_invalid_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(reference_m=-1.0)

    def test_negative_shadowing_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(shadowing_sigma_db=-3.0)

    def test_shadowing_requires_rng(self):
        model = PathLossModel(shadowing_sigma_db=8.0)
        # Without an RNG the loss is deterministic.
        assert model.loss_db(10.0) == model.loss_db(10.0)

    def test_shadowing_varies_with_rng(self):
        model = PathLossModel(shadowing_sigma_db=8.0)
        rng = np.random.default_rng(0)
        samples = {model.loss_db(10.0, rng=rng) for _ in range(10)}
        assert len(samples) > 1

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_loss_monotone_in_distance(self, d1, d2):
        model = PathLossModel()
        if d1 <= d2:
            assert model.loss_db(d1) <= model.loss_db(d2) + 1e-9
        else:
            assert model.loss_db(d1) >= model.loss_db(d2) - 1e-9


class TestSimulationConfig:
    def test_default_construction(self):
        config = SimulationConfig()
        assert config.packet_size_bytes == 1500

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(packet_size_bytes=0)

    def test_rng_is_seeded(self):
        config = SimulationConfig(seed=99)
        assert config.rng().integers(0, 1000) == config.rng().integers(0, 1000)


class TestMakeRng:
    def test_integer_seed_deterministic(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_none_allowed(self):
        assert make_rng(None) is not None
