"""Tests for 2x2 Alamouti STBC."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channelmodel import awgn, measure_snr_db
from repro.phy.modulation import QPSK
from repro.phy.stbc import AlamoutiChannel, alamouti_decode, alamouti_encode


def random_channel(seed: int) -> AlamoutiChannel:
    rng = np.random.default_rng(seed)
    h = (rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))) / np.sqrt(2)
    return AlamoutiChannel(h)


class TestEncoding:
    def test_output_shape(self):
        symbols = np.arange(8, dtype=complex)
        encoded = alamouti_encode(symbols)
        assert encoded.shape == (2, 8)

    def test_alamouti_structure(self):
        s = np.array([1 + 1j, 2 - 1j], dtype=complex)
        encoded = alamouti_encode(s) * np.sqrt(2.0)
        assert encoded[0, 0] == s[0]
        assert encoded[1, 0] == s[1]
        assert encoded[0, 1] == -np.conj(s[1])
        assert encoded[1, 1] == np.conj(s[0])

    def test_total_power_preserved(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=4000, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        encoded = alamouti_encode(symbols)
        input_power = np.mean(np.abs(symbols) ** 2)
        total_tx_power = np.mean(np.sum(np.abs(encoded) ** 2, axis=0))
        assert total_tx_power == pytest.approx(input_power, rel=0.05)

    def test_odd_symbol_count_rejected(self):
        with pytest.raises(ConfigurationError):
            alamouti_encode(np.ones(3, dtype=complex))


class TestDecoding:
    def test_noiseless_roundtrip_identity_channel(self):
        channel = AlamoutiChannel(np.eye(2, dtype=complex))
        symbols = np.array([1 + 2j, -1 + 0.5j, 0.25 - 1j, 2 + 2j])
        received = channel.transmit(alamouti_encode(symbols))
        decoded = alamouti_decode(received, channel)
        assert np.allclose(decoded, symbols, atol=1e-10)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_noiseless_roundtrip_random_channel(self, seed):
        channel = random_channel(seed)
        rng = np.random.default_rng(seed + 100)
        bits = rng.integers(0, 2, size=400, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        received = channel.transmit(alamouti_encode(symbols))
        decoded = alamouti_decode(received, channel)
        assert np.allclose(decoded, symbols, atol=1e-9)

    def test_decode_shape_checks(self):
        channel = random_channel(4)
        with pytest.raises(ConfigurationError):
            alamouti_decode(np.ones((3, 4), dtype=complex), channel)
        with pytest.raises(ConfigurationError):
            alamouti_decode(np.ones((2, 5), dtype=complex), channel)

    def test_diversity_beats_siso_in_deep_fade(self):
        """Even if one path is dead, the 2x2 scheme still decodes."""
        h = np.array([[1e-6, 1.0], [1.0, 1e-6]], dtype=complex)
        channel = AlamoutiChannel(h)
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, size=2000, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        received = channel.transmit(alamouti_encode(symbols))
        noisy = awgn(received, 15.0, rng=rng)
        decoded_bits = QPSK.demap_symbols(alamouti_decode(noisy, channel))
        ber = np.mean(decoded_bits != bits)
        assert ber < 0.05


class TestChannel:
    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            AlamoutiChannel(np.ones((2, 3), dtype=complex))

    def test_effective_gain_identity(self):
        channel = AlamoutiChannel(np.eye(2, dtype=complex))
        # ||I||_F^2 / 2 = 1: same energy as a unit SISO link.
        assert channel.effective_gain() == pytest.approx(1.0)

    def test_transmit_requires_two_streams(self):
        channel = random_channel(5)
        with pytest.raises(ConfigurationError):
            channel.transmit(np.ones(4, dtype=complex))
