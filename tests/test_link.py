"""Tests for link budgets, the ACORN estimator, σ, and rate control."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.link.adaptation import RateController
from repro.link.budget import LinkBudget
from repro.link.estimator import LinkQualityEstimator
from repro.link.quality import (
    RATE_RATIO_40_TO_20,
    cb_is_beneficial,
    sigma,
    sigma_cap,
    sigma_from_snr,
    transition_snr_db,
)
from repro.phy.mimo import MimoMode
from repro.phy.modulation import QAM16, QAM64, QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ


class TestLinkBudget:
    def test_from_snr20_roundtrip(self):
        budget = LinkBudget.from_snr20(17.5)
        assert budget.snr20_db == pytest.approx(17.5, abs=1e-9)

    def test_width_penalty_about_3db(self):
        budget = LinkBudget.from_snr20(10.0)
        assert budget.snr20_db - budget.snr40_db == pytest.approx(3.09, abs=0.05)

    def test_from_distance_decreases_with_range(self):
        near = LinkBudget.from_distance(5.0)
        far = LinkBudget.from_distance(50.0)
        assert near.snr20_db > far.snr20_db

    def test_with_tx_power(self):
        base = LinkBudget.from_snr20(10.0)
        boosted = base.with_tx_power(base.tx_power_dbm + 6.0)
        assert boosted.snr20_db == pytest.approx(base.snr20_db + 6.0)

    def test_negative_path_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkBudget(path_loss_db=-10.0)

    @given(st.floats(min_value=-10.0, max_value=45.0))
    def test_snr_roundtrip_property(self, snr):
        assert LinkBudget.from_snr20(snr).snr20_db == pytest.approx(snr, abs=1e-6)


class TestEstimator:
    def test_same_width_no_calibration(self):
        estimator = LinkQualityEstimator()
        assert estimator.calibrate_snr(10.0, OFDM_20MHZ, OFDM_20MHZ) == 10.0
        assert estimator.calibrate_snr(10.0, OFDM_40MHZ, OFDM_40MHZ) == 10.0

    def test_widening_subtracts_penalty(self):
        estimator = LinkQualityEstimator()
        calibrated = estimator.calibrate_snr(10.0, OFDM_20MHZ, OFDM_40MHZ)
        assert calibrated == pytest.approx(10.0 - estimator.calibration_db)

    def test_narrowing_adds_penalty(self):
        estimator = LinkQualityEstimator()
        calibrated = estimator.calibrate_snr(10.0, OFDM_40MHZ, OFDM_20MHZ)
        assert calibrated == pytest.approx(10.0 + estimator.calibration_db)

    def test_calibration_is_involutive(self):
        estimator = LinkQualityEstimator()
        there = estimator.calibrate_snr(12.0, OFDM_20MHZ, OFDM_40MHZ)
        back = estimator.calibrate_snr(there, OFDM_40MHZ, OFDM_20MHZ)
        assert back == pytest.approx(12.0)

    def test_estimate_pipeline_consistency(self):
        """estimate() must chain the documented BER->PER steps exactly."""
        from repro.phy.ber import coded_ber
        from repro.phy.per import per_from_ber

        estimator = LinkQualityEstimator(packet_bytes=1000)
        result = estimator.estimate(8.0, OFDM_20MHZ, OFDM_40MHZ, QPSK, 3 / 4)
        expected_ber = coded_ber(QPSK, 3 / 4, result.snr_db)
        assert result.ber == pytest.approx(float(expected_ber))
        assert result.per == pytest.approx(
            float(per_from_ber(expected_ber, 1000))
        )

    def test_good_poor_classification(self):
        estimator = LinkQualityEstimator()
        assert estimator.is_good_link(25.0, QPSK, 1 / 2)
        assert not estimator.is_good_link(0.0, QAM64, 5 / 6)

    def test_ablated_calibration(self):
        estimator = LinkQualityEstimator(calibration_db=0.0)
        assert estimator.calibrate_snr(10.0, OFDM_20MHZ, OFDM_40MHZ) == 10.0

    def test_invalid_packet_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkQualityEstimator(packet_bytes=0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkQualityEstimator(good_per_threshold=1.5)


class TestSigma:
    def test_equal_pers_give_one(self):
        assert sigma(0.1, 0.1) == pytest.approx(1.0)

    def test_dead_40mhz_gives_infinity(self):
        assert sigma(0.2, 1.0) == float("inf")

    def test_both_dead_gives_one(self):
        assert sigma(1.0, 1.0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            sigma(-0.1, 0.5)
        with pytest.raises(ConfigurationError):
            sigma(0.5, 1.2)

    def test_cap_for_plotting(self):
        assert sigma_cap(25.0) == 10.0
        assert sigma_cap(3.0) == 3.0

    def test_rate_ratio_slightly_above_two(self):
        assert RATE_RATIO_40_TO_20 == pytest.approx(108 / 52)

    def test_sigma_near_one_at_high_snr(self):
        """Fig 5: both widths deliver everything on robust links."""
        assert sigma_from_snr(30.0, QPSK, 3 / 4) == pytest.approx(1.0, abs=0.01)

    def test_sigma_large_in_transition_window(self):
        """In the crossover window, 20 MHz delivers but 40 MHz does not."""
        boundary = transition_snr_db(QPSK, 3 / 4)
        assert boundary is not None
        assert sigma_from_snr(boundary, QPSK, 3 / 4) >= 2.0

    def test_cb_beneficial_on_strong_links(self):
        assert cb_is_beneficial(30.0, QPSK, 3 / 4)

    def test_cb_harmful_in_window(self):
        boundary = transition_snr_db(QPSK, 3 / 4)
        assert not cb_is_beneficial(boundary, QPSK, 3 / 4)


class TestTransitionTable:
    """The Table 1 shape: boundaries rise with modulation aggressiveness."""

    def test_transitions_ordered(self):
        modcods = [(QPSK, 3 / 4), (QAM16, 3 / 4), (QAM64, 3 / 4), (QAM64, 5 / 6)]
        boundaries = [transition_snr_db(m, r) for m, r in modcods]
        assert all(b is not None for b in boundaries)
        assert boundaries == sorted(boundaries)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            transition_snr_db(QPSK, 3 / 4, resolution_db=0.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            transition_snr_db(QPSK, 3 / 4, snr_range_db=(10.0, -10.0))


class TestRateController:
    def test_decide_uses_width_specific_snr(self):
        controller = RateController()
        budget = LinkBudget.from_snr20(20.0)
        d20 = controller.decide(budget, OFDM_20MHZ)
        d40 = controller.decide(budget, OFDM_40MHZ)
        # The bonded decision sees ~3 dB less SNR.
        assert d40.per_stream_index <= d20.per_stream_index

    def test_decide_both_widths_order(self):
        controller = RateController()
        d20, d40 = controller.decide_both_widths(LinkBudget.from_snr20(25.0))
        assert d20.nominal_rate_mbps < d40.nominal_rate_mbps

    def test_modes_restriction(self):
        controller = RateController(modes=(MimoMode.STBC,))
        decision = controller.decide(LinkBudget.from_snr20(35.0), OFDM_20MHZ)
        assert decision.mode is MimoMode.STBC

    def test_empty_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            RateController(modes=())

    def test_invalid_packet_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            RateController(packet_bytes=-1)


class TestSnr20FromPathLoss:
    """Regression pin for the shared loss → SNR conversion.

    :func:`repro.link.budget.snr20_from_path_loss` is the single
    function every layer (scenario builders, the mobility trace, the
    compiled-state SNR matrices) uses to turn a path loss into the
    canonical 20 MHz link quality. These exact floats are load-bearing:
    changing them silently re-grades every geometry scenario.
    """

    PINNED_DEFAULTS = {
        60.0: 58.569619513137056,
        80.0: 38.569619513137056,
        95.0: 23.569619513137056,
        110.0: 8.569619513137056,
    }
    PINNED_CUSTOM = {
        60.0: 53.569619513137056,
        80.0: 33.569619513137056,
        95.0: 18.569619513137056,
        110.0: 3.569619513137056,
    }

    def test_pinned_values_defaults(self):
        from repro.link.budget import snr20_from_path_loss

        for loss, expected in self.PINNED_DEFAULTS.items():
            assert snr20_from_path_loss(loss) == expected

    def test_pinned_values_custom_budget(self):
        from repro.link.budget import snr20_from_path_loss

        for loss, expected in self.PINNED_CUSTOM.items():
            assert (
                snr20_from_path_loss(
                    loss, tx_power_dbm=20.0, noise_figure_db=8.0
                )
                == expected
            )

    def test_matches_link_budget_class(self):
        from repro.link.budget import snr20_from_path_loss

        for loss in (55.0, 72.5, 96.25, 120.0):
            budget = LinkBudget(tx_power_dbm=23.0, path_loss_db=loss)
            assert snr20_from_path_loss(loss) == budget.snr20_db

    def test_topology_geometry_routes_through_it(self):
        from repro.link.budget import snr20_from_path_loss
        from repro.net.topology import Network

        network = Network()
        network.add_ap("a", position=(0.0, 0.0), tx_power_dbm=20.0)
        network.add_client("c", position=(30.0, 40.0))
        budget = network.link_budget("a", "c")
        expected = snr20_from_path_loss(
            network.config.path_loss.loss_db(50.0),
            tx_power_dbm=20.0,
            noise_figure_db=network.config.noise_figure_db,
        )
        assert budget.snr20_db == expected
