"""Tests for the flow-aware rules RL101–RL104 and their CLI surface.

Each rule gets at least one true-positive fixture (the cross-module
violation is found) and one near-miss negative (the pattern that looks
like a violation but is legitimate): call-chain laundering that never
calls the source (RL101), a unit round-trip through a ``repro.units``
converter (RL102), a rollback-on-exception path (RL103), and a
pickled module-level payload (RL104). The CLI classes cover
``--explain RL101`` printing the full file:line chain, ``--changed``
expansion through reverse imports, and ``--no-cache``.
"""

import json
import pathlib
import subprocess
import textwrap

import pytest

from repro.cli import main
from repro.lint import changed_scope, lint_paths

from tests.test_lint_semantics import write_project


def flow_findings(tmp_path, files, rule_id):
    """Findings of one flow rule over a materialised fixture project."""
    root = write_project(tmp_path, files)
    report = lint_paths([root], select=[rule_id], cache_dir=tmp_path)
    return [f for f in report.findings if f.rule_id == rule_id]


CLOCK_HELPER = '''\
"""Helpers."""
import time
__all__ = ["stamp", "laundered_ref"]

def stamp():
    """Reads the wall clock."""
    return time.time()

def laundered_ref():
    """Returns the function itself; never reads the clock."""
    return time.time
'''


class TestTransitiveDeterminismRL101:
    def test_cross_module_chain_is_flagged(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "helpers.py": CLOCK_HELPER,
                "core/alloc.py": '''\
                """F."""
                from ..helpers import stamp
                __all__ = ["plan"]

                def plan():
                    """Transitively tainted through stamp()."""
                    return stamp()
                ''',
            },
            "RL101",
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("core/alloc.py")
        assert "'plan'" in finding.message
        assert "time.time()" in finding.message
        assert len(finding.chain) == 2
        assert "plan calls stamp" in finding.chain[0]
        assert "stamp reads time.time()" in finding.chain[1]

    def test_direct_source_is_rl001_not_rl101(self, tmp_path):
        findings = flow_findings(
            tmp_path, {"helpers.py": CLOCK_HELPER}, "RL101"
        )
        assert findings == []

    def test_laundering_without_a_call_is_clean(self, tmp_path):
        # Near-miss: holding/returning the clock function taints nothing.
        findings = flow_findings(
            tmp_path,
            {
                "helpers.py": CLOCK_HELPER,
                "core/alloc.py": '''\
                """F."""
                from ..helpers import laundered_ref
                __all__ = ["plan"]

                def plan():
                    """Calls a function that only *references* the clock."""
                    return laundered_ref()
                ''',
            },
            "RL101",
        )
        assert findings == []

    def test_waiver_suppresses(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "helpers.py": CLOCK_HELPER,
                "core/alloc.py": '''\
                """F."""
                # reprolint: ok RL101 fixture demonstrating the waiver path
                from ..helpers import stamp
                __all__ = ["plan"]

                def plan():
                    """Doc."""
                    return stamp()
                ''',
            },
            "RL101",
        )
        assert findings == []


class TestUnitFlowRL102:
    def test_db_into_linear_param_across_modules(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "link.py": '''\
                """F."""
                __all__ = ["capacity"]

                def capacity(snr_linear):
                    """Expects a linear SNR."""
                    return snr_linear
                ''',
                "caller.py": '''\
                """F."""
                from .link import capacity
                __all__ = ["rate"]

                def rate(snr_db):
                    """Passes a dB value into a linear parameter."""
                    return capacity(snr_db)
                ''',
            },
            "RL102",
        )
        assert len(findings) == 1
        assert "snr_linear" in findings[0].message
        assert "db-typed" in findings[0].message

    def test_round_trip_through_converter_is_clean(self, tmp_path):
        # Near-miss: the conversion makes the cross-call well-typed.
        findings = flow_findings(
            tmp_path,
            {
                "link.py": '''\
                """F."""
                __all__ = ["capacity"]

                def capacity(snr_linear):
                    """Expects a linear SNR."""
                    return snr_linear
                ''',
                "caller.py": '''\
                """F."""
                from .link import capacity
                from .units import db_to_linear
                __all__ = ["rate"]

                def rate(snr_db):
                    """Converts before crossing the boundary."""
                    return capacity(db_to_linear(snr_db))
                ''',
                "units.py": '''\
                """F."""
                __all__ = ["db_to_linear"]

                def db_to_linear(value_db):
                    """Doc."""
                    return value_db
                ''',
            },
            "RL102",
        )
        assert findings == []

    def test_dbm_plus_dbm_is_flagged_but_gain_is_fine(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "mod.py": '''\
                """F."""
                __all__ = ["combine", "apply_gain"]

                def combine(noise_dbm, signal_dbm):
                    """Absolute powers do not add in the log domain."""
                    return noise_dbm + signal_dbm

                def apply_gain(signal_dbm, gain_db):
                    """A gain applied to an absolute power is fine."""
                    return signal_dbm + gain_db
                ''',
            },
            "RL102",
        )
        assert len(findings) == 1
        assert "dbm + dbm" in findings[0].message
        assert "add_powers_dbm" in findings[0].message


ENGINE_FIXTURE = '''\
"""F."""
__all__ = ["Engine"]

class Engine:
    def trial(self, ap, channel):
        """Doc."""
        return 0.0

    def commit(self, ap, channel):
        """Doc."""
        return 0.0

    def rollback(self):
        """Doc."""
        return None
'''


class TestEngineDisciplineRL103:
    def test_dangling_trial_is_flagged(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "engine.py": ENGINE_FIXTURE,
                "alloc.py": '''\
                """F."""
                __all__ = ["scan"]

                def scan(engine, aps):
                    """Trial with commit on only one branch."""
                    value = engine.trial(aps[0], 1)
                    if value > 0:
                        engine.commit(aps[0], 1)
                    return value
                ''',
            },
            "RL103",
        )
        assert len(findings) == 1
        assert "trial()" in findings[0].message
        assert "'scan'" in findings[0].message

    def test_rollback_on_exception_path_is_clean(self, tmp_path):
        # Near-miss: the exception path rolls back, the happy path commits.
        findings = flow_findings(
            tmp_path,
            {
                "engine.py": ENGINE_FIXTURE,
                "alloc.py": '''\
                """F."""
                __all__ = ["scan"]

                def scan(engine, aps):
                    """Commit on success, rollback on the raise path."""
                    value = engine.trial(aps[0], 1)
                    try:
                        validate(value)
                        engine.commit(aps[0], 1)
                    except Exception:
                        engine.rollback()
                        raise
                    return value
                ''',
            },
            "RL103",
        )
        assert findings == []

    def test_compiled_write_outside_engine_modules(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "core/hack.py": '''\
                """F."""
                __all__ = ["poke"]

                def poke(compiled, i, j):
                    """Direct array poke from allocator code."""
                    compiled.snr20_db[i, j] = 0.0
                ''',
            },
            "RL103",
        )
        assert len(findings) == 1
        assert "snr20_db" in findings[0].message

    def test_apply_churn_path_is_allowed(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "core/patch.py": '''\
                """F."""
                __all__ = ["apply_churn"]

                def apply_churn(compiled, column):
                    """The sanctioned incremental patch path."""
                    compiled.snr20_db[:, column] = 0.0
                ''',
            },
            "RL103",
        )
        assert findings == []


class TestWorkerCaptureRL104:
    def test_submitted_lambda_is_flagged(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "runner.py": '''\
                """F."""
                __all__ = ["dispatch"]

                def dispatch(pool, jobs):
                    """Submits an unpicklable lambda."""
                    return [pool.submit(lambda job=job: job, job) for job in jobs]
                ''',
            },
            "RL104",
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_factory_returning_closure_is_flagged(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "factory.py": '''\
                """F."""
                __all__ = ["make_runner"]

                def make_runner(config):
                    """Builds a per-config closure."""
                    def run(job):
                        return config, job
                    return run
                ''',
                "runner.py": '''\
                """F."""
                from .factory import make_runner
                __all__ = ["dispatch"]

                def dispatch(pool, config, job):
                    """Submits a closure built by a cross-module factory."""
                    return pool.submit(make_runner(config), job)
                ''',
            },
            "RL104",
        )
        assert len(findings) == 1
        assert "make_runner" in findings[0].message
        assert "closure" in findings[0].message

    def test_module_level_payload_is_clean(self, tmp_path):
        # Near-miss: a compiled payload + module-level def pickle fine.
        findings = flow_findings(
            tmp_path,
            {
                "work.py": '''\
                """F."""
                __all__ = ["execute_job"]

                def execute_job(payload):
                    """Module-level worker entry point."""
                    return payload
                ''',
                "runner.py": '''\
                """F."""
                from .work import execute_job
                __all__ = ["dispatch"]

                def dispatch(pool, payload):
                    """Ships a pickled compiled payload to a def."""
                    return pool.submit(execute_job, payload)
                ''',
            },
            "RL104",
        )
        assert findings == []

    def test_aliased_lambda_registration_is_flagged(self, tmp_path):
        findings = flow_findings(
            tmp_path,
            {
                "impl.py": '''\
                """F."""
                __all__ = ["HANDLER"]

                HANDLER = lambda job: job
                ''',
                "reg.py": '''\
                """F."""
                from .impl import HANDLER
                __all__ = []

                ALGORITHMS = {"fast": HANDLER}
                ''',
            },
            "RL104",
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message
        assert "impl.py" in findings[0].message


class TestExplainCli:
    def test_explain_prints_full_chain(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = write_project(
            tmp_path,
            {
                "helpers.py": CLOCK_HELPER,
                "core/alloc.py": '''\
                """F."""
                from ..helpers import stamp
                __all__ = ["plan"]

                def plan():
                    """Doc."""
                    return stamp()
                ''',
            },
        )
        code = main(
            [
                "lint",
                str(root),
                "--rules",
                "RL101",
                "--explain",
                "RL101",
                "--no-cache",
            ]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "RL101 call chains:" in output
        # Every hop is a clickable file:line reference.
        assert "core/alloc.py:7 plan calls stamp" in output
        assert "helpers.py:7 stamp reads time.time()" in output

    def test_explain_with_no_findings(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = write_project(
            tmp_path,
            {"ok.py": '"""F."""\n__all__ = []\n'},
        )
        code = main(["lint", str(root), "--explain", "RL101", "--no-cache"])
        assert code == 0
        assert "no RL101 findings" in capsys.readouterr().out


class TestChangedMode:
    def test_changed_scope_expands_reverse_deps(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "leaf.py": '"""L."""\n__all__ = ["f"]\n\ndef f():\n'
                '    """Doc."""\n    return 1\n',
                "mid.py": '"""M."""\nfrom .leaf import f\n__all__ = ["g"]\n'
                '\ndef g():\n    """Doc."""\n    return f()\n',
                "island.py": '"""I."""\n__all__ = ["h"]\n\ndef h():\n'
                '    """Doc."""\n    return 0\n',
            },
        )
        scope = changed_scope(
            [root], [root / "leaf.py"], cache_dir=tmp_path
        )
        names = sorted(path.name for path in scope)
        assert names == ["leaf.py", "mid.py"]

    def test_changed_scope_empty_for_untouched(self, tmp_path):
        root = write_project(
            tmp_path,
            {"a.py": '"""A."""\n__all__ = []\n'},
        )
        assert changed_scope([root], [], cache_dir=tmp_path) == []

    def test_cli_changed_against_git(self, tmp_path, capsys, monkeypatch):
        repo = tmp_path / "proj"
        write_project(repo / "src", {
            "leaf.py": '"""L."""\n__all__ = ["f"]\n\ndef f():\n'
            '    """Doc."""\n    return 1\n',
            "mid.py": '"""M."""\nfrom .leaf import f\n__all__ = ["g"]\n'
            '\ndef g():\n    """Doc."""\n    return f()\n',
        })
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for cmd in (
            ["git", "init", "-q"],
            ["git", "add", "-A"],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t",
             "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=repo, check=True, env={**env})
        leaf = repo / "src" / "repro" / "leaf.py"
        leaf.write_text(leaf.read_text() + "\nX = 1\n")
        monkeypatch.chdir(repo)
        code = main(["lint", "src/repro", "--changed", "HEAD", "--no-cache"])
        output = capsys.readouterr().out
        assert code == 0
        # leaf.py changed; mid.py imports it: both linted, island absent.
        assert "2 file(s)" in output

    def test_cli_changed_clean_tree(self, tmp_path, capsys, monkeypatch):
        repo = tmp_path / "proj"
        write_project(repo / "src", {"a.py": '"""A."""\n__all__ = []\n'})
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for cmd in (
            ["git", "init", "-q"],
            ["git", "add", "-A"],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t",
             "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=repo, check=True, env={**env})
        monkeypatch.chdir(repo)
        code = main(["lint", "src/repro", "--changed", "HEAD", "--no-cache"])
        assert code == 0
        assert "no lintable changes" in capsys.readouterr().out
