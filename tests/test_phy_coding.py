"""Tests for the convolutional-code BER bounds."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.phy.coding import (
    CODE_RATES,
    code_by_rate,
    pairwise_error_probability,
)


class TestPairwiseErrorProbability:
    def test_zero_channel_ber_gives_zero(self):
        assert pairwise_error_probability(10, 0.0) == 0.0

    def test_half_channel_ber_gives_half(self):
        assert pairwise_error_probability(11, 0.5) == pytest.approx(0.5, abs=0.01)

    def test_odd_distance_three(self):
        # P2(3, p) = 3p^2(1-p) + p^3, exactly.
        p = 0.1
        expected = 3 * p**2 * (1 - p) + p**3
        assert pairwise_error_probability(3, p) == pytest.approx(expected)

    def test_even_distance_includes_half_tie(self):
        # P2(2, p) = p^2 + 0.5 * 2p(1-p).
        p = 0.2
        expected = p**2 + 0.5 * 2 * p * (1 - p)
        assert pairwise_error_probability(2, p) == pytest.approx(expected)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_error_probability(0, 0.1)

    @given(
        st.integers(min_value=1, max_value=14),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_probability_bounds(self, d, p):
        value = pairwise_error_probability(d, p)
        assert 0.0 <= value <= 0.5 + 1e-9

    @given(st.integers(min_value=1, max_value=12))
    def test_monotone_in_channel_ber(self, d):
        ps = np.linspace(0.0, 0.5, 30)
        values = [pairwise_error_probability(d, p) for p in ps]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_larger_distance_helps(self):
        """More Hamming distance means a smaller pairwise error."""
        p = 0.05
        values = [pairwise_error_probability(d, p) for d in range(2, 12)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


class TestCodes:
    def test_all_standard_rates_present(self):
        assert {round(rate, 4) for rate in CODE_RATES} == {
            round(r, 4) for r in (1 / 2, 2 / 3, 3 / 4, 5 / 6)
        }

    def test_free_distances_decrease_with_rate(self):
        rates = sorted(CODE_RATES)
        dfree = [CODE_RATES[r].free_distance for r in rates]
        assert dfree == sorted(dfree, reverse=True)

    def test_lookup_by_rate(self):
        assert code_by_rate(3 / 4).free_distance == 5

    def test_lookup_unknown_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            code_by_rate(7 / 8)

    def test_invalid_rate_construction_rejected(self):
        from repro.phy.coding import ConvolutionalCode

        with pytest.raises(ConfigurationError):
            ConvolutionalCode(rate=1.5, free_distance=10, weights=(1.0,))

    def test_coding_gain_positive_for_half_rate(self):
        assert code_by_rate(1 / 2).coding_gain_db() > 0


class TestCodedBer:
    @pytest.mark.parametrize("rate", sorted(CODE_RATES))
    def test_coded_ber_bounds(self, rate):
        code = CODE_RATES[rate]
        for p in (0.0, 1e-4, 1e-2, 0.1, 0.5):
            assert 0.0 <= code.coded_ber(p) <= 0.5

    @pytest.mark.parametrize("rate", sorted(CODE_RATES))
    def test_coded_ber_monotone(self, rate):
        code = CODE_RATES[rate]
        ps = np.logspace(-5, np.log10(0.5), 40)
        values = code.coded_ber(ps)
        assert np.all(np.diff(values) >= -1e-15)

    def test_coding_helps_in_waterfall(self):
        """Below the cliff, the coded BER beats the raw channel BER."""
        code = code_by_rate(1 / 2)
        for p in (1e-3, 1e-2):
            assert code.coded_ber(p) < p

    def test_stronger_code_wins(self):
        """At equal channel BER, lower-rate codes decode better."""
        p = 0.02
        bers = [CODE_RATES[r].coded_ber(p) for r in sorted(CODE_RATES)]
        assert bers == sorted(bers)

    def test_perfect_channel_perfect_decode(self):
        for code in CODE_RATES.values():
            assert code.coded_ber(0.0) == 0.0
