"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.channels import Channel, ChannelPlan
from repro.net.overlap import spectral_overlap_fraction, weighted_contention_share

FIVE_GHZ = ChannelPlan().all_channels()
TWO_FOUR = [Channel(n) for n in range(1, 14)]
ALL_CHANNELS = list(FIVE_GHZ) + TWO_FOUR


class TestOverlapProperties:
    @given(st.sampled_from(ALL_CHANNELS), st.sampled_from(ALL_CHANNELS))
    def test_overlap_bounds(self, a, b):
        fraction = spectral_overlap_fraction(a, b)
        assert 0.0 <= fraction <= 1.0

    @given(st.sampled_from(ALL_CHANNELS))
    def test_self_overlap_is_one(self, channel):
        assert spectral_overlap_fraction(channel, channel) == pytest.approx(1.0)

    @given(st.sampled_from(ALL_CHANNELS), st.sampled_from(ALL_CHANNELS))
    def test_overlap_area_reciprocity(self, a, b):
        """The shared spectrum is one physical quantity:
        overlap(a,b) * width_a == overlap(b,a) * width_b."""
        left = spectral_overlap_fraction(a, b) * a.width_mhz
        right = spectral_overlap_fraction(b, a) * b.width_mhz
        assert left == pytest.approx(right, abs=1e-9)

    @given(st.sampled_from(FIVE_GHZ), st.sampled_from(FIVE_GHZ))
    def test_5ghz_overlap_consistent_with_binary_conflicts(self, a, b):
        """On the orthogonal 5 GHz plan, positive overlap iff the
        binary colour conflict holds."""
        fraction = spectral_overlap_fraction(a, b)
        assert (fraction > 0) == a.conflicts_with(b)

    @given(
        st.sampled_from(ALL_CHANNELS),
        st.lists(st.sampled_from(ALL_CHANNELS), max_size=5),
    )
    def test_weighted_share_bounds(self, own, neighbours):
        share = weighted_contention_share(own, neighbours)
        assert 0.0 < share <= 1.0
        # More neighbours can never raise the share.
        assert share <= weighted_contention_share(own, neighbours[:-1] or [])


class TestRefinementProperties:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_refinement_never_degrades_random_networks(self, seed):
        from repro.core.allocation import random_assignment
        from repro.core.refinement import refine_associations
        from repro.net import ThroughputModel, build_interference_graph
        from repro.net.topology import Network

        rng = np.random.default_rng(seed)
        network = Network()
        n_aps = int(rng.integers(2, 4))
        for index in range(n_aps):
            network.add_ap(f"ap{index}")
        for index in range(int(rng.integers(2, 7))):
            client_id = f"u{index}"
            network.add_client(client_id)
            heard = rng.choice(n_aps, size=int(rng.integers(1, n_aps + 1)), replace=False)
            for ap_index in heard:
                network.set_link_snr(
                    f"ap{int(ap_index)}",
                    client_id,
                    float(rng.uniform(0.0, 30.0)),
                )
            network.associate(client_id, f"ap{int(heard[0])}")
        edges = []
        for i in range(n_aps):
            for j in range(i + 1, n_aps):
                if rng.random() < 0.5:
                    edges.append((f"ap{i}", f"ap{j}"))
        network.set_explicit_conflicts(edges)
        plan = ChannelPlan().subset(4)
        assignment = random_assignment(network.ap_ids, plan, rng=seed)
        for ap_id, channel in assignment.items():
            network.set_channel(ap_id, channel)
        graph = build_interference_graph(network)
        model = ThroughputModel()
        before = model.aggregate_mbps(network, graph)
        result = refine_associations(network, graph, model)
        assert result.aggregate_mbps >= before - 1e-9


class TestMinstrelProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=-2.0, max_value=36.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_minstrel_best_has_positive_estimate(self, snr_db, seed):
        from repro.link.minstrel import MinstrelController
        from repro.phy.ber import coded_ber
        from repro.phy.mimo import MimoMode, effective_snr_db
        from repro.phy.ofdm import OFDM_20MHZ
        from repro.phy.per import per_from_ber

        controller = MinstrelController(OFDM_20MHZ)

        def success_probability(entry):
            mode = MimoMode.STBC if entry.n_streams == 1 else MimoMode.SDM
            ber = coded_ber(
                entry.modulation,
                entry.code_rate,
                effective_snr_db(snr_db, mode),
            )
            return 1.0 - float(per_from_ber(ber))

        best = controller.train(success_probability, n_packets=300, rng=seed)
        assert controller.expected_throughput_mbps(best) >= 0.0
        # Statistics accumulated for the rates it actually used.
        assert any(s.attempts > 0 for s in controller.stats.values())
