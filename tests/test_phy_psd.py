"""Tests for PSD estimation and the Fig 1 per-subcarrier level drop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.psd import occupied_band_level_db, per_subcarrier_power_db, welch_psd
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.warp.waveform import OfdmTransmitter


class TestWelchPsd:
    def test_tone_peak_location(self):
        fs = 20e6
        tone_hz = 2e6
        t = np.arange(65536) / fs
        samples = np.exp(2j * np.pi * tone_hz * t)
        freqs, psd = welch_psd(samples, fs)
        peak_freq = freqs[np.argmax(psd)]
        assert peak_freq == pytest.approx(tone_hz, abs=fs / 256)

    def test_output_shapes_match(self):
        samples = np.random.default_rng(0).standard_normal(4096) + 0j
        freqs, psd = welch_psd(samples, 20e6)
        assert freqs.shape == psd.shape

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            welch_psd(np.ones(16, dtype=complex), 20e6)

    def test_frequencies_sorted(self):
        samples = np.random.default_rng(1).standard_normal(4096) + 0j
        freqs, _ = welch_psd(samples, 20e6)
        assert np.all(np.diff(freqs) > 0)


class TestPerSubcarrierPower:
    def test_uniform_grid(self):
        grid = np.ones((20, 52), dtype=complex)
        power = per_subcarrier_power_db(grid)
        assert power.shape == (52,)
        assert np.allclose(power, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            per_subcarrier_power_db(np.empty((0, 52), dtype=complex))


class TestFig1Effect:
    """The headline PSD observation: ~3 dB/subcarrier lower with CB."""

    def _waveform_psd_level(self, params, n_symbols=300, seed=0):
        transmitter = OfdmTransmitter(params=params, tx_power=1.0)
        frame = transmitter.build_frame(n_symbols, rng=seed)
        payload = frame.samples[frame.preamble_length :]
        fs = params.bandwidth_mhz * 1e6
        freqs, psd = welch_psd(payload, fs, segment_length=params.fft_size * 4)
        return occupied_band_level_db(
            freqs, psd, params.bandwidth_mhz * 1e6 * 0.8
        )

    def test_cb_drops_level_about_3db(self):
        level20 = self._waveform_psd_level(OFDM_20MHZ)
        level40 = self._waveform_psd_level(OFDM_40MHZ)
        # Same total power over ~double the subcarriers: ~3 dB drop
        # in the per-Hz level across the occupied band.
        assert level20 - level40 == pytest.approx(3.0, abs=0.8)


class TestOccupiedBandLevel:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            occupied_band_level_db(np.ones(4), np.ones(5), 20e6)

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            occupied_band_level_db(np.ones(4), np.ones(4), 0.0)

    def test_no_bins_in_band_rejected(self):
        freqs = np.array([30e6, 40e6])
        with pytest.raises(ConfigurationError):
            occupied_band_level_db(freqs, np.zeros(2), 1e3)
