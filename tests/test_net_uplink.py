"""Tests for the saturated-uplink throughput model."""

import pytest

from repro.mac.dcf import DEFAULT_TIMINGS
from repro.mac.packetsim import SimulatedLink, simulate_cell
from repro.net import Channel, build_interference_graph
from repro.net.topology import Network
from repro.net.uplink import UplinkThroughputModel

PACKET_BITS = 8 * 1500


def two_cells(conflicting: bool) -> Network:
    network = Network()
    network.add_ap("a")
    network.add_ap("b")
    for client_id, ap_id, snr in (
        ("ua1", "a", 25.0),
        ("ua2", "a", 25.0),
        ("ub1", "b", 25.0),
    ):
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts([("a", "b")] if conflicting else [])
    return network


class TestIsolatedCell:
    def test_reduces_to_downlink_formula(self, model):
        """With no co-channel neighbours, uplink == downlink (DCF's
        per-packet fairness is the same round-robin either way)."""
        network = two_cells(conflicting=False)
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(44)}
        uplink = UplinkThroughputModel()
        down = model.evaluate(network, graph, assignment=assignment)
        up = uplink.evaluate(network, graph, assignment=assignment)
        for ap_id in ("a", "b"):
            assert up.per_ap_mbps[ap_id] == pytest.approx(
                down.per_ap_mbps[ap_id]
            )


class TestSharedChannel:
    def test_station_shares_sum_to_capacity(self):
        """Two co-channel cells: per-cell throughput splits by station
        count (2:1 for cells of 2 and 1 equal clients)."""
        network = two_cells(conflicting=True)
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(36)}
        uplink = UplinkThroughputModel()
        report = uplink.evaluate(network, graph, assignment=assignment)
        assert report.per_ap_mbps["a"] == pytest.approx(
            2 * report.per_ap_mbps["b"], rel=1e-6
        )

    def test_matches_global_round_robin_simulation(self):
        """The uplink cycle is exactly one global per-station round
        robin — verified against the packet simulator with all three
        stations in one pool."""
        network = two_cells(conflicting=True)
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(36)}
        uplink = UplinkThroughputModel()
        report = uplink.evaluate(network, graph, assignment=assignment)

        links = []
        for client_id, ap_id in network.associations.items():
            decision = uplink.link_decision(
                network, ap_id, client_id, Channel(36)
            )
            links.append(
                SimulatedLink(
                    client_id=client_id,
                    airtime_s=DEFAULT_TIMINGS.packet_airtime_s(
                        PACKET_BITS, decision.nominal_rate_mbps
                    ),
                    per=decision.per,
                )
            )
        sim = simulate_cell(links, duration_s=30.0, retry_limit=100, rng=1)
        cell_a = sum(
            sim.client_throughput_mbps(c)
            for c, ap in network.associations.items()
            if ap == "a"
        )
        assert cell_a == pytest.approx(report.per_ap_mbps["a"], rel=0.03)

    def test_orthogonal_channels_escape_sharing(self):
        network = two_cells(conflicting=True)
        graph = build_interference_graph(network)
        uplink = UplinkThroughputModel()
        shared = uplink.aggregate_mbps(
            network, graph, assignment={"a": Channel(36), "b": Channel(36)}
        )
        separated = uplink.aggregate_mbps(
            network, graph, assignment={"a": Channel(36), "b": Channel(44)}
        )
        assert separated > shared

    def test_cross_cell_anomaly(self):
        """A slow uplink client in cell b drags cell a's throughput —
        the inter-cell face of the anomaly, now in the analytic model."""
        network = two_cells(conflicting=True)
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(36)}
        uplink = UplinkThroughputModel()
        fast = uplink.evaluate(network, graph, assignment=assignment)
        network.set_link_snr("b", "ub1", 2.0)  # cell b's client turns slow
        uplink_slow = UplinkThroughputModel()
        slow = uplink_slow.evaluate(network, graph, assignment=assignment)
        assert slow.per_ap_mbps["a"] < 0.4 * fast.per_ap_mbps["a"]

    def test_empty_cell_zero(self):
        network = two_cells(conflicting=True)
        network.disassociate("ub1")
        graph = build_interference_graph(network)
        uplink = UplinkThroughputModel()
        report = uplink.evaluate(
            network, graph, assignment={"a": Channel(36), "b": Channel(36)}
        )
        assert report.per_ap_mbps["b"] == 0.0
        assert report.per_ap_mbps["a"] > 0


class TestAllocatorWithUplink:
    def test_algorithm2_runs_on_uplink_objective(self):
        from repro.core import allocate_channels
        from repro.net import ChannelPlan

        network = two_cells(conflicting=True)
        graph = build_interference_graph(network)
        uplink = UplinkThroughputModel()
        result = allocate_channels(
            network, graph, ChannelPlan().subset(4), uplink, rng=0
        )
        # With four channels the allocator separates the two cells.
        assert not result.assignment["a"].conflicts_with(
            result.assignment["b"]
        )
