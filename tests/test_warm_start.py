"""Warm-started reconfiguration (``warm_start=`` through the stack).

The contract: a warm start resumes Algorithm 2 from a previous
assignment as the *single* start, consumes no RNG draws (replaying the
same seed stream after the same churn is bit-reproducible), converges
to the same fixed point it started from when nothing changed, and
costs strictly fewer evaluations than a cold multi-start — the obs
counters must show the saving, not just the return values.
"""

import numpy as np
import pytest

from repro.core.allocation import allocate_channels, random_assignment
from repro.core.controller import Acorn
from repro.errors import AllocationError
from repro.net import ThroughputModel, build_interference_graph
from repro.obs import Tracer, activate
from repro.sim.scenario import SCENARIOS


def office():
    scenario = SCENARIOS["office"]()
    network = scenario.network
    for client_id in network.client_ids:
        candidates = network.candidate_aps(client_id)
        if candidates:
            network.associate(client_id, candidates[0])
    return network, build_interference_graph(network), scenario.plan


class TestWarmStartAllocation:
    def test_warm_restart_is_a_fixed_point(self):
        network, graph, plan = office()
        model = ThroughputModel()
        cold = allocate_channels(network, graph, plan, model, rng=7, restarts=4)
        warm = allocate_channels(
            network, graph, plan, model, warm_start=cold.assignment
        )
        assert warm.assignment == cold.assignment
        assert warm.aggregate_mbps == cold.aggregate_mbps
        assert warm.total_evaluations < cold.total_evaluations

    def test_warm_start_consumes_no_rng_draws(self):
        network, graph, plan = office()
        model = ThroughputModel()
        baseline = random_assignment(network.ap_ids, plan, 3)
        generator = np.random.default_rng(7)
        allocate_channels(
            network, graph, plan, model,
            warm_start=baseline, rng=generator,
        )
        untouched = np.random.default_rng(7)
        assert generator.integers(1 << 30) == untouched.integers(1 << 30)

    def test_warm_replay_is_bit_identical(self):
        network, graph, plan = office()
        model = ThroughputModel()
        baseline = random_assignment(network.ap_ids, plan, 3)
        runs = [
            allocate_channels(
                network, graph, plan, model, warm_start=baseline, rng=5
            )
            for _ in range(2)
        ]
        assert runs[0].assignment == runs[1].assignment
        assert runs[0].aggregate_mbps == runs[1].aggregate_mbps
        assert runs[0].evaluations == runs[1].evaluations
        assert [
            (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
            for e in runs[0].history
        ] == [
            (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
            for e in runs[1].history
        ]

    def test_warm_start_excludes_initial_and_multistart(self):
        network, graph, plan = office()
        model = ThroughputModel()
        baseline = random_assignment(network.ap_ids, plan, 3)
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, model,
                warm_start=baseline, initial=baseline,
            )
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, model,
                warm_start=baseline, restarts=2,
            )

    def test_warm_start_must_cover_the_scope(self):
        network, graph, plan = office()
        model = ThroughputModel()
        partial = dict(random_assignment(network.ap_ids, plan, 3))
        partial.pop(network.ap_ids[0])
        with pytest.raises(AllocationError, match="misses APs"):
            allocate_channels(
                network, graph, plan, model, warm_start=partial
            )

    def test_obs_counters_show_the_saving(self):
        network, graph, plan = office()
        model = ThroughputModel()
        baseline = allocate_channels(
            network, graph, plan, model, rng=7
        ).assignment

        cold_tracer = Tracer()
        with activate(cold_tracer):
            allocate_channels(network, graph, plan, model, rng=9, restarts=4)
        warm_tracer = Tracer()
        with activate(warm_tracer):
            allocate_channels(
                network, graph, plan, model, warm_start=baseline
            )
        cold_evals = cold_tracer.metrics.counter("alloc.evaluations").value
        warm_evals = warm_tracer.metrics.counter("alloc.evaluations").value
        assert warm_tracer.metrics.counter("alloc.warm_starts").value == 1
        assert cold_tracer.metrics.counter("alloc.warm_starts").value == 0
        assert warm_evals < cold_evals


class TestControllerWarmStart:
    def make(self, seed=6):
        scenario = SCENARIOS["office"]()
        acorn = Acorn(
            scenario.network, scenario.plan, ThroughputModel(), seed=seed
        )
        acorn.configure(scenario.client_order)
        return acorn

    def test_warm_allocate_resumes_from_committed_channels(self):
        acorn = self.make()
        committed = dict(acorn.network.channel_assignment)
        result = acorn.allocate(warm_start=True)
        assert result.assignment == committed  # converged = fixed point

    def test_warm_allocate_without_channels_raises(self):
        scenario = SCENARIOS["office"]()
        acorn = Acorn(
            scenario.network, scenario.plan, ThroughputModel(), seed=6
        )
        with pytest.raises(AllocationError, match="allocate cold first"):
            acorn.allocate(warm_start=True)

    def test_shard_warm_cache_round_trips(self):
        acorn = self.make()
        sid = acorn.decomposition.shard_ids[0]
        acorn.allocate(shard=sid, warm_start=True)
        cached = acorn.shard_assignment(sid)
        assert cached is not None
        assert set(cached) == set(acorn.decomposition.members(sid))
        for ap_id, channel in cached.items():
            assert acorn.network.channel_assignment[ap_id] == channel

    def test_shard_cache_survives_noop_churn(self):
        acorn = self.make()
        sid = acorn.decomposition.shard_ids[0]
        acorn.allocate(shard=sid, warm_start=True)
        # Non-structural churn: remove and re-add the same association
        # edge pattern -> the decomposition delta is a no-op and the
        # shard's warm assignment must survive.
        client_id = acorn.network.client_ids[0]
        before = acorn.shard_assignment(sid)
        delta = acorn.apply_churn()
        assert delta is not None and delta.is_noop
        assert acorn.shard_assignment(sid) == before

    def test_invalidate_graph_drops_shard_caches(self):
        acorn = self.make()
        sid = acorn.decomposition.shard_ids[0]
        acorn.allocate(shard=sid, warm_start=True)
        assert acorn.shard_assignment(sid) is not None
        acorn.invalidate_graph()
        assert acorn.shard_assignment(sid) is None

    def test_controller_counters_track_shard_cache(self):
        tracer = Tracer()
        with activate(tracer):
            acorn = self.make()
            acorn.decomposition  # build
            acorn.decomposition  # hit
        assert tracer.metrics.counter("controller.shard_builds").value >= 1
        assert tracer.metrics.counter("controller.shard_cache_hits").value >= 1
