"""Tests for the Minstrel-style sampling rate controller."""

import pytest

from repro.errors import ConfigurationError
from repro.link.budget import LinkBudget
from repro.link.minstrel import MinstrelController, RateStats
from repro.mcs.selection import optimal_mcs
from repro.mcs.tables import mcs_by_index
from repro.phy.ber import coded_ber
from repro.phy.mimo import MimoMode, effective_snr_db
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.per import per_from_ber


def channel_oracle(snr_db: float, params, packet_bytes: int = 1500):
    """True per-rate delivery probability from the analytical model."""

    def success_probability(entry) -> float:
        mode = MimoMode.STBC if entry.n_streams == 1 else MimoMode.SDM
        stream_snr = effective_snr_db(snr_db, mode)
        ber = coded_ber(entry.modulation, entry.code_rate, stream_snr)
        return 1.0 - float(per_from_ber(ber, packet_bytes))

    return success_probability


class TestRateStats:
    def test_ewma_moves_toward_outcomes(self):
        stats = RateStats()
        for _ in range(50):
            stats.record(False, weight=0.2)
        assert stats.ewma_success < 0.01
        assert stats.attempts == 50
        assert stats.successes == 0

    def test_counts(self):
        stats = RateStats()
        stats.record(True, 0.1)
        stats.record(False, 0.1)
        assert stats.attempts == 2
        assert stats.successes == 1


class TestControllerBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MinstrelController(OFDM_20MHZ, probe_fraction=1.0)
        with pytest.raises(ConfigurationError):
            MinstrelController(OFDM_20MHZ, ewma_weight=0.0)
        with pytest.raises(ConfigurationError):
            MinstrelController(OFDM_20MHZ, modes=())
        with pytest.raises(ConfigurationError):
            MinstrelController(OFDM_20MHZ).train(lambda e: 1.0, n_packets=0)

    def test_optimistic_start_prefers_top_rate(self):
        controller = MinstrelController(OFDM_20MHZ)
        assert controller.best_entry.index == 15

    def test_record_unknown_rate_rejected(self):
        controller = MinstrelController(OFDM_20MHZ, modes=(MimoMode.STBC,))
        with pytest.raises(ConfigurationError):
            controller.record(mcs_by_index(15), True)

    def test_probing_samples_other_rates(self):
        controller = MinstrelController(OFDM_20MHZ, probe_fraction=0.5)
        import numpy as np

        rng = np.random.default_rng(0)
        chosen = {controller.choose(rng).index for _ in range(200)}
        assert len(chosen) > 3


class TestConvergence:
    @pytest.mark.parametrize("snr_db", [4.0, 12.0, 22.0, 34.0])
    def test_converges_near_oracle(self, snr_db):
        """After training on the true channel statistics, Minstrel's
        best rate achieves >= 80 % of the oracle goodput."""
        controller = MinstrelController(OFDM_20MHZ)
        oracle_fn = channel_oracle(snr_db, OFDM_20MHZ)
        best = controller.train(oracle_fn, n_packets=3000, rng=1)
        minstrel_goodput = best.rate_mbps(OFDM_20MHZ) * oracle_fn(best)
        oracle = optimal_mcs(snr_db, OFDM_20MHZ)
        assert minstrel_goodput >= 0.8 * oracle.goodput_mbps

    def test_dead_rates_learned_dead(self):
        """At 2 dB the 64-QAM rates deliver nothing; the EWMA finds out."""
        controller = MinstrelController(OFDM_20MHZ)
        controller.train(channel_oracle(2.0, OFDM_20MHZ), n_packets=3000, rng=2)
        top = controller.stats[15]
        assert top.attempts > 0
        assert top.ewma_success < 0.05

    def test_width_comparison_through_minstrel(self):
        """The Fig 6a behaviour, reproduced by a learning controller:
        on a poor link the trained 20 MHz goodput beats the trained
        40 MHz goodput."""
        budget = LinkBudget.from_snr20(1.5)
        results = {}
        for params in (OFDM_20MHZ, OFDM_40MHZ):
            snr = budget.subcarrier_snr_db(params)
            controller = MinstrelController(params)
            oracle_fn = channel_oracle(snr, params)
            best = controller.train(oracle_fn, n_packets=2500, rng=3)
            results[params.name] = best.rate_mbps(params) * oracle_fn(best)
        assert results["HT20"] > results["HT40"]

    def test_deterministic_given_seed(self):
        a = MinstrelController(OFDM_20MHZ)
        b = MinstrelController(OFDM_20MHZ)
        oracle_fn = channel_oracle(15.0, OFDM_20MHZ)
        assert a.train(oracle_fn, 500, rng=7).index == b.train(
            oracle_fn, 500, rng=7
        ).index
