"""Tests for the multi-start allocation extension."""

import pytest

from repro.core.allocation import allocate_channels
from repro.errors import AllocationError
from repro.net import Channel, ChannelPlan, build_interference_graph


class TestMultiStart:
    def test_single_restart_matches_paper_behaviour(
        self, triangle_network, model
    ):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        single = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=1
        )
        default = allocate_channels(
            triangle_network, graph, plan, model, rng=5
        )
        assert single.assignment == default.assignment

    def test_more_starts_never_worse(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        one = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=1
        )
        many = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=5
        )
        assert many.aggregate_mbps >= one.aggregate_mbps - 1e-9

    def test_evaluations_accumulate(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        one = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=1
        )
        three = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=3
        )
        assert three.total_evaluations > one.total_evaluations

    def test_restart_accounting_is_explicit(self, triangle_network, model):
        """The winner's own cost stays intact; the total is itemised
        per start instead of overwriting ``evaluations``."""
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        three = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=3
        )
        assert len(three.evaluations_per_start) == 3
        assert three.total_evaluations == sum(three.evaluations_per_start)
        assert three.evaluations in three.evaluations_per_start
        assert three.evaluations < three.total_evaluations

    def test_single_start_totals_coincide(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        one = allocate_channels(
            triangle_network, graph, plan, model, rng=5, restarts=1
        )
        assert one.total_evaluations == one.evaluations
        assert one.evaluations_per_start == [one.evaluations]

    def test_explicit_initial_counts_as_first_start(
        self, triangle_network, model
    ):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        initial = {ap: Channel(36) for ap in triangle_network.ap_ids}
        result = allocate_channels(
            triangle_network,
            graph,
            plan,
            model,
            initial=initial,
            rng=5,
            restarts=2,
        )
        # The best of {from-initial, from-one-random-draw}.
        baseline = allocate_channels(
            triangle_network, graph, plan, model, initial=initial
        )
        assert result.aggregate_mbps >= baseline.aggregate_mbps - 1e-9

    def test_invalid_restarts_rejected(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        with pytest.raises(AllocationError):
            allocate_channels(
                triangle_network,
                graph,
                ChannelPlan(),
                model,
                restarts=0,
            )
