"""Tests for the network throughput evaluator Y(F)."""

import pytest

from repro.errors import AllocationError
from repro.net.channels import Channel, ChannelPlan
from repro.net.interference import build_interference_graph
from repro.net.throughput import ThroughputModel, UdpTraffic
from repro.net.topology import Network


@pytest.fixture
def graph(two_cell_network):
    return build_interference_graph(two_cell_network)


class TestEvaluate:
    def test_reports_every_ap(self, two_cell_network, graph, model):
        two_cell_network.set_channel("ap1", Channel(36))
        two_cell_network.set_channel("ap2", Channel(44))
        report = model.evaluate(two_cell_network, graph)
        assert set(report.per_ap_mbps) == {"ap1", "ap2"}
        assert report.total_mbps == pytest.approx(
            sum(report.per_ap_mbps.values())
        )

    def test_unassigned_ap_contributes_zero(self, two_cell_network, graph, model):
        two_cell_network.set_channel("ap1", Channel(36))
        report = model.evaluate(two_cell_network, graph)
        assert report.per_ap_mbps["ap2"] == 0.0

    def test_good_cell_prefers_bonding(self, two_cell_network, graph, model):
        narrow = model.aggregate_mbps(
            two_cell_network,
            graph,
            assignment={"ap1": Channel(36), "ap2": Channel(44)},
        )
        wide = model.aggregate_mbps(
            two_cell_network,
            graph,
            assignment={"ap1": Channel(36), "ap2": Channel(44, 48)},
        )
        assert wide > narrow

    def test_poor_cell_prefers_20mhz(self, two_cell_network, graph, model):
        """The central ACORN observation, at the evaluator level."""
        narrow = model.aggregate_mbps(
            two_cell_network,
            graph,
            assignment={"ap1": Channel(36), "ap2": Channel(44, 48)},
        )
        wide = model.aggregate_mbps(
            two_cell_network,
            graph,
            assignment={"ap1": Channel(36, 40), "ap2": Channel(44, 48)},
        )
        assert narrow > wide

    def test_what_if_does_not_mutate(self, two_cell_network, graph, model):
        two_cell_network.set_channel("ap1", Channel(36))
        two_cell_network.set_channel("ap2", Channel(44))
        model.evaluate(
            two_cell_network,
            graph,
            assignment={"ap1": Channel(52, 56)},
            associations={"poor1": "ap1"},
        )
        assert two_cell_network.channel_assignment["ap1"] == Channel(36)
        assert set(two_cell_network.associations) == {
            "poor1",
            "poor2",
            "good1",
            "good2",
        }

    def test_contention_halves_throughput(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        isolated = model.aggregate_mbps(
            triangle_network,
            graph,
            assignment={
                "ap1": Channel(36),
                "ap2": Channel(44),
                "ap3": Channel(52),
            },
        )
        # Put ap1 and ap2 on the same channel: each gets M = 1/2.
        shared = model.evaluate(
            triangle_network,
            graph,
            assignment={
                "ap1": Channel(36),
                "ap2": Channel(36),
                "ap3": Channel(52),
            },
        )
        isolated_report = model.evaluate(
            triangle_network,
            graph,
            assignment={
                "ap1": Channel(36),
                "ap2": Channel(44),
                "ap3": Channel(52),
            },
        )
        assert shared.per_ap_mbps["ap1"] == pytest.approx(
            isolated_report.per_ap_mbps["ap1"] / 2
        )
        assert shared.total_mbps < isolated

    def test_missing_channel_in_ap_throughput_rejected(
        self, two_cell_network, graph, model
    ):
        with pytest.raises(AllocationError):
            model.ap_throughput_mbps(two_cell_network, graph, "ap1", {}, {})


class TestPerClientBreakdown:
    def test_per_client_sums_to_cell(self, two_cell_network, graph, model):
        two_cell_network.set_channel("ap1", Channel(36))
        two_cell_network.set_channel("ap2", Channel(44, 48))
        report = model.evaluate(two_cell_network, graph)
        ap2_clients = [
            client
            for client, ap in report.associations.items()
            if ap == "ap2"
        ]
        assert sum(
            report.per_client_mbps[c] for c in ap2_clients
        ) == pytest.approx(report.per_ap_mbps["ap2"])

    def test_dcf_fairness_equal_shares(self, two_cell_network, graph, model):
        """Per-packet fairness: all clients of a cell get equal Mbps."""
        two_cell_network.set_channel("ap2", Channel(44, 48))
        two_cell_network.set_channel("ap1", Channel(36))
        report = model.evaluate(two_cell_network, graph)
        assert report.per_client_mbps["good1"] == pytest.approx(
            report.per_client_mbps["good2"]
        )


class TestIsolatedThroughput:
    def test_isolation_beats_contention(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        isolated = model.isolated_ap_throughput_mbps(
            triangle_network, "ap1", Channel(36)
        )
        contended = model.evaluate(
            triangle_network,
            graph,
            assignment={name: Channel(36) for name in ("ap1", "ap2", "ap3")},
        ).per_ap_mbps["ap1"]
        assert isolated > contended

    def test_empty_ap_is_zero(self, model):
        network = Network()
        network.add_ap("lonely")
        assert (
            model.isolated_ap_throughput_mbps(network, "lonely", Channel(36))
            == 0.0
        )

    def test_best_isolated_takes_width_max(self, two_cell_network, model):
        plan = ChannelPlan()
        best = model.best_isolated_throughput_mbps(
            two_cell_network, "ap1", plan.all_channels()
        )
        narrow = model.isolated_ap_throughput_mbps(
            two_cell_network, "ap1", Channel(36)
        )
        wide = model.isolated_ap_throughput_mbps(
            two_cell_network, "ap1", Channel(36, 40)
        )
        assert best == pytest.approx(max(narrow, wide))


class TestDecisionCache:
    def test_cache_hits_are_consistent(self, two_cell_network, model):
        first = model.link_decision(
            two_cell_network, "ap2", "good1", Channel(44, 48)
        )
        second = model.link_decision(
            two_cell_network, "ap2", "good1", Channel(44, 48)
        )
        assert first is second


class TestUdpTraffic:
    def test_factor_always_one(self):
        traffic = UdpTraffic()
        for per in (0.0, 0.3, 1.0):
            assert traffic.goodput_factor(per) == 1.0
