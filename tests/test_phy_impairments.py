"""Tests for RF front-end impairments."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.impairments import (
    RfImpairments,
    apply_cfo,
    apply_iq_imbalance,
    apply_phase_noise,
)
from repro.phy.modulation import QPSK
from repro.phy.ofdm import OFDM_20MHZ
from repro.warp.receiver import OfdmReceiver
from repro.warp.waveform import OfdmTransmitter


class TestCfo:
    def test_zero_cfo_identity(self):
        samples = np.exp(1j * np.linspace(0, 5, 100))
        assert np.allclose(apply_cfo(samples, 0.0, 20e6), samples)

    def test_power_preserved(self):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        rotated = apply_cfo(samples, 5e3, 20e6)
        assert np.mean(np.abs(rotated) ** 2) == pytest.approx(
            np.mean(np.abs(samples) ** 2)
        )

    def test_phase_ramp_rate(self):
        samples = np.ones(21, dtype=complex)
        rotated = apply_cfo(samples, 1e6, 20e6)  # 1 MHz at 20 MS/s
        # Phase advances 2*pi/20 per sample.
        expected_phase = 2 * np.pi / 20
        measured = np.angle(rotated[1] / rotated[0])
        assert measured == pytest.approx(expected_phase)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_cfo(np.ones(4, dtype=complex), 1e3, 0.0)


class TestPhaseNoise:
    def test_zero_linewidth_identity(self):
        samples = np.ones(50, dtype=complex)
        assert np.allclose(apply_phase_noise(samples, 0.0, 20e6), samples)

    def test_power_preserved(self):
        samples = np.ones(5000, dtype=complex)
        noisy = apply_phase_noise(samples, 1e3, 20e6, rng=1)
        assert np.mean(np.abs(noisy) ** 2) == pytest.approx(1.0)

    def test_phase_variance_grows(self):
        """A Wiener process: later samples have drifted further."""
        samples = np.ones(20_000, dtype=complex)
        noisy = apply_phase_noise(samples, 5e3, 20e6, rng=2)
        early = np.angle(noisy[:1000])
        late_drift = np.abs(np.angle(noisy[-1]))
        assert np.std(early) < np.pi / 4  # still coherent early on
        # Deterministic given the seed; just require visible drift.
        assert late_drift > np.std(early)

    def test_negative_linewidth_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_phase_noise(np.ones(4, dtype=complex), -1.0, 20e6)


class TestIqImbalance:
    def test_perfect_balance_identity(self):
        rng = np.random.default_rng(3)
        samples = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert np.allclose(apply_iq_imbalance(samples, 0.0, 0.0), samples)

    def test_imbalance_creates_image(self):
        """IQ imbalance leaks a conjugate image: a pure +f tone gains
        energy at -f."""
        n = 4096
        tone = np.exp(2j * np.pi * 0.1 * np.arange(n))
        impaired = apply_iq_imbalance(tone, gain_imbalance_db=1.0)
        spectrum = np.fft.fft(impaired)
        main_bin = int(0.1 * n)
        image_bin = n - main_bin
        image_ratio = np.abs(spectrum[image_bin]) / np.abs(spectrum[main_bin])
        assert image_ratio > 0.01  # visible image
        assert image_ratio < 0.5   # but far below the main tone


class TestBundle:
    def test_clean_bundle_is_identity(self):
        bundle = RfImpairments()
        assert bundle.is_clean
        samples = np.ones(64, dtype=complex)
        assert np.allclose(bundle.apply(samples, 20e6), samples)

    def test_dirty_bundle_flags(self):
        assert not RfImpairments(cfo_hz=1e3).is_clean

    def test_differential_survives_cfo_better_than_coherent(self):
        """The classic result the WARP chain should show: DQPSK eats a
        slow phase ramp that destroys coherent QPSK."""
        cfo_hz = 4e3  # slow rotation: ~2 degrees per OFDM symbol
        results = {}
        for differential in (False, True):
            transmitter = OfdmTransmitter(
                OFDM_20MHZ, QPSK, differential=differential
            )
            frame = transmitter.build_frame(40, rng=4)
            impaired = apply_cfo(frame.samples, cfo_hz, 20e6)
            receiver = OfdmReceiver(
                OFDM_20MHZ, QPSK, differential=differential
            )
            result = receiver.demodulate(
                impaired, frame.n_symbols, payload_start=frame.preamble_length
            )
            results[differential] = result.bit_errors(frame.bits) / frame.bits.size
        assert results[True] <= results[False]

    def test_mild_impairments_still_decode(self):
        """A realistic residual-impairment budget leaves a clean link
        decodable (the margin real cards live on)."""
        bundle = RfImpairments(
            phase_noise_linewidth_hz=50.0,
            gain_imbalance_db=0.2,
            phase_imbalance_deg=1.0,
        )
        transmitter = OfdmTransmitter(OFDM_20MHZ, QPSK, differential=True)
        frame = transmitter.build_frame(20, rng=5)
        impaired = bundle.apply(frame.samples, 20e6, rng=6)
        receiver = OfdmReceiver(OFDM_20MHZ, QPSK, differential=True)
        result = receiver.demodulate(
            impaired, frame.n_symbols, payload_start=frame.preamble_length
        )
        ber = result.bit_errors(frame.bits) / frame.bits.size
        assert ber < 0.01
