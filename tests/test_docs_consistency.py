"""Documentation consistency checks.

Docs rot silently; these tests keep the README, DESIGN.md and the
docstring discipline honest against the actual tree.
"""

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).parent.parent
SRC = REPO / "src" / "repro"


def all_source_files():
    return sorted(SRC.rglob("*.py"))


class TestRepositoryLayout:
    def test_required_top_level_files(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "LICENSE",
            "pyproject.toml",
        ):
            assert (REPO / name).exists(), f"missing {name}"

    def test_api_reference_exists(self):
        assert (REPO / "docs" / "API.md").exists()

    def test_every_benchmark_reproduces_something(self):
        """Each bench module's docstring names what it regenerates."""
        for path in sorted((REPO / "benchmarks").glob("test_*.py")):
            tree = ast.parse(path.read_text())
            docstring = ast.get_docstring(tree)
            assert docstring, f"{path.name} lacks a module docstring"

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for path in sorted((REPO / "examples").glob("*.py")):
            assert path.name in readme, f"{path.name} not documented in README"


class TestDocstringDiscipline:
    @pytest.mark.parametrize(
        "path", all_source_files(), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_module_docstrings(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_public_functions_documented(self):
        undocumented = []
        for path in all_source_files():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
                elif isinstance(node, ast.ClassDef):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
                    for member in node.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            if member.name.startswith("_"):
                                continue
                            if not ast.get_docstring(member):
                                undocumented.append(
                                    f"{path.name}:{node.name}.{member.name}"
                                )
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_design_lists_every_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for path in sorted((REPO / "benchmarks").glob("test_*.py")):
            assert (
                path.name in design or path.stem.replace("test_", "") in design
            ), f"{path.name} not indexed in DESIGN.md"


class TestExperimentsDocument:
    def test_every_figure_and_table_covered(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for marker in (
            "Fig 1",
            "Fig 2",
            "Fig 3",
            "Fig 4",
            "Fig 5",
            "Table 1",
            "Fig 6a",
            "Fig 6b",
            "Fig 8",
            "Fig 9",
            "Topology 1",
            "Topology 2",
            "Fig 11",
            "Table 3",
            "Fig 14",
            "Fig 12/13",
        ):
            assert marker in experiments, f"EXPERIMENTS.md misses {marker}"

    def test_substitutions_documented_in_design(self):
        design = (REPO / "DESIGN.md").read_text()
        for substitution in ("WARP", "CRAWDAD", "Ralink", "Click"):
            assert substitution in design