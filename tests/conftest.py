"""Shared fixtures for the ACORN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import ChannelPlan, Network, ThroughputModel


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for the test at hand."""
    return np.random.default_rng(1234)


@pytest.fixture
def plan() -> ChannelPlan:
    """The full 5 GHz channel plan."""
    return ChannelPlan()


@pytest.fixture
def model() -> ThroughputModel:
    """A default throughput model."""
    return ThroughputModel()


@pytest.fixture
def two_cell_network() -> Network:
    """2 APs, 2 poor + 2 good clients, interference free, associated."""
    network = Network()
    network.add_ap("ap1")
    network.add_ap("ap2")
    links = {
        ("ap1", "poor1"): 1.0,
        ("ap1", "poor2"): 2.0,
        ("ap2", "good1"): 25.0,
        ("ap2", "good2"): 27.0,
    }
    for (ap_id, client_id), snr in links.items():
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, snr)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts([])
    return network


@pytest.fixture
def triangle_network() -> Network:
    """3 mutually interfering APs, one client each."""
    network = Network()
    for index in range(1, 4):
        ap_id = f"ap{index}"
        network.add_ap(ap_id)
        client_id = f"u{index}"
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, 20.0 + index)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts(
        [("ap1", "ap2"), ("ap1", "ap3"), ("ap2", "ap3")]
    )
    return network
