"""End-to-end integration tests: the paper's headline claims.

Each test configures a full scenario through the public API, with ACORN
and the baselines side by side, and asserts the *shape* of the paper's
results: who wins, by roughly what factor, and which structural
decisions (widths, groupings, isolation) the algorithms make.
"""

import pytest

from repro import Acorn
from repro.baselines import (
    KauffmannController,
    RandomConfigurator,
    brute_force_allocation,
    isolation_upper_bound_mbps,
)
from repro.core import allocate_channels
from repro.graph.coloring import worst_case_ratio
from repro.net import ThroughputModel, build_interference_graph
from repro.sim import (
    TcpTraffic,
    ap_triple,
    dense_triangle,
    random_enterprise,
    topology1,
    topology2,
)


def configure_both(builder):
    """Run ACORN and [17] on identical copies of a scenario."""
    acorn_scenario = builder()
    acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
    acorn_result = acorn.configure(acorn_scenario.client_order)
    baseline_scenario = builder()
    baseline = KauffmannController(
        baseline_scenario.network, baseline_scenario.plan
    )
    baseline_result = baseline.configure(baseline_scenario.client_order)
    return acorn_result, baseline_result


class TestTopology1:
    """Fig 10, Topology 1: the poor cell must not bond."""

    def test_acorn_gives_poor_cell_20mhz(self):
        scenario = topology1()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assert not result.report.assignment["AP1"].is_bonded
        assert result.report.assignment["AP2"].is_bonded

    def test_acorn_beats_baseline_on_poor_cell(self):
        acorn_result, baseline_result = configure_both(topology1)
        acorn_ap1 = acorn_result.report.per_ap_mbps["AP1"]
        baseline_ap1 = baseline_result.report.per_ap_mbps["AP1"]
        # The paper reports a ~4-5x gain (16.03 vs 3.15 Mbps); with the
        # simulated links the bonded cell collapses entirely, so we
        # assert at least a 3x improvement.
        assert acorn_ap1 >= 3 * max(baseline_ap1, 1e-9) or baseline_ap1 == 0
        assert acorn_ap1 > 3.0

    def test_good_cell_unaffected(self):
        acorn_result, baseline_result = configure_both(topology1)
        assert acorn_result.report.per_ap_mbps["AP2"] == pytest.approx(
            baseline_result.report.per_ap_mbps["AP2"], rel=0.1
        )

    def test_total_network_gain(self):
        acorn_result, baseline_result = configure_both(topology1)
        assert acorn_result.total_mbps > baseline_result.total_mbps


class TestTopology2:
    """Fig 10, Topology 2: width decisions and quality grouping at scale."""

    def test_acorn_beats_baseline_total(self):
        acorn_result, baseline_result = configure_both(topology2)
        assert acorn_result.total_mbps > baseline_result.total_mbps

    def test_poor_cells_get_20mhz(self):
        scenario = topology2()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assert not result.report.assignment["AP4"].is_bonded
        assert not result.report.assignment["AP5"].is_bonded

    def test_poor_cell_gains_large(self):
        """AP4's cell collapses under greedy bonding (paper: 6x gain)."""
        acorn_result, baseline_result = configure_both(topology2)
        acorn_ap4 = acorn_result.report.per_ap_mbps["AP4"]
        baseline_ap4 = baseline_result.report.per_ap_mbps["AP4"]
        assert acorn_ap4 > 3 * max(baseline_ap4, 1e-9) or baseline_ap4 == 0
        assert acorn_ap4 > 3.0

    def test_all_clients_served(self):
        scenario = topology2()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assert len(result.report.associations) == len(
            scenario.network.client_ids
        )


class TestDenseTriangle:
    """Fig 11: with 4 channels only one AP can bond — the right one."""

    def test_acorn_bonds_only_the_good_cell(self):
        scenario = dense_triangle()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assignment = result.report.assignment
        assert assignment["AP1"].is_bonded
        assert not assignment["AP2"].is_bonded
        assert not assignment["AP3"].is_bonded

    def test_acorn_vs_aggressive_cb_about_2x(self):
        """The paper: ~2x over every-AP-bonds."""
        acorn_result, baseline_result = configure_both(dense_triangle)
        assert acorn_result.total_mbps > 1.5 * baseline_result.total_mbps

    def test_acorn_beats_all_single_width_choices(self):
        """ACORN's mixed-width allocation beats the best X/Y/Z row of
        Fig 11's table built from manual width combinations."""
        scenario = dense_triangle()
        model = ThroughputModel()
        acorn = Acorn(scenario.network, scenario.plan, model, seed=7)
        result = acorn.configure(scenario.client_order)
        graph = acorn.graph
        network = scenario.network
        optimal_assignment, optimal_value = brute_force_allocation(
            network, graph, scenario.plan, model
        )
        assert result.total_mbps == pytest.approx(optimal_value, rel=0.05)


class TestApproximationRatio:
    """Fig 14 and the O(1/(Δ+1)) theory."""

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_beats_worst_case_bound(self, seed):
        scenario = ap_triple(seed)
        model = ThroughputModel()
        acorn = Acorn(scenario.network, scenario.plan, model, seed=seed)
        acorn.assign_initial_channels()
        acorn.admit_clients(scenario.client_order)
        graph = acorn.graph
        y_star = isolation_upper_bound_mbps(
            scenario.network, scenario.plan, model,
            scenario.network.associations,
        )
        ratio_bound = worst_case_ratio(graph)
        for n_channels in (2, 4, 6):
            plan = scenario.plan.subset(n_channels)
            result = allocate_channels(
                scenario.network, graph, plan, model, rng=seed
            )
            assert result.aggregate_mbps >= ratio_bound * y_star - 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_six_channels_reach_isolation_bound(self, seed):
        """With 6 channels the three APs fully isolate: T = Y*."""
        scenario = ap_triple(seed)
        model = ThroughputModel()
        acorn = Acorn(scenario.network, scenario.plan, model, seed=seed)
        acorn.assign_initial_channels()
        acorn.admit_clients(scenario.client_order)
        graph = acorn.graph
        y_star = isolation_upper_bound_mbps(
            scenario.network, scenario.plan, model,
            scenario.network.associations,
        )
        result = allocate_channels(
            scenario.network, graph, scenario.plan.subset(6), model, rng=seed
        )
        assert result.aggregate_mbps == pytest.approx(y_star, rel=0.02)

    def test_more_channels_never_hurt(self):
        scenario = ap_triple(1)
        model = ThroughputModel()
        acorn = Acorn(scenario.network, scenario.plan, model, seed=1)
        acorn.assign_initial_channels()
        acorn.admit_clients(scenario.client_order)
        graph = acorn.graph
        values = [
            allocate_channels(
                scenario.network, graph, scenario.plan.subset(n), model, rng=1
            ).aggregate_mbps
            for n in (2, 4, 6)
        ]
        assert values == sorted(values)


class TestRandomConfigurations:
    """Table 3: ACORN vs the 10 best of 50 random manual configs."""

    @pytest.fixture(scope="class")
    def configured(self):
        scenario = random_enterprise(n_aps=5, n_clients=12, seed=11)
        model = ThroughputModel()
        acorn = Acorn(scenario.network, scenario.plan, model, seed=3)
        acorn_result = acorn.configure(scenario.client_order)
        graph = acorn.graph
        configurator = RandomConfigurator(
            scenario.network, graph, scenario.plan, model
        )
        best = configurator.best(50, keep=10, rng=5)
        return acorn_result, best

    def test_acorn_beats_best_random_udp(self, configured):
        acorn_result, best = configured
        assert acorn_result.total_mbps > best[0].total_mbps

    def test_ten_best_all_below_acorn(self, configured):
        acorn_result, best = configured
        assert all(c.total_mbps < acorn_result.total_mbps for c in best)

    def test_acorn_beats_best_random_tcp(self):
        """The TCP rows of Table 3 (unsaturated, loss-sensitive)."""
        scenario = random_enterprise(n_aps=5, n_clients=12, seed=11)
        model = ThroughputModel(traffic=TcpTraffic())
        acorn = Acorn(scenario.network, scenario.plan, model, seed=3)
        acorn_result = acorn.configure(scenario.client_order)
        configurator = RandomConfigurator(
            scenario.network, acorn.graph, scenario.plan, model
        )
        best = configurator.best(50, keep=10, rng=5)
        assert acorn_result.total_mbps > best[0].total_mbps

    def test_tcp_totals_below_udp(self):
        scenario = random_enterprise(n_aps=5, n_clients=12, seed=11)
        udp_model = ThroughputModel()
        tcp_model = ThroughputModel(traffic=TcpTraffic())
        acorn_udp = Acorn(scenario.fresh_network(), scenario.plan, udp_model, seed=3)
        udp_total = acorn_udp.configure(scenario.client_order).total_mbps
        acorn_tcp = Acorn(scenario.fresh_network(), scenario.plan, tcp_model, seed=3)
        tcp_total = acorn_tcp.configure(scenario.client_order).total_mbps
        assert tcp_total < udp_total
