"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scenario_choices(self):
        args = build_parser().parse_args(["scenario", "topology1"])
        assert args.name == "topology1"
        assert args.traffic == "udp"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nosuch"])

    def test_mobility_defaults(self):
        args = build_parser().parse_args(["mobility"])
        assert args.direction == "away"
        assert args.duration == 50.0

    def test_scenario_choices_come_from_registry(self):
        from repro.sim.scenario import scenario_names

        for name in scenario_names():
            args = build_parser().parse_args(["scenario", name])
            assert args.name == name

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios is None
        assert args.n_seeds == 5
        assert args.workers == 1
        assert args.algorithms == "acorn,kauffmann"
        assert not args.resume
        assert not args.profile

    def test_trace_defaults_keep_fig9_mode(self):
        args = build_parser().parse_args(["trace"])
        assert args.run is None
        assert args.sessions == 20_000
        assert args.format == "text"
        args = build_parser().parse_args(["trace", "journal.jsonl"])
        assert args.run == "journal.jsonl"


class TestCommands:
    def test_scenario_topology1(self, capsys):
        assert main(["scenario", "topology1"]) == 0
        output = capsys.readouterr().out
        assert "AP1" in output
        assert "TOTAL" in output
        assert "ACORN" in output

    def test_scenario_dense_tcp(self, capsys):
        assert main(["scenario", "dense", "--traffic", "tcp"]) == 0
        output = capsys.readouterr().out
        assert "TCP" in output

    def test_scenario_random(self, capsys):
        assert main(["scenario", "random", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_mobility_away(self, capsys):
        assert main(["mobility", "--direction", "away", "--duration", "30"]) == 0
        output = capsys.readouterr().out
        assert "fixed 40 MHz" in output

    def test_mobility_toward(self, capsys):
        assert main(["mobility", "--direction", "toward", "--duration", "30"]) == 0
        output = capsys.readouterr().out
        assert "fixed 20 MHz" in output

    def test_transitions(self, capsys):
        assert main(["transitions"]) == 0
        output = capsys.readouterr().out
        assert "QPSK 3/4" in output
        assert "64QAM 5/6" in output

    def test_trace(self, capsys):
        assert main(["trace", "--sessions", "5000", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "median (min)" in output
        assert "recommended T" in output

    def test_scenario_office(self, capsys):
        assert main(["scenario", "office"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_scenario_with_refine(self, capsys):
        assert main(["scenario", "topology1", "--refine"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_longrun(self, capsys):
        assert (
            main(["longrun", "--hours", "0.5", "--period-min", "10"]) == 0
        )
        output = capsys.readouterr().out
        assert "mean throughput" in output
        assert "re-allocations" in output

    def test_sweep_runs_and_summarises(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep",
                "--scenario",
                "topology1",
                "--n-seeds",
                "2",
                "--algorithms",
                "acorn",
                "--out",
                str(journal),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Sweep summary" in output
        assert "2/2 jobs" in output
        assert journal.exists()

    def test_sweep_resume_reloads_journal(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        argv = [
            "sweep",
            "--scenario",
            "topology1",
            "--n-seeds",
            "2",
            "--algorithms",
            "acorn",
            "--out",
            str(journal),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "2 reloaded from journal, 0 executed" in output

    def test_repro_error_exits_2_with_one_line_message(self, capsys):
        # topology1 is deterministic: it takes no scenario seed.
        code = main(["scenario", "topology1", "--scenario-seed", "5"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_sweep_resume_spec_mismatch_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        base = ["sweep", "--scenario", "topology1", "--algorithms", "acorn",
                "--out", str(journal)]
        assert main(base + ["--n-seeds", "1"]) == 0
        capsys.readouterr()
        code = main(base + ["--n-seeds", "2", "--resume"])
        assert code == 2
        assert "different sweep" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "transitions"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "QPSK" in completed.stdout


class TestInvariantCheckFlags:
    """--enforce-checks on sweep and timeline, and --scenario replays."""

    @pytest.fixture()
    def failing_scenario(self):
        from repro.sim.builder import scenario
        from repro.sim.checks import min_interference_degree
        from repro.sim.scenario import SCENARIOS

        chain = (
            scenario("cli_chk_fail")
            .ap("AP1")
            .client("c0")
            .link("AP1", "c0", 25.0)
            .no_conflicts()
            .check(min_interference_degree(5))
            .register()
        )
        yield chain.name
        SCENARIOS.pop(chain.name, None)

    def test_sweep_reports_violations_but_passes_by_default(
        self, failing_scenario, capsys
    ):
        base = ["sweep", "--scenario", failing_scenario, "--n-seeds", "1",
                "--algorithms", "acorn", "--quiet"]
        assert main(base) == 0
        output = capsys.readouterr().out
        assert "Invariant-check violations" in output
        assert "min_interference_degree(5)" in output
        assert "1 invariant-check violation(s)" in output

    def test_sweep_enforce_checks_exits_1_on_violation(
        self, failing_scenario, capsys
    ):
        base = ["sweep", "--scenario", failing_scenario, "--n-seeds", "1",
                "--algorithms", "acorn", "--quiet", "--enforce-checks"]
        assert main(base) == 1

    def test_sweep_enforce_checks_passes_clean_scenarios(self, capsys):
        base = ["sweep", "--scenario", "hidden_chain", "--n-seeds", "1",
                "--algorithms", "acorn", "--quiet", "--enforce-checks"]
        assert main(base) == 0
        assert "0 invariant-check violation(s)" in capsys.readouterr().out

    def test_timeline_scenario_prints_check_verdicts(self, capsys):
        code = main(
            ["timeline", "--scenario", "atrium", "--hours", "0.2",
             "--enforce-checks"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Invariant checks (atrium)" in output
        assert "has_hidden_terminals()" in output
        assert "3/3 passed" in output

    def test_timeline_enforce_checks_exits_1_on_violation(
        self, failing_scenario, capsys
    ):
        code = main(
            ["timeline", "--scenario", failing_scenario, "--hours", "0.1",
             "--enforce-checks"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_timeline_violation_without_enforce_still_passes(
        self, failing_scenario, capsys
    ):
        code = main(
            ["timeline", "--scenario", failing_scenario, "--hours", "0.1"]
        )
        assert code == 0
        assert "FAIL" in capsys.readouterr().out


class TestProfiling:
    """The --profile flags and the journal-mode trace subcommand."""

    def test_scenario_profile_prints_trace_report(self, capsys):
        assert main(["scenario", "topology1", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "Profile of scenario topology1" in output
        assert "controller.configure" in output
        assert "alloc.evaluations" in output

    def _profiled_sweep(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep", "--scenario", "topology1", "--n-seeds", "2",
                "--algorithms", "acorn", "--quiet", "--profile",
                "--out", str(journal),
            ]
        )
        assert code == 0
        return journal, capsys.readouterr().out

    def test_sweep_profile_prints_merged_report(self, tmp_path, capsys):
        _, output = self._profiled_sweep(tmp_path, capsys)
        assert "Sweep profile" in output
        assert "fleet.jobs" in output
        assert "alloc.evaluations" in output

    def test_trace_renders_profiled_journal(self, tmp_path, capsys):
        journal, _ = self._profiled_sweep(tmp_path, capsys)
        assert main(["trace", str(journal)]) == 0
        output = capsys.readouterr().out
        assert f"Trace of {journal}" in output
        assert "controller.configure" in output
        assert "fleet.jobs.ok" in output

    def test_trace_journal_json_format(self, tmp_path, capsys):
        import json

        journal, _ = self._profiled_sweep(tmp_path, capsys)
        assert main(["trace", str(journal), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["fleet.jobs.ok"] == 2
        assert payload["spans"]

    def test_trace_missing_journal_exits_2(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert capsys.readouterr().err.startswith("error: ")


class TestBenchMissingBaseline:
    """The shared missing-baseline protocol: message + exit 2."""

    @staticmethod
    def _run(script, *extra):
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).parent.parent
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        return subprocess.run(
            [sys.executable, str(repo / "benchmarks" / script), "--check", *extra],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_bench_allocator_check_without_baseline_exits_2(self, tmp_path):
        completed = self._run(
            "bench_allocator.py", "--output", str(tmp_path / "none.json")
        )
        assert completed.returncode == 2
        assert "no baseline at" in completed.stderr
        assert "run without --check first" in completed.stderr

    def test_bench_obs_check_without_reference_exits_2(self, tmp_path):
        completed = self._run(
            "bench_obs.py", "--reference", str(tmp_path / "none.json")
        )
        assert completed.returncode == 2
        assert "no baseline at" in completed.stderr


class TestBenchFloorMessages:
    """A failed acceptance floor must name WHICH engine ratio missed."""

    @staticmethod
    def _bench_allocator():
        import pathlib
        import sys

        bench_dir = str(pathlib.Path(__file__).parent.parent / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        import bench_allocator

        return bench_allocator

    def test_floor_failure_message_names_the_ratio(self):
        self._bench_allocator()  # puts benchmarks/ on sys.path
        from _shared import floor_failure_message

        message = floor_failure_message(
            "(24 APs, 60 clients)", "batched/compiled", 4.2, 5.0
        )
        assert message == (
            "(24 APs, 60 clients): batched/compiled speedup 4.20x "
            "is under the 5x acceptance floor"
        )

    def test_check_names_every_failed_floor(self):
        bench = self._bench_allocator()
        bad_row = {
            "n_aps": 24,
            "n_clients": 60,
            "evaluations": 100,
            "speedup": 4.0,
            "speedup_vs_delta": 2.0,
            "speedup_vs_compiled": 3.0,
        }
        failures = bench.check_against_baseline(
            {"sizes": [bad_row]}, {"sizes": []}
        )
        named = [f.split(": ")[1].split(" speedup")[0] for f in failures]
        assert named == ["full/delta", "compiled/delta", "batched/compiled"]
        for failure in failures:
            assert "(24 APs, 60 clients)" in failure
            assert "acceptance floor" in failure

    def test_engine_only_rung_skips_the_full_floor(self):
        bench = self._bench_allocator()
        large_row = {
            "n_aps": 100,
            "n_clients": 500,
            "evaluations": 1000,
            "speedup_vs_delta": 6.0,
            "speedup_vs_compiled": 7.0,
        }
        assert (
            bench.check_against_baseline(
                {"sizes": [large_row]}, {"sizes": []}
            )
            == []
        )
