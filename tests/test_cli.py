"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scenario_choices(self):
        args = build_parser().parse_args(["scenario", "topology1"])
        assert args.name == "topology1"
        assert args.traffic == "udp"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nosuch"])

    def test_mobility_defaults(self):
        args = build_parser().parse_args(["mobility"])
        assert args.direction == "away"
        assert args.duration == 50.0


class TestCommands:
    def test_scenario_topology1(self, capsys):
        assert main(["scenario", "topology1"]) == 0
        output = capsys.readouterr().out
        assert "AP1" in output
        assert "TOTAL" in output
        assert "ACORN" in output

    def test_scenario_dense_tcp(self, capsys):
        assert main(["scenario", "dense", "--traffic", "tcp"]) == 0
        output = capsys.readouterr().out
        assert "TCP" in output

    def test_scenario_random(self, capsys):
        assert main(["scenario", "random", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_mobility_away(self, capsys):
        assert main(["mobility", "--direction", "away", "--duration", "30"]) == 0
        output = capsys.readouterr().out
        assert "fixed 40 MHz" in output

    def test_mobility_toward(self, capsys):
        assert main(["mobility", "--direction", "toward", "--duration", "30"]) == 0
        output = capsys.readouterr().out
        assert "fixed 20 MHz" in output

    def test_transitions(self, capsys):
        assert main(["transitions"]) == 0
        output = capsys.readouterr().out
        assert "QPSK 3/4" in output
        assert "64QAM 5/6" in output

    def test_trace(self, capsys):
        assert main(["trace", "--sessions", "5000", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "median (min)" in output
        assert "recommended T" in output

    def test_scenario_office(self, capsys):
        assert main(["scenario", "office"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_scenario_with_refine(self, capsys):
        assert main(["scenario", "topology1", "--refine"]) == 0
        output = capsys.readouterr().out
        assert "TOTAL" in output

    def test_longrun(self, capsys):
        assert (
            main(["longrun", "--hours", "0.5", "--period-min", "10"]) == 0
        )
        output = capsys.readouterr().out
        assert "mean throughput" in output
        assert "re-allocations" in output

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "transitions"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "QPSK" in completed.stdout
