"""Tests for the association-refinement local search."""

import pytest

from repro import Acorn
from repro.core.refinement import refine_associations
from repro.errors import AssociationError
from repro.net import Channel, ChannelPlan, ThroughputModel, build_interference_graph
from repro.net.topology import Network


def basin_network() -> Network:
    """The pathological shape: clients poor to one AP, good to another.

    A sequential Eq. 4 walk can group them on the wrong side; the
    refinement must dig them out.
    """
    network = Network()
    network.add_ap("near")
    network.add_ap("far")
    for index in range(4):
        client_id = f"u{index}"
        network.add_client(client_id)
        network.set_link_snr("near", client_id, 22.0 + index)
        network.set_link_snr("far", client_id, 2.0)
        # Deliberately mis-associate everyone with the far AP.
        network.associate(client_id, "far")
    network.set_explicit_conflicts([])
    network.set_channel("near", Channel(36, 40))
    network.set_channel("far", Channel(44))
    return network


class TestRefinement:
    def test_escapes_bad_basin(self, model):
        network = basin_network()
        graph = build_interference_graph(network)
        before = model.aggregate_mbps(network, graph)
        result = refine_associations(network, graph, model)
        assert result.aggregate_mbps > before * 2
        assert result.n_moves > 0

    def test_moves_applied_to_network(self, model):
        network = basin_network()
        graph = build_interference_graph(network)
        refine_associations(network, graph, model)
        # The strong-to-near clients must have moved off the far AP.
        assert any(ap == "near" for ap in network.associations.values())

    def test_apply_false_leaves_network_untouched(self, model):
        network = basin_network()
        graph = build_interference_graph(network)
        before = dict(network.associations)
        result = refine_associations(network, graph, model, apply=False)
        assert network.associations == before
        assert result.n_moves > 0

    def test_never_degrades(self, model):
        """On an already-good configuration, refinement is a no-op or
        an improvement — never a loss."""
        network = basin_network()
        graph = build_interference_graph(network)
        first = refine_associations(network, graph, model)
        second = refine_associations(network, graph, model)
        assert second.aggregate_mbps >= first.aggregate_mbps - 1e-9
        assert second.n_moves == 0  # converged: nothing left to move

    def test_respects_admission_floor(self, model):
        """A client whose only alternative is below the serviceability
        floor stays put."""
        network = basin_network()
        network.add_client("edge")
        network.set_link_snr("far", "edge", 10.0)
        network.set_link_snr("near", "edge", -4.0)  # below the floor
        network.associate("edge", "far")
        graph = build_interference_graph(network)
        refine_associations(network, graph, model)
        assert network.associations["edge"] == "far"

    def test_invalid_rounds_rejected(self, model):
        network = basin_network()
        graph = build_interference_graph(network)
        with pytest.raises(AssociationError):
            refine_associations(network, graph, model, max_rounds=0)

    def test_move_log_consistent(self, model):
        network = basin_network()
        graph = build_interference_graph(network)
        result = refine_associations(network, graph, model)
        for client_id, from_ap, to_ap in result.moves:
            assert from_ap != to_ap
            assert client_id in network.client_ids


class TestConfigureWithRefinement:
    def test_refine_flag_never_hurts(self):
        """configure(refine=True) matches or beats the plain pipeline
        on the office-floor basin from EXPERIMENTS.md."""
        from repro.sim.buildings import FloorPlan, office_floor

        floor = dict(
            rooms_x=10,
            rooms_y=3,
            clients_per_room=1,
            n_aps=2,
            seed=4,
            plan=FloorPlan(wall_loss_db=12.0),
        )
        plain_scenario = office_floor(**floor)
        plain = Acorn(plain_scenario.network, plain_scenario.plan, seed=7)
        plain_total = plain.configure(plain_scenario.client_order).total_mbps

        refined_scenario = office_floor(**floor)
        refined = Acorn(refined_scenario.network, refined_scenario.plan, seed=7)
        refined_total = refined.configure(
            refined_scenario.client_order, refine=True
        ).total_mbps
        assert refined_total > plain_total * 1.3

    def test_refine_beats_baseline_on_basin(self):
        from repro.baselines import KauffmannController
        from repro.sim.buildings import FloorPlan, office_floor

        floor = dict(
            rooms_x=10,
            rooms_y=3,
            clients_per_room=1,
            n_aps=2,
            seed=4,
            plan=FloorPlan(wall_loss_db=12.0),
        )
        acorn_scenario = office_floor(**floor)
        acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
        acorn_total = acorn.configure(
            acorn_scenario.client_order, refine=True
        ).total_mbps
        baseline_scenario = office_floor(**floor)
        baseline_total = (
            KauffmannController(baseline_scenario.network, baseline_scenario.plan)
            .configure(baseline_scenario.client_order)
            .total_mbps
        )
        assert acorn_total > baseline_total

    def test_refine_noop_on_paper_topologies(self):
        """On Topology 1 the paper pipeline is already optimal; the
        refinement changes nothing."""
        from repro.sim.scenario import topology1

        plain_scenario = topology1()
        plain = Acorn(plain_scenario.network, plain_scenario.plan, seed=7)
        plain_total = plain.configure(plain_scenario.client_order).total_mbps
        refined_scenario = topology1()
        refined = Acorn(refined_scenario.network, refined_scenario.plan, seed=7)
        refined_total = refined.configure(
            refined_scenario.client_order, refine=True
        ).total_mbps
        assert refined_total == pytest.approx(plain_total, rel=1e-6)
