"""The asyncio serving front-end (``repro.service``).

Determinism is the headline contract: the same request script against
the same seed must produce byte-identical responses (latency stamps
excluded), which is what the ``service-smoke`` CI job enforces by
diffing two self-test fingerprints. Below that: shard routing, beacon
batching under one lock/span per tick, admit/depart consistency
(rollback on rejection), and the error surface.
"""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.net import ChannelPlan, ThroughputModel
from repro.obs import Tracer, activate
from repro.service import (
    AcornService,
    loop_clock,
    response_fingerprint,
    run_self_test,
    serve_tcp,
)
from repro.service.server import self_test_network


def small_service(n_aps=6, n_clients=8, seed=3):
    network, arrival_lines = self_test_network(n_aps, n_clients, seed)
    arrivals = [json.loads(line) for line in arrival_lines]
    service = AcornService(
        network, ChannelPlan(), ThroughputModel(), seed=seed
    )
    return service, arrivals


class TestDeterminism:
    def test_self_test_fingerprint_replays_bit_identically(self):
        first, digest_one = run_self_test(n_aps=6, n_clients=8, seed=3)
        second, digest_two = run_self_test(n_aps=6, n_clients=8, seed=3)
        assert digest_one == digest_two
        assert [r.get("op") for r in first] == [r.get("op") for r in second]

    def test_fingerprint_ignores_latency_only(self):
        base = {"op": "status", "ok": True, "latency_s": 0.001}
        slower = dict(base, latency_s=9.9)
        different = dict(base, ok=False)
        assert response_fingerprint([base]) == response_fingerprint([slower])
        assert response_fingerprint([base]) != response_fingerprint(
            [different]
        )

    def test_fingerprint_is_order_sensitive(self):
        a = {"op": "admit", "ok": True}
        b = {"op": "depart", "ok": True}
        assert response_fingerprint([a, b]) != response_fingerprint([b, a])


class TestRequests:
    def test_admit_routes_to_a_shard_and_is_idempotent(self):
        service, arrivals = small_service()

        async def script():
            started = await service.start()
            first = await service.admit(
                arrivals[0]["client"], position=tuple(arrivals[0]["position"])
            )
            again = await service.admit(arrivals[0]["client"])
            await service.stop()
            return started, first, again

        started, first, again = asyncio.run(script())
        assert started["ok"] and started["n_shards"] >= 1
        assert first["ok"]
        assert str(first["shard"]) in started["shards"] or first[
            "shard"
        ] in range(started["n_shards"] + 10)
        assert again["ok"] and again["already"]
        assert again["ap"] == first["ap"]

    def test_admit_unknown_without_position_fails_cleanly(self):
        service, _ = small_service()

        async def script():
            await service.start()
            response = await service.admit("stranger")
            await service.stop()
            return response

        response = asyncio.run(script())
        assert not response["ok"]
        assert "position" in response["reason"]

    def test_rejected_admission_rolls_the_topology_back(self):
        service, _ = small_service()

        async def script():
            await service.start()
            # A client too far from every AP has no candidates: the
            # admission must fail AND leave no trace in the topology.
            response = await service.admit("edge", position=(1e6, 1e6))
            await service.stop()
            return response

        response = asyncio.run(script())
        assert not response["ok"]
        assert "edge" not in service.network.client_ids
        assert "edge" not in service.network.associations

    def test_depart_reports_invalidated_shards(self):
        service, arrivals = small_service()

        async def script():
            await service.start()
            admit = await service.admit(
                arrivals[0]["client"], position=tuple(arrivals[0]["position"])
            )
            depart = await service.depart(arrivals[0]["client"])
            missing = await service.depart("nobody")
            await service.stop()
            return admit, depart, missing

        admit, depart, missing = asyncio.run(script())
        assert admit["ok"] and depart["ok"]
        assert isinstance(depart["invalidated_shards"], list)
        assert not missing["ok"]

    def test_reconfigure_all_shards_and_status(self):
        service, arrivals = small_service()

        async def script():
            await service.start()
            for arrival in arrivals:
                await service.admit(
                    arrival["client"], position=tuple(arrival["position"])
                )
            reconfigured = await service.reconfigure(warm=True)
            status = await service.status()
            await service.stop()
            return reconfigured, status

        reconfigured, status = asyncio.run(script())
        assert reconfigured["ok"]
        assert len(reconfigured["shards"]) == status["n_shards"]
        assert all(shard["ok"] for shard in reconfigured["shards"])
        assert status["total_mbps"] > 0
        assert status["n_associated"] >= 1

    def test_warm_reconfigure_spends_fewer_evaluations_than_cold(self):
        service, arrivals = small_service()

        async def script():
            await service.start()
            for arrival in arrivals:
                await service.admit(
                    arrival["client"], position=tuple(arrival["position"])
                )
            cold = await service.reconfigure(warm=False)
            warm = await service.reconfigure(warm=True)
            await service.stop()
            return cold, warm

        cold, warm = asyncio.run(script())
        assert warm["evaluations"] < cold["evaluations"]
        assert all(shard["warm"] for shard in warm["shards"])
        assert not any(shard["warm"] for shard in cold["shards"])


class TestBeaconBatching:
    def test_same_tick_beacons_drain_as_one_batch_per_shard(self):
        service, arrivals = small_service()
        tracer = Tracer()

        async def script():
            await service.start()
            admitted = []
            for arrival in arrivals:
                response = await service.admit(
                    arrival["client"], position=tuple(arrival["position"])
                )
                if response["ok"]:
                    admitted.append(response["client"])
            # Shard ids at *beacon* time: admissions add footnote-5
            # edges, so admit-time shards may since have merged.
            shards = {
                service.acorn.shard_of(service.network.associations[client])
                for client in admitted
            }
            responses = await asyncio.gather(
                *(service.beacon(client) for client in admitted)
            )
            await service.stop()
            return admitted, shards, responses

        with activate(tracer):
            admitted, shards, responses = asyncio.run(script())
        assert admitted, "no clients admitted; scenario too sparse"
        assert all(r["ok"] for r in responses)
        batches = tracer.metrics.counter("service.beacon_batches").value
        assert batches == len(shards)
        assert batches <= len(responses)

    def test_unassociated_beacon_fails_without_batching(self):
        service, _ = small_service()

        async def script():
            await service.start()
            response = await service.beacon("nobody")
            await service.stop()
            return response

        response = asyncio.run(script())
        assert not response["ok"]


class TestLifecycleAndErrors:
    def test_requests_before_start_are_refused(self):
        service, _ = small_service()

        async def script():
            with pytest.raises(ServiceError):
                await service.status()

        asyncio.run(script())

    def test_double_start_is_refused(self):
        service, _ = small_service()

        async def script():
            await service.start()
            with pytest.raises(ServiceError):
                await service.start()
            await service.stop()

        asyncio.run(script())

    def test_unknown_shard_reconfigure_raises(self):
        service, _ = small_service()

        async def script():
            await service.start()
            with pytest.raises(ServiceError, match="unknown shard"):
                await service.reconfigure(shard=4096)
            await service.stop()

        asyncio.run(script())

    def test_loop_clock_requires_a_running_loop(self):
        with pytest.raises(RuntimeError):
            loop_clock()()

    def test_requests_served_counts_every_response(self):
        service, arrivals = small_service()

        async def script():
            await service.start()
            await service.admit(
                arrivals[0]["client"], position=tuple(arrivals[0]["position"])
            )
            await service.status()
            await service.stop()

        asyncio.run(script())
        assert service.requests_served == 2  # admit + status (not start)


class TestTcpServer:
    def test_json_lines_round_trip_and_error_surface(self):
        service, arrivals = small_service()

        async def script():
            await service.start()
            server = await serve_tcp(service)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def ask(payload):
                writer.write(payload if isinstance(payload, bytes)
                             else (json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            admit = await ask({
                "op": "admit",
                "client": arrivals[0]["client"],
                "position": arrivals[0]["position"],
            })
            status = await ask({"op": "status"})
            unknown = await ask({"op": "warp-speed"})
            malformed = await ask(b"this is not json\n")
            writer.close()
            server.close()
            await server.wait_closed()
            await service.stop()
            return admit, status, unknown, malformed

        admit, status, unknown, malformed = asyncio.run(script())
        assert admit["ok"]
        assert status["ok"] and status["op"] == "status"
        assert not unknown["ok"] and "unknown op" in unknown["error"]
        assert not malformed["ok"]
