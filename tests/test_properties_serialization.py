"""Property-based round-trip tests for network serialisation.

Hypothesis builds arbitrary (small) networks — devices, pinned links,
conflicts, associations, channel assignments — and the JSON round trip
must preserve them exactly, including the evaluated throughput.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.net import (
    Channel,
    ChannelPlan,
    Network,
    ThroughputModel,
    build_interference_graph,
)
from repro.net.serialization import network_from_dict, network_to_dict

_PALETTE = ChannelPlan().all_channels()

MODEL = ThroughputModel()


@st.composite
def networks(draw):
    """A random small, internally consistent network."""
    n_aps = draw(st.integers(min_value=1, max_value=4))
    n_clients = draw(st.integers(min_value=0, max_value=6))
    network = Network()
    ap_ids = [f"ap{i}" for i in range(n_aps)]
    for ap_id in ap_ids:
        has_position = draw(st.booleans())
        position = None
        if has_position:
            position = (
                draw(st.floats(min_value=0, max_value=100)),
                draw(st.floats(min_value=0, max_value=100)),
            )
        network.add_ap(ap_id, position=position)
    for index in range(n_clients):
        client_id = f"u{index}"
        network.add_client(client_id)
        # Pin a link to a random subset of APs.
        n_links = draw(st.integers(min_value=0, max_value=n_aps))
        for ap_id in ap_ids[:n_links]:
            snr = draw(st.floats(min_value=-10.0, max_value=40.0))
            network.set_link_snr(ap_id, client_id, snr)
        if n_links and draw(st.booleans()):
            network.associate(client_id, ap_ids[0])
    if draw(st.booleans()):
        edges = []
        for i in range(n_aps):
            for j in range(i + 1, n_aps):
                if draw(st.booleans()):
                    edges.append((ap_ids[i], ap_ids[j]))
        network.set_explicit_conflicts(edges)
    for ap_id in ap_ids:
        if draw(st.booleans()):
            network.set_channel(
                ap_id, _PALETTE[draw(st.integers(0, len(_PALETTE) - 1))]
            )
    return network


class TestRoundtripProperties:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(networks())
    def test_structure_preserved(self, network):
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.ap_ids == network.ap_ids
        assert rebuilt.client_ids == network.client_ids
        assert rebuilt.associations == network.associations
        assert rebuilt.channel_assignment == network.channel_assignment
        assert rebuilt.explicit_conflicts == network.explicit_conflicts

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(networks())
    def test_evaluation_preserved(self, network):
        if network.explicit_conflicts is None:
            # Geometry-based interference needs all positions; restrict
            # the evaluated property to explicitly-declared networks.
            return
        rebuilt = network_from_dict(network_to_dict(network))
        original_value = MODEL.aggregate_mbps(
            network, build_interference_graph(network)
        )
        rebuilt_value = MODEL.aggregate_mbps(
            rebuilt, build_interference_graph(rebuilt)
        )
        assert rebuilt_value == pytest.approx(original_value)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(networks())
    def test_double_roundtrip_is_stable(self, network):
        once = network_to_dict(network)
        twice = network_to_dict(network_from_dict(once))
        assert once == twice
