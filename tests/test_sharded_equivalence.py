"""Differential harness: sharded allocation equals the monolithic scan.

The tentpole contract: running Algorithm 2 shard-major over a
:class:`~repro.graph.components.ComponentDecomposition` commits the
same channels as the monolithic scan — assignment, aggregate and round
count bit-identical, and each round performs the same *set* of
switches. Only the interleaving of commits within a round (history
order) and the evaluation count may differ; fewer evaluations is the
point of sharding, so the harness additionally asserts the sharded
scan never spends more.

Checked over every registered scenario plus a seeded sweep of random
enterprises, under both stock models and every engine mode, and on a
genuinely multi-shard sparse campus. CI runs this file as a dedicated
``sharded-equivalence`` step.
"""

import random

import numpy as np
import pytest

from repro.core.allocation import allocate_channels, random_assignment
from repro.core.controller import Acorn
from repro.errors import AllocationError
from repro.graph import ComponentDecomposition
from repro.net import (
    ChannelPlan,
    CompiledNetwork,
    ThroughputModel,
    WeightedThroughputModel,
    build_interference_graph,
)
from repro.sim.scenario import SCENARIOS, random_enterprise
from repro.sim.timeline import campus_network

RANDOM_SEEDS = tuple(range(8))
ENGINE_MODES = ("delta", "compiled", "batched")


def make_model(kind):
    return ThroughputModel() if kind == "base" else WeightedThroughputModel()


def registered(name):
    scenario = SCENARIOS[name]()
    network = scenario.network
    for client_id in network.client_ids:
        candidates = network.candidate_aps(client_id)
        if candidates:
            network.associate(client_id, candidates[0])
    return network, build_interference_graph(network), scenario.plan


def random_case(seed, n_aps=5, n_clients=12):
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=seed
    )
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    return network, build_interference_graph(network), scenario.plan


def _associate_best(network, client_id):
    candidates = network.candidate_aps(client_id)
    if candidates:
        best = max(
            candidates,
            key=lambda ap: network.link_budget(ap, client_id).snr20_db,
        )
        network.associate(client_id, best)


def sparse_campus(n_aps=24, n_clients=36, seed=5):
    """A 150 m-spaced campus whose graph stays genuinely fragmented.

    Clients cluster near their home AP (singleton shards with load);
    a handful of bridge clients at AP midpoints fuse chosen pairs via
    footnote-5 carrier sense into multi-AP shards — a mix of shard
    sizes rather than one blob or all singletons.
    """
    network = campus_network(n_aps, spacing_m=150.0, seed=seed)
    rng = np.random.default_rng(seed + 1)
    ap_ids = network.ap_ids

    def midpoint(a, b):
        pa, pb = network.ap(a).position, network.ap(b).position
        return ((pa[0] + pb[0]) / 2, (pa[1] + pb[1]) / 2)

    bridges = [
        ("ap0", "ap1"), ("ap1", "ap2"), ("ap5", "ap6"),
        ("ap10", "ap11"), ("ap10", "ap15"),
    ]
    for index, (a, b) in enumerate(bridges):
        client_id = f"b{index}"
        network.add_client(client_id, midpoint(a, b))
        _associate_best(network, client_id)
    for index in range(n_clients):
        home = network.ap(ap_ids[index % len(ap_ids)])
        dx, dy = rng.uniform(-25.0, 25.0, size=2)
        client_id = f"c{index}"
        network.add_client(
            client_id,
            (float(home.position[0] + dx), float(home.position[1] + dy)),
        )
        _associate_best(network, client_id)
    return network, build_interference_graph(network), ChannelPlan()


ALL_CASES = [("scenario", name) for name in SCENARIOS] + [
    ("random", seed) for seed in RANDOM_SEEDS
]


def build_case(kind, key):
    return registered(key) if kind == "scenario" else random_case(key)


def round_switch_sets(history):
    """Per-round sets of (ap, channel) switches, keyed by round index."""
    rounds = {}
    for event in history:
        rounds.setdefault(event.round_index, set()).add(
            (event.ap_id, event.channel)
        )
    return rounds


def assert_shard_equivalent(sharded, monolithic):
    """The sharded-scan equality contract (see module docstring)."""
    assert sharded.assignment == monolithic.assignment
    assert sharded.aggregate_mbps == monolithic.aggregate_mbps
    assert sharded.rounds == monolithic.rounds
    assert round_switch_sets(sharded.history) == round_switch_sets(
        monolithic.history
    )
    assert sharded.total_evaluations <= monolithic.total_evaluations


class TestShardedAllocationEquivalence:
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_decomposition_matches_monolithic(self, kind, key, mode):
        network, graph, plan = build_case(kind, key)
        model = ThroughputModel()
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        kwargs = dict(rng=7, restarts=2, engine_mode=mode)
        monolithic = allocate_channels(network, graph, plan, model, **kwargs)
        sharded = allocate_channels(
            network, graph, plan, model,
            decomposition=decomposition, **kwargs,
        )
        assert_shard_equivalent(sharded, monolithic)

    @pytest.mark.parametrize("model_kind", ("base", "weighted"))
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_multi_shard_campus_matches_monolithic(self, mode, model_kind):
        network, graph, plan = sparse_campus()
        model = make_model(model_kind)
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        assert decomposition.n_shards > 1  # the case must exercise sharding
        kwargs = dict(rng=3, engine_mode=mode)
        monolithic = allocate_channels(network, graph, plan, model, **kwargs)
        sharded = allocate_channels(
            network, graph, plan, model,
            decomposition=decomposition, **kwargs,
        )
        assert_shard_equivalent(sharded, monolithic)
        # With real fragmentation the shard-major scan must be cheaper,
        # not merely no worse: every inner iteration skips the other
        # shards' remaining APs.
        assert sharded.total_evaluations < monolithic.total_evaluations

    def test_sharded_fingerprints_match_across_seeds(self):
        """Acceptance gate: fingerprint equality over scenarios + seeds."""
        import hashlib
        import json

        for kind, key in ALL_CASES:
            network, graph, plan = build_case(kind, key)
            decomposition = ComponentDecomposition.from_graph(
                graph, ap_ids=network.ap_ids
            )
            digests = []
            for variant in ("monolithic", "sharded"):
                result = allocate_channels(
                    network, graph, plan, ThroughputModel(),
                    rng=11,
                    decomposition=(
                        decomposition if variant == "sharded" else None
                    ),
                )
                payload = json.dumps(
                    {
                        "assignment": {
                            ap: str(ch) for ap, ch in result.assignment.items()
                        },
                        "aggregate": result.aggregate_mbps.hex(),
                        "rounds": result.rounds,
                    },
                    sort_keys=True,
                )
                digests.append(
                    hashlib.sha256(payload.encode("ascii")).hexdigest()
                )
            assert digests[0] == digests[1], f"case {(kind, key)} diverged"

    def test_scope_and_decomposition_are_mutually_exclusive(self):
        network, graph, plan = registered("office")
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, ThroughputModel(),
                scope=[network.ap_ids[0]], decomposition=decomposition,
            )


class TestScopedAllocation:
    def test_out_of_scope_aps_keep_their_channels(self):
        network, graph, plan = sparse_campus()
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        baseline = random_assignment(network.ap_ids, plan, 13)
        for ap_id, channel in baseline.items():
            network.set_channel(ap_id, channel)
        sid = max(
            decomposition.shard_ids,
            key=lambda s: len(decomposition.members(s)),
        )
        scope = decomposition.members(sid)
        result = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=1, scope=scope
        )
        assert set(result.assignment) == set(network.ap_ids)
        for ap_id in network.ap_ids:
            if ap_id not in scope:
                assert result.assignment[ap_id] == baseline[ap_id]

    def test_scope_rejects_unknown_and_empty(self):
        network, graph, plan = registered("office")
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, ThroughputModel(), scope=["nobody"]
            )
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, ThroughputModel(), scope=[]
            )

    def test_shard_by_shard_sweep_equals_sharded_run(self):
        """Allocating every shard in id order == one decomposition pass.

        Shard-major round-lockstep differs from a strict per-shard sweep
        in general (rounds interleave), so this holds only for the
        single-round regime — seeded here so both converge in one round
        per shard. The weaker always-true property: a full sweep leaves
        every AP with a channel and never touches other shards.
        """
        network, graph, plan = sparse_campus(seed=9)
        decomposition = ComponentDecomposition.from_graph(
            graph, ap_ids=network.ap_ids
        )
        initial = random_assignment(network.ap_ids, plan, 21)
        for ap_id, channel in initial.items():
            network.set_channel(ap_id, channel)
        assignment = dict(initial)
        for sid in decomposition.shard_ids:
            scope = decomposition.members(sid)
            result = allocate_channels(
                network, graph, plan, ThroughputModel(),
                initial=assignment, scope=scope,
            )
            for ap_id in network.ap_ids:
                if ap_id not in scope:
                    assert result.assignment[ap_id] == assignment[ap_id]
            assignment = dict(result.assignment)
        assert set(assignment) == set(network.ap_ids)


class TestShardViews:
    def test_shard_view_slices_are_consistent_with_parent(self):
        network, graph, plan = sparse_campus()
        compiled = CompiledNetwork.compile(network, graph, plan)
        decomposition = compiled.decomposition()
        for sid, members in decomposition.shards():
            view = compiled.shard_view(sid)
            assert view.ap_ids == members
            for local, ap_id in enumerate(view.ap_ids):
                row = compiled.ap_index[ap_id]
                for local_c, client_id in enumerate(view.client_ids):
                    col = compiled.client_index[client_id]
                    assert (
                        view.snr20_db[local, local_c]
                        == compiled.snr20_db[row, col]
                    )
                    assert bool(view.has_link[local, local_c]) == bool(
                        compiled.has_link[row, col]
                    )

    def test_shard_view_rate_tables_match_parent_floats(self):
        network, graph, plan = sparse_campus()
        compiled = CompiledNetwork.compile(network, graph, plan)
        model = ThroughputModel()
        parent = compiled.rate_tables(model)
        decomposition = compiled.decomposition()
        sid = decomposition.shard_ids[0]
        view = compiled.shard_view(sid)
        sliced = view.rate_tables(model)
        for w, table in enumerate(sliced.delay):
            for local, ap_id in enumerate(view.ap_ids):
                row = compiled.ap_index[ap_id]
                for local_c, client_id in enumerate(view.client_ids):
                    col = compiled.client_index[client_id]
                    assert table[local][local_c] == parent.delay[w][row][col]

    def test_shard_views_are_cached_and_fingerprinted(self):
        network, graph, plan = sparse_campus()
        compiled = CompiledNetwork.compile(network, graph, plan)
        sid = compiled.decomposition().shard_ids[0]
        assert compiled.shard_view(sid) is compiled.shard_view(sid)
        assert (
            compiled.shard_view(sid).fingerprint()
            == CompiledNetwork.compile(network, graph, plan)
            .shard_view(sid)
            .fingerprint()
        )


class TestControllerSharded:
    def test_controller_sharded_allocate_matches_plain(self):
        results = []
        for sharded in (False, True):
            network, graph, plan = sparse_campus()
            acorn = Acorn(network, plan, ThroughputModel(), seed=6)
            acorn.assign_initial_channels()
            baseline = dict(network.channel_assignment)
            # Fresh controller per variant, same seed stream: re-seed by
            # rebuilding with identical inputs, then allocate.
            result = acorn.allocate(
                initial=baseline, sharded=sharded, restarts=2
            )
            results.append(
                (dict(result.assignment), result.aggregate_mbps, result.rounds)
            )
        assert results[0] == results[1]

    def test_shard_scoped_allocate_requires_known_shard(self):
        network, graph, plan = sparse_campus()
        acorn = Acorn(network, plan, ThroughputModel(), seed=6)
        with pytest.raises(Exception):
            acorn.allocate(shard=9999)

    def test_shard_and_sharded_are_mutually_exclusive(self):
        network, graph, plan = sparse_campus()
        acorn = Acorn(network, plan, ThroughputModel(), seed=6)
        sid = acorn.decomposition.shard_ids[0]
        with pytest.raises(AllocationError):
            acorn.allocate(shard=sid, sharded=True)
