"""Differential harness for the batched candidate evaluator.

The contract under test: every number the batched path produces — the
candidate totals of a greedy superstep, the batched refinement move
totals, the vectorized contention scans — must equal the scalar
oracles (``trial_index`` / ``trial_move`` / ``contention_load``) with
float ``==``, no tolerance, and the batched allocator / refinement /
baseline drivers built on them must make bit-identical decisions to
the ``delta`` and ``compiled`` engines on every registered scenario
and a seeded sweep of random enterprises, under both stock models.
"""

import random

import numpy as np
import pytest

from repro.core.allocation import allocate_channels, random_assignment
from repro.core.controller import Acorn
from repro.core.refinement import refine_associations
from repro.baselines.kauffmann import kauffmann_allocate
from repro.errors import AllocationError, AssociationError
from repro.net import (
    BatchedEvaluator,
    ChannelPlan,
    CompiledEvaluator,
    CompiledNetwork,
    DeltaEvaluator,
    Network,
    ThroughputModel,
    WeightedThroughputModel,
    build_interference_graph,
)
from repro.net.batch import BatchTables, _dyadic_scale, accumulate_totals
from repro.sim.scenario import SCENARIOS, random_enterprise

RANDOM_SEEDS = tuple(range(12))
MODELS = ("base", "weighted")


def make_model(kind):
    return ThroughputModel() if kind == "base" else WeightedThroughputModel()


def registered(name):
    """A registered scenario with every client associated."""
    scenario = SCENARIOS[name]()
    network = scenario.network
    for client_id in network.client_ids:
        candidates = network.candidate_aps(client_id)
        if candidates:
            network.associate(client_id, candidates[0])
    return network, build_interference_graph(network), scenario.plan


def random_case(seed, n_aps=5, n_clients=12):
    """A random enterprise with deterministic random associations."""
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=seed
    )
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    return network, build_interference_graph(network), scenario.plan


ALL_CASES = [("scenario", name) for name in SCENARIOS] + [
    ("random", seed) for seed in RANDOM_SEEDS
]


def build_case(kind, key):
    return registered(key) if kind == "scenario" else random_case(key)


def batched_setup(network, graph, plan, model, seed=3):
    """A compiled engine plus its batched wrapper over a random start."""
    initial = random_assignment(network.ap_ids, plan, seed)
    compiled = CompiledNetwork.compile(network, graph, plan)
    engine = CompiledEvaluator(compiled, model=model, assignment=initial)
    palette_indices = [engine.intern(c) for c in plan.all_channels()]
    positions = [compiled.ap_index[ap_id] for ap_id in network.ap_ids]
    return engine, BatchedEvaluator(engine), positions, palette_indices


def assert_results_equal(out, ref):
    """Field-by-field bit equality of two AllocationResults."""
    assert out.assignment == ref.assignment
    assert out.aggregate_mbps == ref.aggregate_mbps
    assert out.rounds == ref.rounds
    assert out.evaluations == ref.evaluations
    assert out.total_evaluations == ref.total_evaluations
    assert out.evaluations_per_start == ref.evaluations_per_start
    assert [
        (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
        for e in out.history
    ] == [
        (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
        for e in ref.history
    ]


class TestStepBlockOracle:
    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize(
        ("kind", "key"),
        [("scenario", name) for name in SCENARIOS]
        + [("random", seed) for seed in RANDOM_SEEDS[:4]],
    )
    def test_totals_match_trial_index(self, kind, key, model_kind):
        network, graph, plan = build_case(kind, key)
        model = make_model(model_kind)
        engine, batch, positions, palette = batched_setup(
            network, graph, plan, model
        )
        remaining = list(range(len(positions)))
        block = batch.step_block(positions, remaining, palette)
        totals = accumulate_totals([block])[0]
        width = block.width
        for i, position in enumerate(remaining):
            ap = positions[position]
            for j, channel_index in enumerate(palette):
                flat = i * width + j
                if engine._chan[ap] == channel_index:
                    assert bool(block.skip[flat])
                    continue
                assert not bool(block.skip[flat])
                assert totals[flat] == engine.trial_index(ap, channel_index)

    def test_totals_survive_commits_without_notification(self):
        """The load cache self-validates against out-of-band commits."""
        network, graph, plan = registered("office")
        engine, batch, positions, palette = batched_setup(
            network, graph, plan, ThroughputModel()
        )
        remaining = list(range(len(positions)))
        batch.step_block(positions, remaining, palette)
        engine.commit_index(positions[0], palette[-1])  # no note_commit
        block = batch.step_block(positions, remaining, palette)
        totals = accumulate_totals([block])[0]
        width = block.width
        for i, position in enumerate(remaining):
            ap = positions[position]
            for j, channel_index in enumerate(palette):
                if engine._chan[ap] != channel_index:
                    assert totals[i * width + j] == engine.trial_index(
                        ap, channel_index
                    )

    def test_note_commit_matches_rebuild(self):
        """Incremental load deltas equal a from-scratch rebuild."""
        network, graph, plan = registered("dense")
        engine, batch, positions, palette = batched_setup(
            network, graph, plan, WeightedThroughputModel()
        )
        remaining = list(range(len(positions)))
        batch.step_block(positions, remaining, palette)
        ap = positions[0]
        old = engine._chan[ap]
        engine.commit_index(ap, palette[-1])
        batch.note_commit(ap, old, palette[-1])
        cached = batch._loads_all.copy()
        batch._loads_all = None  # force the from-scratch path
        batch.step_block(positions, remaining, palette)
        assert np.array_equal(batch._loads_all, cached)

    def test_scalar_fallback_matches(self):
        """Non-dyadic weights fall back to per-candidate trials."""
        network, graph, plan = registered("office")
        engine, batch, positions, palette = batched_setup(
            network, graph, plan, ThroughputModel()
        )
        remaining = list(range(len(positions)))
        fast = accumulate_totals(
            [batch.step_block(positions, remaining, palette)]
        )[0]
        batch._scale = None  # pretend the weights were not dyadic
        block = batch.step_block(positions, remaining, palette)
        assert block.matrix is None and block.totals is not None
        slow = accumulate_totals([block])[0]
        keep = ~block.skip
        assert np.array_equal(fast[keep], slow[keep])

    def test_dyadic_scale_detection(self):
        assert _dyadic_scale(np.array([0.0, 1.0])) == 1
        assert _dyadic_scale(np.array([0.5, 0.25])) == 4
        assert _dyadic_scale(np.array([1.0 / 3.0])) is None

    def test_ap_outside_graph_is_rejected(self):
        network, graph, plan = registered("office")
        network.add_ap("loner")
        graph = build_interference_graph(network)
        graph.remove_node("loner")
        compiled = CompiledNetwork.compile(network, graph, plan)
        engine = CompiledEvaluator(
            compiled,
            model=ThroughputModel(),
            assignment=random_assignment(network.ap_ids, plan, 3),
        )
        palette = [engine.intern(c) for c in plan.all_channels()]
        batch = BatchedEvaluator(engine)
        loner = compiled.ap_index["loner"]
        with pytest.raises(AllocationError):
            batch.step_block([loner], [0], palette)

    def test_wrapping_a_delta_engine_is_rejected(self):
        network, graph, plan = registered("office")
        delta = DeltaEvaluator(network, graph, model=ThroughputModel())
        with pytest.raises(AllocationError):
            BatchedEvaluator(delta)


class TestBatchedAllocatorEquivalence:
    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_allocate_channels_bit_identical(self, kind, key, model_kind):
        network, graph, plan = build_case(kind, key)
        model = make_model(model_kind)
        kwargs = dict(rng=7, restarts=2)
        ref = allocate_channels(
            network, graph, plan, model, engine_mode="delta", **kwargs
        )
        out = allocate_channels(
            network, graph, plan, model, engine_mode="batched", **kwargs
        )
        assert_results_equal(out, ref)

    def test_auto_mode_is_batched_for_supported_models(self):
        network, graph, plan = registered("dense")
        auto = allocate_channels(network, graph, plan, ThroughputModel(), rng=1)
        forced = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=1,
            engine_mode="batched",
        )
        assert_results_equal(auto, forced)
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, ThroughputModel(), engine_mode="turbo"
            )

    def test_equal_delta_candidates_keep_scan_order(self):
        """Ties break toward the first candidate scanned, as in scalar."""
        plan = ChannelPlan()
        palette = plan.all_channels()
        network = Network()
        for index in (1, 2):
            network.add_ap(f"ap{index}")
            network.add_client(f"u{index}")
            network.set_link_snr(f"ap{index}", f"u{index}", 20.0)
            network.associate(f"u{index}", f"ap{index}")
        network.set_explicit_conflicts([("ap1", "ap2")])
        graph = build_interference_graph(network)
        initial = {"ap1": palette[0], "ap2": palette[0]}
        results = [
            allocate_channels(
                network, graph, plan, ThroughputModel(),
                initial=initial, engine_mode=mode,
            )
            for mode in ("delta", "batched")
        ]
        assert_results_equal(results[1], results[0])
        # The symmetric topology makes every conflict-free candidate of
        # the first AP tie exactly; prove the tie exists in the batched
        # totals and that the committed winner is the first one scanned.
        compiled = CompiledNetwork.compile(network, graph, plan)
        engine = CompiledEvaluator(
            compiled, model=ThroughputModel(), assignment=initial
        )
        indices = [engine.intern(c) for c in palette]
        positions = [compiled.ap_index[ap] for ap in network.ap_ids]
        block = BatchedEvaluator(engine).step_block(
            positions, [0, 1], indices
        )
        totals = accumulate_totals([block])[0]
        live = totals[~block.skip]
        best = live.max()
        assert int((live == best).sum()) >= 2
        flat = int(np.flatnonzero(~block.skip & (totals == best))[0])
        first = results[1].history[0]
        assert first.ap_id == network.ap_ids[flat // block.width]
        assert first.channel == palette[flat % block.width]

    def test_shared_tables_adopt_the_larger_scale(self):
        tables = BatchTables()
        tables.adopt_scale(1)
        tables.ensure(4, 8)
        assert tables.grid is not None
        tables.adopt_scale(2)
        assert tables.scale == 2 and tables.grid is None
        tables.adopt_scale(1)  # never shrinks
        assert tables.scale == 2


class TestBatchedRefinement:
    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize("seed", RANDOM_SEEDS[:6])
    def test_refinement_bit_identical(self, seed, model_kind):
        model = make_model(model_kind)
        outcomes = []
        for mode in ("delta", "compiled", "batched"):
            network, graph, plan = random_case(seed)
            allocation = allocate_channels(
                network, graph, plan, model, rng=5, engine_mode="delta"
            )
            for ap_id, channel in allocation.assignment.items():
                network.set_channel(ap_id, channel)
            refined = refine_associations(
                network, graph, model, engine_mode=mode
            )
            outcomes.append(
                (
                    refined.associations,
                    refined.aggregate_mbps,
                    refined.moves,
                    refined.evaluations,
                    dict(network.associations),
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_move_totals_match_trial_move(self):
        network, graph, plan = registered("office")
        model = ThroughputModel()
        compiled = CompiledNetwork.compile(network, graph, plan)
        assignment = random_assignment(network.ap_ids, plan, 11)
        engine = CompiledEvaluator(
            compiled,
            model=model,
            assignment=assignment,
            associations=network.associations,
        )
        batch = BatchedEvaluator(engine)
        moves = []
        for client_id, current in engine.associations.items():
            for target in compiled.candidate_aps(client_id, -8.0):
                if target != current:
                    moves.append((client_id, target))
        totals = batch.move_totals(moves)
        for k, (client_id, target) in enumerate(moves):
            assert totals[k] == engine.trial_move(client_id, target)

    def test_invalid_engine_mode_is_rejected(self):
        network, graph, plan = registered("office")
        with pytest.raises(AssociationError):
            refine_associations(
                network, graph, ThroughputModel(), engine_mode="turbo"
            )


class TestBatchedBaselines:
    def test_kauffmann_scans_match_scalar_engine(self):
        for kind, key in (("scenario", "office"), ("random", 2)):
            network, graph, plan = build_case(kind, key)
            batched = kauffmann_allocate(network, graph, plan)
            delta = kauffmann_allocate(
                network,
                graph,
                plan,
                engine=DeltaEvaluator(network, graph, assignment={}),
            )
            assert batched == delta

    @pytest.mark.parametrize("model_kind", MODELS)
    def test_contention_loads_match_oracle(self, model_kind):
        network, graph, plan = registered("office")
        model = make_model(model_kind)
        compiled = CompiledNetwork.compile(network, graph, plan)
        assignment = random_assignment(network.ap_ids, plan, 17)
        engine = CompiledEvaluator(compiled, model=model, assignment=assignment)
        batch = BatchedEvaluator(engine)
        palette = plan.all_channels()
        what_if = random_assignment(network.ap_ids, plan, 19)
        for ap_id in network.ap_ids:
            committed = batch.contention_loads(ap_id, palette)
            hypothetical = batch.contention_loads(
                ap_id, palette, assignment=what_if
            )
            for j, channel in enumerate(palette):
                assert committed[j] == engine.contention_load(ap_id, channel)
                assert hypothetical[j] == engine.contention_load(
                    ap_id, channel, assignment=what_if
                )

    def test_contention_loads_unknown_ap_is_rejected(self):
        network, graph, plan = registered("office")
        compiled = CompiledNetwork.compile(network, graph, plan)
        engine = CompiledEvaluator(compiled, assignment={})
        with pytest.raises(AllocationError):
            BatchedEvaluator(engine).contention_loads(
                "nobody", plan.all_channels()
            )


class TestControllerEngineMode:
    @pytest.mark.parametrize("refine", (False, True))
    def test_configure_bit_identical_across_modes(self, refine):
        scenario = SCENARIOS["office"]()
        reports = []
        for mode in ("delta", "batched"):
            case = SCENARIOS["office"]()
            acorn = Acorn(
                case.network, case.plan, ThroughputModel(),
                seed=9, engine_mode=mode,
            )
            result = acorn.configure(case.client_order, refine=refine)
            reports.append(
                (
                    result.total_mbps,
                    dict(case.network.channel_assignment),
                    dict(case.network.associations),
                    result.allocation.evaluations,
                )
            )
        assert reports[0] == reports[1]
        assert scenario is not None
