"""Tests validating the analytic MAC model against packet simulation.

The load-bearing checks: X = M/ATD, the performance anomaly, and the
M = 1/(|con|+1) access share all *emerge* from the packet-level DCF
simulation within tight tolerances.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mac.airtime import cell_throughput_mbps, client_delay_s, medium_share
from repro.mac.dcf import DEFAULT_TIMINGS
from repro.mac.packetsim import (
    CellSimResult,
    SimulatedLink,
    simulate_cell,
    simulate_contending_aps,
)

PACKET_BYTES = 1500
PACKET_BITS = 8 * PACKET_BYTES


def link_for(rate_mbps: float, per: float = 0.0, client_id: str = "u") -> SimulatedLink:
    """A simulated link with the analytic model's per-attempt airtime."""
    airtime = DEFAULT_TIMINGS.packet_airtime_s(PACKET_BITS, rate_mbps)
    return SimulatedLink(client_id=client_id, airtime_s=airtime, per=per)


class TestSimulatedLink:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedLink("u", airtime_s=0.0)
        with pytest.raises(ConfigurationError):
            SimulatedLink("u", airtime_s=1e-3, per=1.5)


class TestIsolatedCell:
    def test_matches_analytic_lossless(self):
        """Simulated cell throughput == K*M/ATD for loss-free links."""
        rates = [130.0, 65.0, 13.0]
        links = [link_for(rate, client_id=f"u{i}") for i, rate in enumerate(rates)]
        sim = simulate_cell(links, duration_s=30.0, rng=1)
        analytic = cell_throughput_mbps(
            [client_delay_s(rate, 0.0) for rate in rates]
        )
        assert sim.cell_throughput_mbps == pytest.approx(analytic, rel=0.02)

    def test_matches_analytic_with_losses(self):
        """Retransmissions: expected airtime per delivery is t/(1-p)."""
        links = [
            link_for(65.0, per=0.3, client_id="lossy"),
            link_for(130.0, per=0.0, client_id="clean"),
        ]
        sim = simulate_cell(links, duration_s=60.0, rng=2)
        analytic = cell_throughput_mbps(
            [client_delay_s(65.0, 0.3), client_delay_s(130.0, 0.0)]
        )
        assert sim.cell_throughput_mbps == pytest.approx(analytic, rel=0.05)

    def test_performance_anomaly_emerges(self):
        """Per-packet fairness: equal delivered packets, so the fast
        client's throughput is dragged to the slow client's level."""
        links = [
            link_for(130.0, client_id="fast"),
            link_for(6.5, client_id="slow"),
        ]
        sim = simulate_cell(links, duration_s=30.0, rng=3)
        fast = sim.delivered["fast"]
        slow = sim.delivered["slow"]
        assert fast == pytest.approx(slow, abs=1)
        assert sim.client_throughput_mbps("fast") == pytest.approx(
            sim.client_throughput_mbps("slow"), rel=0.05
        )

    def test_anomaly_quantified_against_solo(self):
        """Adding one slow client costs the fast client most of its
        throughput — the Heusse et al. effect ACORN guards against."""
        solo = simulate_cell([link_for(130.0, client_id="fast")], duration_s=30.0, rng=4)
        mixed = simulate_cell(
            [link_for(130.0, client_id="fast"), link_for(6.5, client_id="slow")],
            duration_s=30.0,
            rng=4,
        )
        assert mixed.client_throughput_mbps("fast") < 0.2 * solo.client_throughput_mbps(
            "fast"
        )

    def test_utilisation_saturated(self):
        sim = simulate_cell([link_for(65.0)], duration_s=10.0, rng=5)
        assert sim.utilisation > 0.99

    def test_retry_limit_drops_packets(self):
        links = [SimulatedLink("dead", airtime_s=1e-3, per=0.95)]
        sim = simulate_cell(links, duration_s=5.0, retry_limit=3, rng=6)
        assert sim.dropped["dead"] > 0
        assert sim.delivered["dead"] < sim.dropped["dead"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_cell([], duration_s=1.0)
        with pytest.raises(ConfigurationError):
            simulate_cell([link_for(65.0)], duration_s=0.0)
        with pytest.raises(ConfigurationError):
            simulate_cell(
                [link_for(65.0, client_id="a"), link_for(65.0, client_id="a")]
            )

    def test_deterministic_with_seed(self):
        links = [link_for(65.0, per=0.2)]
        first = simulate_cell(links, duration_s=5.0, rng=7)
        second = simulate_cell(links, duration_s=5.0, rng=7)
        assert first.delivered == second.delivered


class TestContendingAps:
    def test_access_share_is_one_over_n(self):
        """Two symmetric contenders each get M = 1/2 of the medium."""
        cells = {
            "a": [link_for(65.0, client_id="ua")],
            "b": [link_for(65.0, client_id="ub")],
        }
        results = simulate_contending_aps(cells, duration_s=60.0, rng=8)
        share_a = results["a"].utilisation
        share_b = results["b"].utilisation
        assert share_a == pytest.approx(medium_share(1), abs=0.03)
        assert share_b == pytest.approx(medium_share(1), abs=0.03)

    def test_three_contenders(self):
        cells = {
            name: [link_for(65.0, client_id=f"u{name}")]
            for name in ("a", "b", "c")
        }
        results = simulate_contending_aps(cells, duration_s=60.0, rng=9)
        for result in results.values():
            assert result.utilisation == pytest.approx(1 / 3, abs=0.03)

    def test_matches_analytic_contended_throughput_symmetric(self):
        """Simulated cell throughput == K*M/ATD with M = 1/2 when the
        contenders are symmetric — the regime where the paper says the
        M estimate "has very high accuracy"."""
        cells = {
            "a": [link_for(65.0, client_id="fast")],
            "b": [link_for(65.0, client_id="medium")],
        }
        results = simulate_contending_aps(cells, duration_s=120.0, rng=10)
        analytic = cell_throughput_mbps(
            [client_delay_s(65.0, 0.0)], m_share=0.5
        )
        for ap_id in ("a", "b"):
            assert results[ap_id].cell_throughput_mbps == pytest.approx(
                analytic, rel=0.06
            )

    def test_anomaly_operates_across_cells(self):
        """With asymmetric airtimes, per-transmission fairness equalises
        *packet* rates across APs, so the slow cell grabs more airtime —
        the inter-cell face of the performance anomaly, and the reason
        M = 1/(|con|+1) is an estimate rather than an identity."""
        cells = {
            "a": [link_for(130.0, client_id="fast")],
            "b": [link_for(13.0, client_id="slow")],
        }
        results = simulate_contending_aps(cells, duration_s=120.0, rng=10)
        packets_a = sum(results["a"].delivered.values())
        packets_b = sum(results["b"].delivered.values())
        assert packets_a == pytest.approx(packets_b, rel=0.05)
        assert results["b"].utilisation > 2 * results["a"].utilisation

    def test_round_robin_within_cells(self):
        cells = {
            "a": [
                link_for(130.0, client_id="u1"),
                link_for(130.0, client_id="u2"),
            ],
        }
        results = simulate_contending_aps(cells, duration_s=30.0, rng=11)
        delivered = results["a"].delivered
        assert delivered["u1"] == pytest.approx(delivered["u2"], abs=1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_contending_aps({}, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            simulate_contending_aps({"a": []}, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            simulate_contending_aps(
                {"a": [link_for(65.0)]}, duration_s=0.0
            )


class TestEndToEndConsistency:
    def test_network_model_matches_simulation(self):
        """The full ThroughputModel pipeline agrees with a packet-level
        simulation of the same cell — closing the loop between the
        analytic evaluator ACORN optimises and an actual DCF run."""
        from repro.net import Channel, Network, ThroughputModel, build_interference_graph

        network = Network()
        network.add_ap("ap")
        snrs = {"c1": 25.0, "c2": 8.0}
        for client_id, snr in snrs.items():
            network.add_client(client_id)
            network.set_link_snr("ap", client_id, snr)
            network.associate(client_id, "ap")
        network.set_explicit_conflicts([])
        network.set_channel("ap", Channel(36))
        graph = build_interference_graph(network)
        model = ThroughputModel()
        report = model.evaluate(network, graph)

        links = []
        for client_id in snrs:
            decision = model.link_decision(network, "ap", client_id, Channel(36))
            airtime = DEFAULT_TIMINGS.packet_airtime_s(
                PACKET_BITS, decision.nominal_rate_mbps
            )
            links.append(
                SimulatedLink(client_id=client_id, airtime_s=airtime, per=decision.per)
            )
        sim = simulate_cell(links, duration_s=60.0, retry_limit=50, rng=12)
        assert sim.cell_throughput_mbps == pytest.approx(
            report.per_ap_mbps["ap"], rel=0.05
        )
