"""Unit-conversion tests, including round-trip properties."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_mw_to_dbm_known_value(self):
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(-1.0)

    def test_negative_watts_rejected(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(-0.5)

    def test_zero_power_is_floor_not_error(self):
        assert units.mw_to_dbm(0.0) < -250.0

    @given(st.floats(min_value=-100.0, max_value=60.0))
    def test_dbm_mw_roundtrip(self, dbm):
        assert units.mw_to_dbm(units.dbm_to_mw(dbm)) == pytest.approx(dbm)

    @given(st.floats(min_value=-120.0, max_value=40.0))
    def test_watts_roundtrip(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)


class TestRatioConversions:
    def test_three_db_is_double(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_of_ten(self):
        assert units.linear_to_db(10.0) == pytest.approx(10.0)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-2.0)

    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_db_roundtrip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)


class TestPowerAddition:
    def test_equal_powers_add_three_db(self):
        assert units.add_powers_dbm(-90.0, -90.0) == pytest.approx(-86.99, abs=0.01)

    def test_dominant_power_wins(self):
        # A 30 dB weaker interferer barely moves the total.
        total = units.add_powers_dbm(-60.0, -90.0)
        assert total == pytest.approx(-60.0, abs=0.01)

    def test_single_power_identity(self):
        assert units.add_powers_dbm(-75.0) == pytest.approx(-75.0)

    def test_no_arguments_rejected(self):
        with pytest.raises(ValueError):
            units.add_powers_dbm()

    @given(
        st.lists(
            st.floats(min_value=-120.0, max_value=30.0), min_size=1, max_size=6
        )
    )
    def test_sum_at_least_max(self, powers):
        total = units.add_powers_dbm(*powers)
        assert total >= max(powers) - 1e-9


class TestFrequencyAndRate:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(20.0) == 20e6

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(40e6) == pytest.approx(40.0)

    def test_mbps_to_bps(self):
        assert units.mbps_to_bps(65.0) == 65e6

    def test_bps_to_mbps(self):
        assert units.bps_to_mbps(135e6) == pytest.approx(135.0)

    @given(st.floats(min_value=0.001, max_value=1e6))
    def test_rate_roundtrip(self, mbps):
        assert units.bps_to_mbps(units.mbps_to_bps(mbps)) == pytest.approx(mbps)
