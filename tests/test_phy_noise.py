"""Tests for the noise floor (Eq. 1) and the bonding SNR penalty."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.noise import (
    cb_snr_penalty_db,
    noise_floor_dbm,
    noise_per_subcarrier_dbm,
    snr_db,
    snr_per_subcarrier_db,
    subcarrier_energy_offset_db,
)
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ


class TestNoiseFloor:
    def test_eq1_at_20mhz(self):
        # N = -174 + 10*log10(20e6) = -100.99 dBm (plus noise figure).
        assert noise_floor_dbm(20e6, noise_figure_db=0.0) == pytest.approx(
            -100.99, abs=0.01
        )

    def test_doubling_bandwidth_adds_3db(self):
        """The paper: 40 MHz noise is ~3 dBm (10log2) above 20 MHz."""
        delta = noise_floor_dbm(40e6) - noise_floor_dbm(20e6)
        assert delta == pytest.approx(3.0103, abs=1e-3)

    def test_noise_figure_added(self):
        assert noise_floor_dbm(20e6, noise_figure_db=6.0) == pytest.approx(
            noise_floor_dbm(20e6, noise_figure_db=0.0) + 6.0
        )

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_floor_dbm(0.0)


class TestPerSubcarrierNoise:
    def test_width_independent(self):
        """Same subcarrier spacing -> (almost) the same noise per subcarrier.

        This is the paper's "the noise per subcarrier can be expected to
        remain almost the same".
        """
        n20 = noise_per_subcarrier_dbm(OFDM_20MHZ)
        n40 = noise_per_subcarrier_dbm(OFDM_40MHZ)
        assert n20 == pytest.approx(n40, abs=0.01)


class TestSubcarrierEnergy:
    def test_ht20_reference_is_zero(self):
        assert subcarrier_energy_offset_db(OFDM_20MHZ) == pytest.approx(0.0)

    def test_ht40_offset_about_minus_3db(self):
        """Fig 1: ~3 dB per-subcarrier energy drop with bonding."""
        offset = subcarrier_energy_offset_db(OFDM_40MHZ)
        assert offset == pytest.approx(-3.09, abs=0.05)

    def test_cb_penalty_positive_3db(self):
        assert cb_snr_penalty_db() == pytest.approx(3.09, abs=0.05)


class TestLinkSnr:
    def test_wideband_snr_budget(self):
        value = snr_db(23.0, 100.0, 20e6, noise_figure_db=6.0)
        expected = 23.0 - 100.0 - (-174.0 + 10 * 7.30103 + 6.0)
        assert value == pytest.approx(expected, abs=0.01)

    def test_subcarrier_snr_width_penalty(self):
        """Same budget: HT40 per-subcarrier SNR sits ~3 dB below HT20."""
        s20 = snr_per_subcarrier_db(20.0, 95.0, OFDM_20MHZ)
        s40 = snr_per_subcarrier_db(20.0, 95.0, OFDM_40MHZ)
        assert s20 - s40 == pytest.approx(3.09, abs=0.05)

    def test_more_power_more_snr(self):
        low = snr_per_subcarrier_db(10.0, 95.0, OFDM_20MHZ)
        high = snr_per_subcarrier_db(20.0, 95.0, OFDM_20MHZ)
        assert high - low == pytest.approx(10.0)

    def test_more_loss_less_snr(self):
        near = snr_per_subcarrier_db(20.0, 80.0, OFDM_20MHZ)
        far = snr_per_subcarrier_db(20.0, 110.0, OFDM_20MHZ)
        assert near - far == pytest.approx(30.0)
