"""Tests for constellations, bit mapping, and AWGN error theory."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.phy.modulation import (
    BPSK,
    MODULATIONS,
    QAM16,
    QAM64,
    QPSK,
    modulation_by_name,
    q_function,
)

ALL_MODULATIONS = [BPSK, QPSK, QAM16, QAM64]


class TestQFunction:
    def test_q_of_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_q_is_decreasing(self):
        xs = np.linspace(-3, 5, 50)
        values = q_function(xs)
        assert np.all(np.diff(values) < 0)

    def test_known_value(self):
        # Q(1.96) ~ 0.025 (the 97.5th percentile of the normal).
        assert q_function(1.96) == pytest.approx(0.025, abs=1e-3)


class TestConstellations:
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_unit_average_energy(self, modulation):
        energy = np.mean(np.abs(modulation.constellation) ** 2)
        assert energy == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_constellation_size(self, modulation):
        assert modulation.constellation.size == modulation.order

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_points_distinct(self, modulation):
        points = modulation.constellation
        distances = np.abs(points[:, None] - points[None, :])
        np.fill_diagonal(distances, 1.0)
        assert distances.min() > 1e-6

    def test_qam16_gray_neighbours_differ_by_one_bit(self):
        """Gray mapping: nearest neighbours differ in exactly one bit."""
        points = QAM16.constellation
        distances = np.abs(points[:, None] - points[None, :])
        min_distance = distances[distances > 1e-9].min()
        for i in range(16):
            for j in range(16):
                if i < j and abs(distances[i, j] - min_distance) < 1e-9:
                    assert bin(i ^ j).count("1") == 1


class TestBitMapping:
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_roundtrip_exhaustive_patterns(self, modulation):
        n = modulation.bits_per_symbol
        bits = np.array(
            [(value >> shift) & 1 for value in range(1 << n) for shift in range(n - 1, -1, -1)],
            dtype=np.uint8,
        )
        symbols = modulation.map_bits(bits)
        recovered = modulation.demap_symbols(symbols)
        assert np.array_equal(bits, recovered)

    @given(st.integers(min_value=1, max_value=40))
    def test_roundtrip_random_qpsk(self, n_symbols):
        rng = np.random.default_rng(n_symbols)
        bits = rng.integers(0, 2, size=2 * n_symbols, dtype=np.uint8)
        assert np.array_equal(QPSK.demap_symbols(QPSK.map_bits(bits)), bits)

    def test_misaligned_bit_count_rejected(self):
        with pytest.raises(ConfigurationError):
            QAM16.map_bits(np.array([0, 1, 0], dtype=np.uint8))

    def test_demap_tolerates_small_noise(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=600, dtype=np.uint8)
        symbols = QAM64.map_bits(bits)
        noisy = symbols + 0.01 * (
            rng.standard_normal(symbols.shape)
            + 1j * rng.standard_normal(symbols.shape)
        )
        assert np.array_equal(QAM64.demap_symbols(noisy), bits)


class TestErrorTheory:
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_ber_decreasing_in_snr(self, modulation):
        snrs = np.linspace(-5, 30, 40)
        bers = modulation.ber_db(snrs)
        assert np.all(np.diff(bers) <= 1e-12)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_ber_bounded(self, modulation):
        assert 0 <= modulation.ber(0.0) <= 0.5
        assert modulation.ber(1e6) < 1e-12

    def test_higher_order_needs_more_snr(self):
        """Denser constellations have higher BER at a fixed SNR.

        Checked at moderate+ SNRs; below ~3 dB the nearest-neighbour
        QAM approximation is known to lose this ordering slightly.
        """
        for snr_db in (5.0, 10.0, 15.0, 20.0):
            bers = [m.ber_db(snr_db) for m in ALL_MODULATIONS]
            assert bers == sorted(bers)

    def test_qpsk_equals_bpsk_per_bit(self):
        """Gray QPSK at Es/N0 = 2x behaves like BPSK at Es/N0 = x."""
        for snr in (1.0, 3.0, 10.0):
            assert QPSK.ber(2 * snr) == pytest.approx(BPSK.ber(snr), rel=1e-9)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_ser_at_least_ber(self, modulation):
        for snr_db in (-2.0, 4.0, 12.0, 20.0):
            snr = 10 ** (snr_db / 10)
            assert modulation.ser(snr) >= modulation.ber(snr) - 1e-12

    def test_ber_matches_monte_carlo(self):
        """Theory vs direct constellation simulation at a moderate SNR."""
        rng = np.random.default_rng(42)
        snr_db = 8.0
        n_bits = 120_000
        bits = rng.integers(0, 2, size=n_bits, dtype=np.uint8)
        symbols = QPSK.map_bits(bits)
        noise_power = 10 ** (-snr_db / 10)
        noise = np.sqrt(noise_power / 2) * (
            rng.standard_normal(symbols.shape)
            + 1j * rng.standard_normal(symbols.shape)
        )
        received = QPSK.demap_symbols(symbols + noise)
        measured = np.mean(received != bits)
        assert measured == pytest.approx(QPSK.ber_db(snr_db), rel=0.25)


class TestLookup:
    def test_by_name_aliases(self):
        assert modulation_by_name("qpsk") is QPSK
        assert modulation_by_name("DQPSK") is QPSK
        assert modulation_by_name("16qam") is QAM16
        assert modulation_by_name("QAM64") is QAM64

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            modulation_by_name("256qam")

    def test_registry_complete(self):
        assert set(MODULATIONS) == {"BPSK", "QPSK", "16QAM", "64QAM"}
