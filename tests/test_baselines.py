"""Tests for the comparison schemes."""

import pytest

from repro.baselines.fixed_width import assign_orthogonal
from repro.baselines.kauffmann import (
    KauffmannController,
    kauffmann_allocate,
    kauffmann_choose_ap,
)
from repro.baselines.optimal import (
    brute_force_allocation,
    isolation_upper_bound_mbps,
)
from repro.baselines.random_config import RandomConfigurator
from repro.baselines.rssi import rssi_choose_ap
from repro.core.allocation import allocate_channels
from repro.errors import AllocationError, AssociationError, ChannelError, ConfigurationError
from repro.net.channels import Channel, ChannelPlan
from repro.net.interference import build_interference_graph


class TestKauffmann:
    def test_allocation_uses_only_40mhz(self, triangle_network):
        graph = build_interference_graph(triangle_network)
        assignment = kauffmann_allocate(triangle_network, graph, ChannelPlan())
        assert all(channel.is_bonded for channel in assignment.values())

    def test_allocation_minimises_conflicts_when_possible(
        self, triangle_network
    ):
        graph = build_interference_graph(triangle_network)
        assignment = kauffmann_allocate(triangle_network, graph, ChannelPlan())
        # Six bonded channels exist; three mutually interfering APs can
        # and should all be orthogonal.
        channels = list(assignment.values())
        for i, a in enumerate(channels):
            for b in channels[i + 1 :]:
                assert not a.conflicts_with(b)

    def test_no_40mhz_plan_rejected(self, triangle_network):
        graph = build_interference_graph(triangle_network)
        with pytest.raises(ChannelError):
            kauffmann_allocate(
                triangle_network, graph, ChannelPlan().subset(1)
            )

    def test_selfish_association_picks_best_own_throughput(
        self, two_cell_network, model
    ):
        two_cell_network.set_channel("ap1", Channel(36))
        two_cell_network.set_channel("ap2", Channel(44, 48))
        graph = build_interference_graph(two_cell_network)
        two_cell_network.add_client("stray")
        two_cell_network.set_link_snr("ap1", "stray", 2.0)
        two_cell_network.set_link_snr("ap2", "stray", 3.0)
        chosen, _ = kauffmann_choose_ap(
            two_cell_network, graph, model, "stray"
        )
        assert chosen == "ap2"

    def test_no_candidates_rejected(self, two_cell_network, model):
        two_cell_network.set_channel("ap1", Channel(36))
        graph = build_interference_graph(two_cell_network)
        two_cell_network.add_client("deaf")
        with pytest.raises(AssociationError):
            kauffmann_choose_ap(two_cell_network, graph, model, "deaf")

    def test_controller_configures_everything(self, model):
        from repro.sim.scenario import topology1

        scenario = topology1()
        controller = KauffmannController(
            scenario.network, scenario.plan, model
        )
        result = controller.configure(scenario.client_order)
        assert all(
            channel.is_bonded for channel in result.assignment.values()
        )
        assert result.total_mbps >= 0


class TestRssi:
    def test_picks_strongest(self, two_cell_network):
        two_cell_network.add_client("stray")
        two_cell_network.set_link_snr("ap1", "stray", 10.0)
        two_cell_network.set_link_snr("ap2", "stray", 11.0)
        chosen, strengths = rssi_choose_ap(two_cell_network, "stray")
        assert chosen == "ap2"
        assert strengths["ap2"] > strengths["ap1"]

    def test_no_candidates_rejected(self, two_cell_network):
        two_cell_network.add_client("deaf")
        with pytest.raises(AssociationError):
            rssi_choose_ap(two_cell_network, "deaf")


class TestFixedWidth:
    def test_orthogonal_20mhz(self, triangle_network):
        assignment = assign_orthogonal(triangle_network, ChannelPlan(), 20)
        channels = list(assignment.values())
        assert all(not c.is_bonded for c in channels)
        assert len(set(channels)) == 3

    def test_orthogonal_40mhz(self, triangle_network):
        assignment = assign_orthogonal(triangle_network, ChannelPlan(), 40)
        assert all(c.is_bonded for c in assignment.values())

    def test_reuse_when_short_of_channels(self, triangle_network):
        plan = ChannelPlan().subset(2)  # one bonded pair only
        assignment = assign_orthogonal(triangle_network, plan, 40)
        assert len(set(assignment.values())) == 1

    def test_invalid_width_rejected(self, triangle_network):
        with pytest.raises(ChannelError):
            assign_orthogonal(triangle_network, ChannelPlan(), 30)

    def test_applies_to_network(self, triangle_network):
        assign_orthogonal(triangle_network, ChannelPlan(), 20)
        assert set(triangle_network.channel_assignment) == {
            "ap1",
            "ap2",
            "ap3",
        }


class TestRandomConfigurator:
    def test_sample_size(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        configurator = RandomConfigurator(
            two_cell_network, graph, ChannelPlan(), model
        )
        configurations = configurator.sample(7, rng=0)
        assert len(configurations) == 7

    def test_best_sorted_descending(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        configurator = RandomConfigurator(
            two_cell_network, graph, ChannelPlan(), model
        )
        best = configurator.best(20, keep=5, rng=1)
        totals = [c.total_mbps for c in best]
        assert totals == sorted(totals, reverse=True)

    def test_draw_deterministic_with_seed(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        configurator = RandomConfigurator(
            two_cell_network, graph, ChannelPlan(), model
        )
        first = configurator.draw(rng=9)
        second = configurator.draw(rng=9)
        assert first.assignment == second.assignment
        assert first.total_mbps == pytest.approx(second.total_mbps)

    def test_invalid_sizes_rejected(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        configurator = RandomConfigurator(
            two_cell_network, graph, ChannelPlan(), model
        )
        with pytest.raises(ConfigurationError):
            configurator.sample(0)
        with pytest.raises(ConfigurationError):
            configurator.best(5, keep=0)

    def test_draw_does_not_mutate_network(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        before = dict(two_cell_network.associations)
        RandomConfigurator(
            two_cell_network, graph, ChannelPlan(), model
        ).draw(rng=3)
        assert two_cell_network.associations == before


class TestOptimal:
    def test_brute_force_at_least_greedy(self, triangle_network, model):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(4)
        greedy = allocate_channels(
            triangle_network, graph, plan, model, rng=0
        )
        _, optimal_value = brute_force_allocation(
            triangle_network, graph, plan, model
        )
        assert optimal_value >= greedy.aggregate_mbps - 1e-9

    def test_search_size_guard(self, model):
        from repro.net.topology import Network

        network = Network()
        for index in range(12):
            network.add_ap(f"ap{index}")
        network.set_explicit_conflicts([])
        graph = build_interference_graph(network)
        with pytest.raises(AllocationError):
            brute_force_allocation(network, graph, ChannelPlan(), model)

    def test_isolation_bound_dominates_any_assignment(
        self, triangle_network, model
    ):
        graph = build_interference_graph(triangle_network)
        plan = ChannelPlan().subset(6)
        bound = isolation_upper_bound_mbps(triangle_network, plan, model)
        _, optimal_value = brute_force_allocation(
            triangle_network, graph, plan, model
        )
        assert bound >= optimal_value - 1e-9

    def test_empty_network_rejected(self, model):
        from repro.net.topology import Network
        import networkx as nx

        network = Network()
        with pytest.raises(AllocationError):
            brute_force_allocation(network, nx.Graph(), ChannelPlan(), model)
