"""Bit-equivalence suite for the compiled array-backed network core.

The contract under test is stricter than the delta-evaluator tolerance
contract: a :class:`repro.net.CompiledEvaluator` must reproduce the
dict-keyed :class:`repro.net.DeltaEvaluator` *exactly* (float ``==``,
no tolerance) after any sequence of trials, commits, rollbacks, resets
and association moves — on every registered scenario and on a seeded
sweep of random enterprises, under both the binary-conflict model and
the weighted partial-overlap model. The allocators must therefore make
identical decisions on either engine.
"""

import pickle
import random

import pytest

from repro.core.allocation import allocate_channels, random_assignment
from repro.core.refinement import refine_associations
from repro.errors import AllocationError, TopologyError
from repro.net import (
    Channel,
    ChannelPlan,
    CompiledEvaluator,
    CompiledNetwork,
    DeltaEvaluator,
    ThroughputModel,
    UplinkThroughputModel,
    WeightedThroughputModel,
    build_interference_graph,
    network_fingerprint,
    supports_compiled,
)
from repro.sim.scenario import SCENARIOS, random_enterprise

RANDOM_SEEDS = tuple(range(12))
MODELS = ("base", "weighted")


def make_model(kind):
    return ThroughputModel() if kind == "base" else WeightedThroughputModel()


def registered(name):
    """A registered scenario with every client associated."""
    scenario = SCENARIOS[name]()
    network = scenario.network
    for client_id in network.client_ids:
        candidates = network.candidate_aps(client_id)
        if candidates:
            network.associate(client_id, candidates[0])
    return network, build_interference_graph(network), scenario.plan


def random_case(seed, n_aps=5, n_clients=12):
    """A random enterprise with deterministic random associations."""
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=seed
    )
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    return network, build_interference_graph(network), scenario.plan


ALL_CASES = [("scenario", name) for name in SCENARIOS] + [
    ("random", seed) for seed in RANDOM_SEEDS
]


def build_case(kind, key):
    return registered(key) if kind == "scenario" else random_case(key)


def paired_engines(network, graph, plan, model):
    """One delta and one compiled engine over identical state."""
    initial = random_assignment(network.ap_ids, plan, 3)
    delta = DeltaEvaluator(network, graph, model=model, assignment=initial)
    compiled = CompiledNetwork.compile(network, graph, plan)
    fast = CompiledEvaluator(compiled, model=model, assignment=initial)
    return delta, fast


class TestCompiledNetwork:
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_thaw_is_bit_faithful(self, kind, key):
        network, graph, plan = build_case(kind, key)
        compiled = CompiledNetwork.compile(network, graph, plan)
        assert compiled.fingerprint() == network_fingerprint(network)
        thawed = compiled.thaw()
        assert network_fingerprint(thawed) == network_fingerprint(network)
        assert thawed.ap_ids == network.ap_ids
        assert thawed.client_ids == network.client_ids
        assert thawed.associations == network.associations

    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_candidate_aps_matches_network(self, kind, key):
        network, graph, plan = build_case(kind, key)
        compiled = CompiledNetwork.compile(network, graph, plan)
        for floor in (-8.0, -5.0, 5.0, 25.0):
            for client_id in network.client_ids:
                assert compiled.candidate_aps(client_id, floor) == tuple(
                    network.candidate_aps(client_id, floor)
                )
        with pytest.raises(TopologyError):
            compiled.candidate_aps("nobody")

    def test_pickle_round_trip(self):
        network, graph, plan = registered("office")
        compiled = CompiledNetwork.compile(network, graph, plan)
        compiled.rate_tables(ThroughputModel())  # populate the local cache
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.fingerprint() == compiled.fingerprint()
        assert clone.ap_ids == compiled.ap_ids
        # Engines over the clone still produce identical values.
        model = ThroughputModel()
        initial = random_assignment(network.ap_ids, plan, 5)
        a = CompiledEvaluator(compiled, model=model, assignment=initial)
        b = CompiledEvaluator(clone, model=model, assignment=initial)
        assert a.aggregate_mbps == b.aggregate_mbps

    def test_fingerprint_sensitive_to_state(self):
        network, graph, plan = registered("office")
        before = network_fingerprint(network)
        ap_id = network.ap_ids[0]
        network.set_channel(ap_id, plan.all_channels()[0])
        assert network_fingerprint(network) != before

    def test_supports_compiled(self):
        assert supports_compiled(ThroughputModel())
        assert supports_compiled(WeightedThroughputModel())
        assert not supports_compiled(UplinkThroughputModel())

        class Ablated(ThroughputModel):
            def medium_share_of(self, graph, ap_id, assignment):
                return 1.0

        assert not supports_compiled(Ablated())
        with pytest.raises(AllocationError):
            CompiledEvaluator(
                CompiledNetwork.compile(network := registered("dense")[0]),
                model=Ablated(),
            )


class TestEvaluatorEquivalence:
    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_random_walk_is_bit_identical(self, kind, key, model_kind):
        network, graph, plan = build_case(kind, key)
        model = make_model(model_kind)
        delta, fast = paired_engines(network, graph, plan, model)
        assert fast.aggregate_mbps == delta.aggregate_mbps
        assert fast.per_ap_mbps() == delta.per_ap_mbps()

        palette = plan.all_channels()
        ap_ids = network.ap_ids
        movable = [c for c in network.client_ids if c in network.associations]
        seed = 104729 + (key if kind == "random" else sum(map(ord, key)))
        rng = random.Random(seed)
        can_rollback = False
        for _ in range(40):
            op = rng.choice(
                ("trial", "commit", "commit", "rollback", "reset", "move")
            )
            if op == "trial":
                ap_id = rng.choice(ap_ids)
                channel = rng.choice(palette)
                assert fast.trial(ap_id, channel) == delta.trial(ap_id, channel)
            elif op == "commit":
                ap_id = rng.choice(ap_ids)
                channel = rng.choice(palette)
                assert fast.commit(ap_id, channel) == delta.commit(
                    ap_id, channel
                )
                can_rollback = True
            elif op == "rollback" and can_rollback:
                assert fast.rollback() == delta.rollback()
                can_rollback = False
            elif op == "reset":
                start = random_assignment(ap_ids, plan, rng.randint(0, 10**6))
                assert fast.reset(start) == delta.reset(start)
                can_rollback = False
            elif op == "move" and movable:
                client_id = rng.choice(movable)
                target = rng.choice(ap_ids)
                try:
                    expected = delta.trial_move(client_id, target)
                except TopologyError:
                    # A linkless target: the compiled engine must refuse
                    # the move with the same error, on both entry points.
                    with pytest.raises(TopologyError):
                        fast.trial_move(client_id, target)
                    with pytest.raises(TopologyError):
                        fast.commit_move(client_id, target)
                else:
                    assert fast.trial_move(client_id, target) == expected
                    if rng.random() < 0.5:
                        assert fast.commit_move(
                            client_id, target
                        ) == delta.commit_move(client_id, target)
                        can_rollback = True
            assert fast.aggregate_mbps == delta.aggregate_mbps
            assert fast.assignment == delta.assignment
            assert fast.associations == delta.associations
        assert fast.per_ap_mbps() == delta.per_ap_mbps()

    @pytest.mark.parametrize("model_kind", MODELS)
    def test_contention_load_oracle_matches(self, model_kind):
        network, graph, plan = registered("office")
        model = make_model(model_kind)
        delta, fast = paired_engines(network, graph, plan, model)
        what_if = random_assignment(network.ap_ids, plan, 17)
        for ap_id in network.ap_ids:
            for channel in plan.all_channels():
                assert fast.contention_load(ap_id, channel) == (
                    delta.contention_load(ap_id, channel)
                )
                assert fast.contention_load(
                    ap_id, channel, assignment=what_if
                ) == delta.contention_load(ap_id, channel, assignment=what_if)


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_allocate_channels_bit_identical(self, kind, key, model_kind):
        network, graph, plan = build_case(kind, key)
        model = make_model(model_kind)
        kwargs = dict(rng=7, restarts=2)
        ref = allocate_channels(
            network, graph, plan, model, engine_mode="delta", **kwargs
        )
        out = allocate_channels(
            network, graph, plan, model, engine_mode="compiled", **kwargs
        )
        assert out.assignment == ref.assignment
        assert out.aggregate_mbps == ref.aggregate_mbps
        assert out.rounds == ref.rounds
        assert out.evaluations == ref.evaluations
        assert out.total_evaluations == ref.total_evaluations
        assert out.evaluations_per_start == ref.evaluations_per_start
        assert [
            (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
            for e in out.history
        ] == [
            (e.ap_id, e.channel, e.aggregate_mbps, e.round_index)
            for e in ref.history
        ]

    def test_auto_mode_picks_compiled_only_when_supported(self):
        network, graph, plan = registered("dense")
        result = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=1
        )
        reference = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=1, engine_mode="delta"
        )
        assert result.assignment == reference.assignment
        assert result.aggregate_mbps == reference.aggregate_mbps
        with pytest.raises(AllocationError):
            allocate_channels(
                network, graph, plan, ThroughputModel(), engine_mode="turbo"
            )

    def test_precompiled_network_is_reused(self):
        network, graph, plan = registered("office")
        compiled = CompiledNetwork.compile(network, graph, plan)
        result = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=9, compiled=compiled
        )
        reference = allocate_channels(
            network, graph, plan, ThroughputModel(), rng=9, engine_mode="delta"
        )
        assert result.assignment == reference.assignment
        assert result.aggregate_mbps == reference.aggregate_mbps

    @pytest.mark.parametrize("model_kind", MODELS)
    @pytest.mark.parametrize("seed", RANDOM_SEEDS[:6])
    def test_refinement_bit_identical(self, seed, model_kind):
        model = make_model(model_kind)
        outcomes = []
        for mode in ("delta", "compiled"):
            network, graph, plan = random_case(seed)
            allocation = allocate_channels(
                network, graph, plan, model, rng=5, engine_mode=mode
            )
            for ap_id, channel in allocation.assignment.items():
                network.set_channel(ap_id, channel)
            refined = refine_associations(
                network, graph, model, engine_mode=mode
            )
            outcomes.append(
                (
                    refined.associations,
                    refined.aggregate_mbps,
                    refined.moves,
                    refined.evaluations,
                    dict(network.associations),
                )
            )
        assert outcomes[0] == outcomes[1]
