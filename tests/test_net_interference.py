"""Tests for the interference graph and channel-conditioned contention."""

import pytest

from repro.errors import AllocationError, TopologyError
from repro.net.channels import Channel
from repro.net.interference import (
    build_interference_graph,
    contenders,
    max_degree,
)
from repro.net.topology import Network


def geometric_pair(distance_m: float) -> Network:
    network = Network()
    network.add_ap("a", position=(0.0, 0.0))
    network.add_ap("b", position=(distance_m, 0.0))
    return network


class TestGraphConstruction:
    def test_explicit_conflicts_take_precedence(self):
        network = geometric_pair(1.0)  # would interfere geometrically
        network.set_explicit_conflicts([])
        graph = build_interference_graph(network)
        assert graph.number_of_edges() == 0

    def test_close_aps_interfere(self):
        graph = build_interference_graph(geometric_pair(5.0))
        assert graph.has_edge("a", "b")

    def test_distant_aps_do_not_interfere(self):
        graph = build_interference_graph(geometric_pair(5000.0))
        assert not graph.has_edge("a", "b")

    def test_client_mediated_edge(self):
        """Footnote 5: APs conflict through each other's clients."""
        network = Network()
        # APs are far apart...
        network.add_ap("a", position=(0.0, 0.0))
        network.add_ap("b", position=(400.0, 0.0))
        baseline = build_interference_graph(network)
        assert not baseline.has_edge("a", "b")
        # ...but A's client sits right next to B.
        network.add_client("u", position=(395.0, 0.0))
        network.set_link_snr("a", "u", 10.0)  # define the link
        network.associate("u", "a")
        graph = build_interference_graph(network)
        assert graph.has_edge("a", "b")

    def test_missing_positions_rejected(self):
        network = Network()
        network.add_ap("a", position=(0.0, 0.0))
        network.add_ap("b")  # no position, no explicit conflicts
        with pytest.raises(TopologyError):
            build_interference_graph(network)

    def test_all_aps_are_nodes(self):
        network = geometric_pair(5000.0)
        graph = build_interference_graph(network)
        assert set(graph.nodes) == {"a", "b"}


class TestContenders:
    def make_triangle(self):
        network = Network()
        for name in ("a", "b", "c"):
            network.add_ap(name)
        network.set_explicit_conflicts([("a", "b"), ("a", "c"), ("b", "c")])
        return network, build_interference_graph(network)

    def test_same_channel_neighbours_contend(self):
        network, graph = self.make_triangle()
        assignment = {name: Channel(36) for name in ("a", "b", "c")}
        assert contenders(graph, "a", assignment) == {"b", "c"}

    def test_orthogonal_channels_do_not_contend(self):
        network, graph = self.make_triangle()
        assignment = {"a": Channel(36), "b": Channel(44), "c": Channel(52)}
        assert contenders(graph, "a", assignment) == set()

    def test_bonded_conflicts_with_constituent(self):
        network, graph = self.make_triangle()
        assignment = {
            "a": Channel(36, 40),
            "b": Channel(40),
            "c": Channel(44),
        }
        assert contenders(graph, "a", assignment) == {"b"}
        assert contenders(graph, "b", assignment) == {"a"}

    def test_unassigned_neighbour_skipped(self):
        network, graph = self.make_triangle()
        assignment = {"a": Channel(36), "b": Channel(36)}
        assert contenders(graph, "a", assignment) == {"b"}

    def test_unassigned_self_rejected(self):
        network, graph = self.make_triangle()
        with pytest.raises(AllocationError):
            contenders(graph, "a", {})

    def test_unknown_ap_rejected(self):
        network, graph = self.make_triangle()
        with pytest.raises(AllocationError):
            contenders(graph, "ghost", {"ghost": Channel(36)})

    def test_non_neighbours_never_contend(self):
        """Contention requires an interference-graph edge, not just a
        shared channel."""
        network = Network()
        network.add_ap("a")
        network.add_ap("b")
        network.set_explicit_conflicts([])
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(36)}
        assert contenders(graph, "a", assignment) == set()


class TestMaxDegree:
    def test_triangle_degree_two(self):
        _, graph = TestContenders().make_triangle()
        assert max_degree(graph) == 2

    def test_empty_graph(self):
        import networkx as nx

        assert max_degree(nx.Graph()) == 0

    def test_isolated_nodes_degree_zero(self):
        network = Network()
        network.add_ap("a")
        network.add_ap("b")
        network.set_explicit_conflicts([])
        assert max_degree(build_interference_graph(network)) == 0
