"""Tests for Algorithm 1: beacons, Eq. 4 utility, and AP choice."""

import math

import pytest

from repro.core.association import (
    association_utility,
    choose_ap,
    throughput_with_mbps,
    throughput_without_mbps,
)
from repro.core.beacon import Beacon, gather_beacon
from repro.errors import AssociationError
from repro.net.channels import Channel
from repro.net.interference import build_interference_graph


def prepared(network):
    """Assign channels so beacons can be computed."""
    network.set_channel("ap1", Channel(36))
    network.set_channel("ap2", Channel(44, 48))
    return build_interference_graph(network)


class TestBeacon:
    def test_counts_prospective_client(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        two_cell_network.add_client("newbie")
        two_cell_network.set_link_snr("ap2", "newbie", 24.0)
        beacon = gather_beacon(
            two_cell_network, graph, model, "ap2", "newbie"
        )
        # ap2 already serves good1/good2; K includes the newcomer.
        assert beacon.n_clients == 3
        assert beacon.prospective_delay_s > 0
        assert beacon.atd_s == pytest.approx(
            sum(beacon.client_delays_s.values()) + beacon.prospective_delay_s
        )

    def test_m_share_without_contention(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        two_cell_network.add_client("newbie")
        two_cell_network.set_link_snr("ap1", "newbie", 10.0)
        beacon = gather_beacon(
            two_cell_network, graph, model, "ap1", "newbie"
        )
        assert beacon.m_share == 1.0

    def test_missing_channel_rejected(self, two_cell_network, model):
        graph = build_interference_graph(two_cell_network)
        with pytest.raises(AssociationError):
            gather_beacon(two_cell_network, graph, model, "ap1", "poor1")

    def test_existing_client_not_double_counted(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        beacon = gather_beacon(
            two_cell_network, graph, model, "ap1", "poor1"
        )
        # poor1 is already associated; it must appear once (as prospective).
        assert beacon.n_clients == 2
        assert "poor1" not in beacon.client_delays_s


class TestThroughputFormulas:
    def make_beacon(self, atd, d_u, m=1.0, k=2):
        return Beacon(
            ap_id="ap",
            n_clients=k,
            client_delays_s={"other": atd - d_u},
            prospective_delay_s=d_u,
            atd_s=atd,
            m_share=m,
        )

    def test_x_with_formula(self, model):
        beacon = self.make_beacon(atd=2e-3, d_u=1e-3)
        expected = 1.0 / 2e-3 * 12_000 / 1e6
        assert throughput_with_mbps(beacon, model) == pytest.approx(expected)

    def test_x_without_formula(self, model):
        beacon = self.make_beacon(atd=2e-3, d_u=0.5e-3)
        expected = 1.0 / 1.5e-3 * 12_000 / 1e6
        assert throughput_without_mbps(beacon, model) == pytest.approx(expected)

    def test_infinite_atd_yields_zero(self, model):
        beacon = self.make_beacon(atd=float("inf"), d_u=float("inf"))
        assert throughput_with_mbps(beacon, model) == 0.0
        assert throughput_without_mbps(beacon, model) == 0.0

    def test_sole_client_without_is_zero(self, model):
        beacon = Beacon(
            ap_id="ap",
            n_clients=1,
            client_delays_s={},
            prospective_delay_s=1e-3,
            atd_s=1e-3,
            m_share=1.0,
        )
        assert throughput_without_mbps(beacon, model) == 0.0


class TestUtility:
    def test_missing_candidate_rejected(self, model):
        with pytest.raises(AssociationError):
            association_utility("ghost", {}, model)

    def test_empty_neighbour_cells_contribute_nothing(self, model):
        own = Beacon(
            ap_id="a",
            n_clients=1,
            client_delays_s={},
            prospective_delay_s=1e-3,
            atd_s=1e-3,
            m_share=1.0,
        )
        lonely = Beacon(
            ap_id="b",
            n_clients=1,
            client_delays_s={},
            prospective_delay_s=2e-3,
            atd_s=2e-3,
            m_share=1.0,
        )
        utility = association_utility("a", {"a": own, "b": lonely}, model)
        assert utility == pytest.approx(
            1 * throughput_with_mbps(own, model)
        )


class TestChooseAp:
    def test_poor_client_groups_with_poor(self, two_cell_network, model):
        """Eq. 4's purpose: a poor newcomer joins the poor cell rather
        than dragging the bonded good cell down."""
        graph = prepared(two_cell_network)
        two_cell_network.add_client("strayer")
        # The stray hears both cells at poor quality.
        two_cell_network.set_link_snr("ap1", "strayer", 2.0)
        two_cell_network.set_link_snr("ap2", "strayer", 3.0)
        chosen, utilities = choose_ap(
            two_cell_network, graph, model, "strayer"
        )
        assert chosen == "ap1"
        assert utilities["ap1"] > utilities["ap2"]

    def test_selfish_choice_differs(self, two_cell_network, model):
        """The same stray, asked selfishly, prefers the stronger AP —
        this divergence is exactly why Eq. 4 exists."""
        from repro.baselines.kauffmann import kauffmann_choose_ap

        graph = prepared(two_cell_network)
        two_cell_network.add_client("strayer")
        two_cell_network.set_link_snr("ap1", "strayer", 2.0)
        two_cell_network.set_link_snr("ap2", "strayer", 3.0)
        selfish, _ = kauffmann_choose_ap(
            two_cell_network, graph, model, "strayer"
        )
        acorn, _ = choose_ap(two_cell_network, graph, model, "strayer")
        assert selfish == "ap2"
        assert acorn == "ap1"

    def test_choice_maximises_evaluated_network_throughput(
        self, two_cell_network, model
    ):
        """Eq. 4 is a utility proxy for the aggregate objective: the AP
        it picks must yield at least the network throughput of the
        alternative when actually evaluated.

        (Notably, a *good* client can end up in the poor cell: its
        packets ride almost free under per-packet fairness and raise
        that cell's aggregate — a real property of the X = M/ATD
        objective.)"""
        graph = prepared(two_cell_network)
        two_cell_network.add_client("fast")
        two_cell_network.set_link_snr("ap1", "fast", 26.0)
        two_cell_network.set_link_snr("ap2", "fast", 26.0)
        chosen, _ = choose_ap(two_cell_network, graph, model, "fast")
        totals = {}
        for ap_id in ("ap1", "ap2"):
            associations = dict(two_cell_network.associations)
            associations["fast"] = ap_id
            totals[ap_id] = model.aggregate_mbps(
                two_cell_network, graph, associations=associations
            )
        assert totals[chosen] == pytest.approx(max(totals.values()))

    def test_no_candidates_rejected(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        two_cell_network.add_client("deaf")
        with pytest.raises(AssociationError):
            choose_ap(two_cell_network, graph, model, "deaf")

    def test_explicit_candidates_respected(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        two_cell_network.add_client("picky")
        two_cell_network.set_link_snr("ap1", "picky", 20.0)
        two_cell_network.set_link_snr("ap2", "picky", 25.0)
        chosen, utilities = choose_ap(
            two_cell_network, graph, model, "picky", candidates=["ap1"]
        )
        assert chosen == "ap1"
        assert set(utilities) == {"ap1"}

    def test_deterministic(self, two_cell_network, model):
        graph = prepared(two_cell_network)
        two_cell_network.add_client("repeat")
        two_cell_network.set_link_snr("ap1", "repeat", 15.0)
        two_cell_network.set_link_snr("ap2", "repeat", 15.0)
        first, _ = choose_ap(two_cell_network, graph, model, "repeat")
        second, _ = choose_ap(two_cell_network, graph, model, "repeat")
        assert first == second
