"""Tests for repro.lint.semantics — the project-wide analysis layer.

Covers phase-1 extraction (symbols, imports, unit facts, the
trial/commit CFG check), phase-2 resolution (method dispatch through
class defs and bases, registry indirection, import aliasing, cyclic
imports, taint chains) and the incremental cache contract: a warm run
replays from ``.reprolint-cache.json``, editing a leaf module
re-analyses only the leaf plus its reverse dependencies, and a corrupt
cache silently falls back to a full cold rebuild.
"""

import ast
import json
import pathlib
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.context import ModuleContext
from repro.lint.semantics import (
    CACHE_FILENAME,
    ModuleSummary,
    ProjectIndex,
    dotted_name,
    extract_module,
    unit_of_identifier,
    units_conflict,
)


def summarize(rel, source):
    """A ModuleSummary for one dedented in-memory module."""
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    module = ModuleContext(
        path=rel,
        module=rel,
        tree=tree,
        lines=source.splitlines(),
        waived=frozenset(),
    )
    return extract_module(module, source_hash=f"hash-of-{rel}")


def build_index(files):
    """A ProjectIndex over {relative path: source} fixtures."""
    return ProjectIndex(
        {rel: summarize(rel, source) for rel, source in files.items()}
    )


def write_project(tmp_path, files):
    """Materialise fixtures as a ``repro`` package; returns its root."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        for parent in path.parents:
            if parent == root.parent:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text('"""Fixture package."""\n__all__ = []\n')
    return root


class TestUnitModel:
    def test_suffix_ordering_prefers_longest(self):
        assert unit_of_identifier("power_dbm") == "dbm"
        assert unit_of_identifier("gain_db") == "db"
        assert unit_of_identifier("rate_mbps") == "mbps"
        assert unit_of_identifier("rate_bps") == "bps"
        assert unit_of_identifier("plain_name") is None

    def test_conflicts(self):
        # Gains apply to absolute powers: the log-domain pair is fine.
        assert not units_conflict("db", "dbm")
        assert not units_conflict("dbm", "db")
        assert units_conflict("db", "linear")
        assert units_conflict("mw", "dbm")
        assert units_conflict("hz", "mhz")
        assert units_conflict("mbps", "bps")
        assert not units_conflict("mw", "mw")


class TestDottedName:
    def test_plain_module(self):
        assert dotted_name("units.py") == "repro.units"
        assert dotted_name("core/allocation.py") == "repro.core.allocation"

    def test_package_init(self):
        assert dotted_name("__init__.py") == "repro"
        assert dotted_name("net/__init__.py") == "repro.net"


class TestExtraction:
    def test_symbols_and_deps(self):
        summary = summarize(
            "core/alloc.py",
            '''\
            """Fixture."""
            from ..units import db_to_linear
            from repro.net import evaluator as ev
            import numpy as np

            def top():
                """Doc."""
                return db_to_linear(3.0)

            HANDLER = lambda x: x
            ''',
        )
        assert summary.dotted == "repro.core.alloc"
        assert summary.symbols["db_to_linear"] == {
            "kind": "alias",
            "target": "repro.units:db_to_linear",
        }
        assert summary.symbols["ev"]["target"] == "repro.net:evaluator"
        assert summary.symbols["top"] == {"kind": "def"}
        assert summary.symbols["HANDLER"] == {"kind": "lambda"}
        assert "repro.units" in summary.dep_modules

    def test_taint_and_returns(self):
        summary = summarize(
            "helpers.py",
            '''\
            """Fixture."""
            import time
            import random

            def stamp():
                """Reads the wall clock."""
                return time.time()

            def draw():
                """Global RNG."""
                return random.random()

            def make():
                """Returns a closure."""
                def inner():
                    return 1
                return inner

            def snr_db(x):
                """Unit-suffixed name."""
                return x
            ''',
        )
        assert summary.functions["stamp"].taints[0]["kind"] == "wall-clock"
        assert summary.functions["draw"].taints[0]["kind"] == "global-rng"
        assert summary.functions["make"].returns_closure
        assert not summary.functions["stamp"].returns_closure
        assert summary.functions["snr_db"].returns_unit == "db"

    def test_local_unit_conflicts(self):
        summary = summarize(
            "mod.py",
            '''\
            """Fixture."""

            def f(noise_dbm, signal_dbm, power_mw, gain_db):
                """Doc."""
                bad_sum = noise_dbm + signal_dbm
                bad_mix = power_mw + gain_db
                fine_ratio = signal_dbm - noise_dbm
                fine_gain = signal_dbm + gain_db
                return bad_sum, bad_mix, fine_ratio, fine_gain
            ''',
        )
        details = [c.detail for c in summary.unit_conflicts]
        assert len(details) == 2
        assert any("dbm + dbm" in d for d in details)
        assert any("mw" in d and "db" in d for d in details)

    def test_compiled_write_detection_skips_self(self):
        summary = summarize(
            "mod.py",
            '''\
            """Fixture."""

            def poke(compiled, i, j):
                """External poke: flagged."""
                compiled.snr20_db[i, j] = 0.0

            class Owner:
                def mutate(self, i):
                    """A class mutating its own attribute: fine."""
                    self.channel_assignment[i] = 3
            ''',
        )
        assert [w.detail for w in summary.compiled_writes] == ["snr20_db"]
        assert summary.compiled_writes[0].func == "poke"


class TestTrialGapCFG:
    def run(self, body):
        summary = summarize(
            "mod.py",
            '"""F."""\n\ndef f(engine, items):\n'
            + textwrap.indent(textwrap.dedent(body), "    "),
        )
        return summary.trial_gaps

    def test_unresolved_trial_on_fallthrough(self):
        gaps = self.run(
            """\
            value = engine.trial("a", 1)
            return value
            """
        )
        assert len(gaps) == 1 and gaps[0].detail == "trial"

    def test_commit_on_all_paths_is_clean(self):
        gaps = self.run(
            """\
            value = engine.trial("a", 1)
            if value > 0:
                engine.commit("a", 1)
            else:
                engine.rollback()
            return value
            """
        )
        assert gaps == []

    def test_commit_on_one_branch_only_is_a_gap(self):
        gaps = self.run(
            """\
            value = engine.trial("a", 1)
            if value > 0:
                engine.commit("a", 1)
            return value
            """
        )
        assert len(gaps) == 1

    def test_rollback_on_exception_path_is_clean(self):
        # The near-miss: commit on success, rollback in the handler.
        gaps = self.run(
            """\
            value = engine.trial("a", 1)
            try:
                check(value)
                engine.commit("a", 1)
            except Exception:
                engine.rollback()
                raise
            return value
            """
        )
        assert gaps == []

    def test_break_escapes_loop_without_commit(self):
        gaps = self.run(
            """\
            for item in items:
                value = engine.trial(item, 1)
                if value < 0:
                    break
                engine.commit(item, 1)
            return None
            """
        )
        assert len(gaps) == 1

    def test_loop_back_edge_reaches_commit(self):
        gaps = self.run(
            """\
            best = None
            for item in items:
                value = engine.trial(item, 1)
                engine.commit(item, 1)
            return best
            """
        )
        assert gaps == []


class TestResolution:
    def test_method_dispatch_through_self(self):
        index = build_index(
            {
                "mod.py": '''\
                """F."""

                class Engine:
                    def outer(self):
                        """Doc."""
                        return self.inner()

                    def inner(self):
                        """Doc."""
                        return 1
                ''',
            }
        )
        edges = index.call_graph["mod.py::Engine.outer"]
        assert ("mod.py::Engine.inner", 6) in edges

    def test_method_dispatch_through_base_class(self):
        index = build_index(
            {
                "base.py": '''\
                """F."""

                class Base:
                    def shared(self):
                        """Doc."""
                        return 1
                ''',
                "child.py": '''\
                """F."""
                from repro.base import Base

                class Child(Base):
                    def use(self):
                        """Doc."""
                        return self.shared()
                ''',
            }
        )
        edges = index.call_graph["child.py::Child.use"]
        assert edges == [("base.py::Base.shared", 7)]

    def test_registry_indirection(self):
        index = build_index(
            {
                "reg.py": '''\
                """F."""

                def make_atrium():
                    """Doc."""
                    return 1

                SCENARIOS = {"atrium": make_atrium}
                ''',
                "caller.py": '''\
                """F."""
                from repro.reg import SCENARIOS

                def run(name):
                    """Doc."""
                    return SCENARIOS[name]()
                ''',
            }
        )
        edges = index.call_graph["caller.py::run"]
        assert edges == [("reg.py::make_atrium", 6)]

    def test_import_aliasing(self):
        index = build_index(
            {
                "helpers.py": '''\
                """F."""

                def stamp():
                    """Doc."""
                    return 0
                ''',
                "a.py": '''\
                """F."""
                from repro.helpers import stamp as s

                def f():
                    """Doc."""
                    return s()
                ''',
                "b.py": '''\
                """F."""
                import repro.helpers as h

                def g():
                    """Doc."""
                    return h.stamp()
                ''',
            }
        )
        assert index.call_graph["a.py::f"] == [("helpers.py::stamp", 6)]
        assert index.call_graph["b.py::g"] == [("helpers.py::stamp", 6)]

    def test_reexport_chain_through_init(self):
        index = build_index(
            {
                "net/__init__.py": '''\
                """F."""
                from .engine import trial_run
                ''',
                "net/engine.py": '''\
                """F."""

                def trial_run():
                    """Doc."""
                    return 1
                ''',
                "user.py": '''\
                """F."""
                from repro.net import trial_run

                def use():
                    """Doc."""
                    return trial_run()
                ''',
            }
        )
        assert index.call_graph["user.py::use"] == [
            ("net/engine.py::trial_run", 6)
        ]

    def test_unique_method_fallback(self):
        index = build_index(
            {
                "engine.py": '''\
                """F."""

                class Delta:
                    def trial_index(self, i):
                        """Doc."""
                        return i
                ''',
                "alloc.py": '''\
                """F."""

                def scan(engine):
                    """Doc."""
                    return engine.trial_index(0)
                ''',
            }
        )
        assert index.call_graph["alloc.py::scan"] == [
            ("engine.py::Delta.trial_index", 5)
        ]

    def test_import_cycle_terminates(self):
        index = build_index(
            {
                "a.py": '''\
                """F."""
                from repro.b import g

                def f():
                    """Doc."""
                    return g()
                ''',
                "b.py": '''\
                """F."""
                from repro.a import f

                def g():
                    """Doc."""
                    return f()
                ''',
            }
        )
        assert "b.py" in index.reverse_dependencies("a.py")
        assert "a.py" in index.reverse_dependencies("b.py")
        # Mutually recursive clean functions must not be tainted.
        assert index.taint == {}


class TestTaintClosure:
    def test_chain_depth_and_hops(self):
        index = build_index(
            {
                "clock.py": '''\
                """F."""
                import time

                def stamp():
                    """Doc."""
                    return time.time()
                ''',
                "mid.py": '''\
                """F."""
                from repro.clock import stamp

                def relay():
                    """Doc."""
                    return stamp()
                ''',
                "top.py": '''\
                """F."""
                from repro.mid import relay

                def entry():
                    """Doc."""
                    return relay()
                ''',
            }
        )
        assert index.taint["clock.py::stamp"].depth == 1
        assert index.taint["mid.py::relay"].depth == 2
        record = index.taint["top.py::entry"]
        assert record.depth == 3
        assert record.kind == "wall-clock"
        assert len(record.chain) == 3
        assert "entry calls relay" in record.chain[0]
        assert "stamp reads time.time()" in record.chain[-1]

    def test_exempt_seam_does_not_seed(self):
        index = build_index(
            {
                "obs/clock.py": '''\
                """F."""
                import time

                def monotonic_clock():
                    """The approved seam."""
                    return time.monotonic()
                ''',
                "user.py": '''\
                """F."""
                from repro.obs.clock import monotonic_clock

                def f():
                    """Doc."""
                    return monotonic_clock()
                ''',
            }
        )
        assert index.taint == {}


class TestSummaryRoundTrip:
    def test_json_round_trip(self):
        summary = summarize(
            "core/alloc.py",
            '''\
            """F."""
            from ..units import db_to_linear

            class Engine:
                def trial(self, x):
                    """Doc."""
                    return db_to_linear(x)

            def scan(engine, snr_db):
                """Doc."""
                value = engine.trial(snr_db)
                return value
            ''',
        )
        encoded = json.dumps(summary.to_dict())
        rebuilt = ModuleSummary.from_dict(json.loads(encoded))
        assert rebuilt.to_dict() == summary.to_dict()
        assert rebuilt.functions["scan"].calls[0].callee == "engine.trial"


PROJECT = {
    "leaf.py": '''\
    """Leaf."""
    __all__ = ["base"]

    def base():
        """Doc."""
        return 1
    ''',
    "mid.py": '''\
    """Mid."""
    from .leaf import base
    __all__ = ["relay"]

    def relay():
        """Doc."""
        return base()
    ''',
    "top.py": '''\
    """Top."""
    from .mid import relay
    __all__ = ["entry"]

    def entry():
        """Doc."""
        return relay()
    ''',
    "island.py": '''\
    """Unrelated."""
    __all__ = ["alone"]

    def alone():
        """Doc."""
        return 0
    ''',
}


class TestIncrementalCache:
    def test_warm_run_replays_from_cache(self, tmp_path):
        root = write_project(tmp_path, PROJECT)
        cold = lint_paths([root], cache_dir=tmp_path)
        assert cold.files_from_cache == 0
        assert cold.flow_reanalyzed == cold.files_checked
        assert (tmp_path / CACHE_FILENAME).exists()
        warm = lint_paths([root], cache_dir=tmp_path)
        assert warm.files_from_cache == warm.files_checked
        assert warm.flow_reanalyzed == 0
        assert sorted(warm.findings) == sorted(cold.findings)

    def test_leaf_edit_reanalyzes_only_reverse_deps(self, tmp_path):
        root = write_project(tmp_path, PROJECT)
        lint_paths([root], cache_dir=tmp_path)
        leaf = root / "leaf.py"
        leaf.write_text(
            leaf.read_text() + "\n\ndef extra():\n    \"\"\"Doc.\"\"\"\n"
            "    return 2\n"
        )
        report = lint_paths([root], cache_dir=tmp_path)
        # Phase 1: only the edited file re-extracts.
        assert report.files_from_cache == report.files_checked - 1
        # Phase 2: leaf + mid + top re-run; __init__ and island replay.
        assert report.flow_reanalyzed == 3
        # RL006 still fires for the new undeclared public def.
        assert any(f.rule_id == "RL006" for f in report.findings)

    def test_corrupt_cache_rebuilds_silently(self, tmp_path):
        root = write_project(tmp_path, PROJECT)
        clean = lint_paths([root], cache_dir=tmp_path)
        (tmp_path / CACHE_FILENAME).write_text("{not json", encoding="utf-8")
        rebuilt = lint_paths([root], cache_dir=tmp_path)
        assert rebuilt.files_from_cache == 0
        assert sorted(rebuilt.findings) == sorted(clean.findings)
        # And the rebuild rewrote a loadable cache.
        again = lint_paths([root], cache_dir=tmp_path)
        assert again.files_from_cache == again.files_checked

    def test_rule_selection_bypasses_cache(self, tmp_path):
        root = write_project(tmp_path, PROJECT)
        lint_paths([root], cache_dir=tmp_path)
        report = lint_paths([root], select=["RL101"], cache_dir=tmp_path)
        assert report.files_from_cache == 0
        assert report.findings == []

    def test_no_cache_flag_writes_nothing(self, tmp_path):
        root = write_project(tmp_path, PROJECT)
        report = lint_paths([root], use_cache=False, cache_dir=tmp_path)
        assert report.files_from_cache == 0
        assert not (tmp_path / CACHE_FILENAME).exists()
