"""Pinned edge cases for ``Network.remove_client`` (session churn).

The removal path is the inverse of ``add_client`` and every derived
structure leans on it: the association map, the SNR override table,
the interference graph and the compiled snapshot all reference client
ids, so a partial removal corrupts them silently. These tests pin the
exact behaviour — message text included — so hardening regressions
surface as diffs here instead of downstream.
"""

import pytest

from repro.errors import TopologyError
from repro.net import (
    ChannelPlan,
    CompiledNetwork,
    Network,
    build_interference_graph,
    network_fingerprint,
)


def served_pair():
    network = Network()
    network.add_ap("ap1", position=(0.0, 0.0))
    network.add_ap("ap2", position=(25.0, 0.0))
    network.add_client("u1", position=(5.0, 0.0))
    network.add_client("u2", position=(20.0, 0.0))
    network.associate("u1", "ap1")
    network.associate("u2", "ap2")
    return network


class TestRemoveClient:
    def test_unknown_client_raises_with_exact_message(self):
        network = served_pair()
        with pytest.raises(TopologyError, match="unknown client 'ghost'"):
            network.remove_client("ghost")

    def test_removing_twice_raises_the_second_time(self):
        network = served_pair()
        network.remove_client("u1")
        with pytest.raises(TopologyError):
            network.remove_client("u1")

    def test_removal_forgets_registration_and_association(self):
        network = served_pair()
        network.remove_client("u1")
        assert "u1" not in network.client_ids
        assert "u1" not in network.associations
        assert network.associations == {"u2": "ap2"}

    def test_removal_drops_snr_overrides(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        network.set_link_snr("ap1", "u1", 17.0)
        network.remove_client("u1")
        # Re-adding the same id must start from a clean slate: without
        # geometry or an override the link is undefined again.
        network.add_client("u1")
        assert not network.has_link("ap1", "u1")

    def test_removal_of_unassociated_client_is_clean(self):
        network = served_pair()
        network.add_client("idle", position=(10.0, 5.0))
        network.remove_client("idle")
        assert "idle" not in network.client_ids
        assert network.associations == {"u1": "ap1", "u2": "ap2"}

    def test_remove_and_readd_restores_the_fingerprint(self):
        network = served_pair()
        before = network_fingerprint(network)
        network.remove_client("u2")
        assert network_fingerprint(network) != before
        network.add_client("u2", position=(20.0, 0.0))
        network.associate("u2", "ap2")
        assert network_fingerprint(network) == before

    def test_removing_an_aps_last_client_keeps_the_ap(self):
        network = served_pair()
        network.remove_client("u2")
        assert "ap2" in network.ap_ids
        assert network.clients_of("ap2") == ()

    def test_graph_rebuild_after_removal_loses_client_edges(self):
        # Two APs that only interfere through a bridging client: the
        # footnote-5 edge must vanish when that client is removed.
        network = Network()
        network.add_ap("ap1", position=(0.0, 0.0))
        network.add_ap("ap2", position=(150.0, 0.0))
        assert build_interference_graph(network).number_of_edges() == 0
        network.add_client("bridge", position=(75.0, 0.0))
        network.associate("bridge", "ap1")
        assert build_interference_graph(network).number_of_edges() == 1
        network.remove_client("bridge")
        assert build_interference_graph(network).number_of_edges() == 0

    def test_compiled_churn_patch_matches_fresh_compile(self):
        network = served_pair()
        plan = ChannelPlan()
        compiled = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        network.remove_client("u1")
        compiled.apply_churn(network, removed_clients=("u1",))
        fresh = CompiledNetwork.compile(
            network, build_interference_graph(network), plan
        )
        assert compiled.fingerprint() == fresh.fingerprint()
