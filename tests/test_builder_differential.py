"""Differential tests: builder chains vs the legacy scenario factories.

Every legacy ``SCENARIOS`` entry is re-expressed through the fluent
builder and the two constructions are compared **bit-identically**:
same :func:`repro.net.network_fingerprint`, same channel plan, same
client arrival order — across 8 seeds for the generative factories.
This is the contract that lets the adversarial library and any future
builder chains ride the same sweep/timeline/fleet machinery without a
parallel code path: the builder is not "close to" the factories, it IS
the factories.

Run as a dedicated CI step (see ``.github/workflows/ci.yml``).
"""

import pytest

from repro.net import network_fingerprint
from repro.sim.builder import scenario
from repro.sim.checks import has_hidden_terminals
from repro.sim.scenario import (
    GOOD_SNR_DB,
    MARGINAL_SNR_DB,
    POOR_SNR_DB,
    make_scenario,
)

SEEDS = list(range(8))


def _builder_topology1():
    return (
        scenario("diff_topology1")
        .ap("AP1")
        .ap("AP2")
        .client("u1")
        .link("AP1", "u1", POOR_SNR_DB)
        .client("u2")
        .link("AP1", "u2", POOR_SNR_DB + 1.0)
        .client("u3")
        .link("AP2", "u3", GOOD_SNR_DB)
        .client("u4")
        .link("AP2", "u4", GOOD_SNR_DB + 2.0)
        .no_conflicts()
        .order("u1", "u2", "u3", "u4")
    )


def _builder_topology2():
    chain = scenario("diff_topology2")
    for index in range(1, 6):
        chain = chain.ap(f"AP{index}")
    shared = {
        "s1": (GOOD_SNR_DB, GOOD_SNR_DB - 6.0),
        "s2": (GOOD_SNR_DB + 1.0, GOOD_SNR_DB - 7.0),
        "s3": (GOOD_SNR_DB - 1.0, GOOD_SNR_DB - 5.0),
        "s4": (GOOD_SNR_DB - 8.0, GOOD_SNR_DB + 3.0),
        "s5": (GOOD_SNR_DB - 9.0, GOOD_SNR_DB + 2.0),
    }
    for client_id, (snr_ap1, snr_ap3) in shared.items():
        chain = (
            chain.client(client_id)
            .link("AP1", client_id, snr_ap1)
            .link("AP3", client_id, snr_ap3)
        )
    for client_id, snr in (("g1", GOOD_SNR_DB), ("g2", GOOD_SNR_DB + 3.0)):
        chain = chain.client(client_id).link("AP2", client_id, snr)
    for client_id, snr in (("p1", POOR_SNR_DB), ("p2", POOR_SNR_DB + 0.5)):
        chain = chain.client(client_id).link("AP4", client_id, snr)
    for client_id, snr in (
        ("q1", POOR_SNR_DB + 2.0),
        ("q2", MARGINAL_SNR_DB),
    ):
        chain = chain.client(client_id).link("AP5", client_id, snr)
    return chain.no_conflicts().order(
        "s1", "g1", "p1", "s2", "q1", "s3", "g2", "p2", "s4", "q2", "s5"
    )


def _builder_dense():
    return (
        scenario("diff_dense")
        .ap("AP1")
        .ap("AP2")
        .ap("AP3")
        .client("good")
        .link("AP1", "good", GOOD_SNR_DB)
        .client("poorA")
        .link("AP2", "poorA", POOR_SNR_DB + 1.0)
        .client("poorB")
        .link("AP3", "poorB", POOR_SNR_DB)
        .conflicts(("AP1", "AP2"), ("AP1", "AP3"), ("AP2", "AP3"))
        .channels(4)
    )


def _builder_triple():
    return (
        scenario("diff_triple")
        .ap("AP1")
        .ap("AP2")
        .ap("AP3")
        .quality_choice_clients()
        .conflicts(("AP1", "AP2"), ("AP1", "AP3"), ("AP2", "AP3"))
        .channels(6)
    )


def _builder_random():
    return (
        scenario("diff_random")
        .path_loss(exponent=4.0)
        .enterprise_aps(5, area_m=(80.0, 60.0))
        .uniform_clients(12)
        .carrier_sense_conflicts()
    )


def _builder_office():
    return scenario("diff_office").office()


# (legacy registry name, builder chain factory, legacy factory kwargs,
#  does the legacy factory consume a seed)
CASES = {
    "topology1": (_builder_topology1, {}, False),
    "topology2": (_builder_topology2, {}, False),
    "dense": (_builder_dense, {}, False),
    "triple": (_builder_triple, {}, True),
    "random": (_builder_random, {}, True),
    "office": (_builder_office, {}, True),
}


def _assert_equivalent(legacy, built):
    assert network_fingerprint(built.network) == network_fingerprint(
        legacy.network
    )
    assert built.plan.channel_numbers == legacy.plan.channel_numbers
    assert built.client_order == legacy.client_order


@pytest.mark.parametrize("name", sorted(CASES))
def test_builder_matches_legacy_factory(name):
    """Builder chain ≡ legacy factory, bit-identical, across seeds."""
    make_chain, kwargs, seeded = CASES[name]
    chain = make_chain().freeze()
    seeds = SEEDS if seeded else [0]
    for seed in seeds:
        legacy = (
            make_scenario(name, seed=seed, **kwargs)
            if seeded
            else make_scenario(name, **kwargs)
        )
        _assert_equivalent(legacy, chain(seed))


@pytest.mark.parametrize("name", ["topology1", "topology2", "dense"])
def test_deterministic_chains_are_seed_invariant(name):
    """Chains without RNG steps build the same network at every seed."""
    chain = CASES[name][0]().freeze()
    assert not chain.uses_rng
    reference = network_fingerprint(chain(0).network)
    for seed in SEEDS[1:]:
        assert network_fingerprint(chain(seed).network) == reference


@pytest.mark.parametrize("name", ["triple", "random", "office"])
def test_generative_chains_vary_with_seed(name):
    """RNG-consuming chains produce distinct instances per seed."""
    chain = CASES[name][0]().freeze()
    assert chain.uses_rng
    prints = {network_fingerprint(chain(seed).network) for seed in SEEDS}
    assert len(prints) == len(SEEDS)


def test_chain_instances_carry_seeded_names():
    """Generative instances are named ``<chain>_<seed>`` for job ids."""
    chain = _builder_triple().freeze()
    assert chain(3).name == "diff_triple_3"
    deterministic = _builder_dense().freeze()
    assert deterministic(3).name == "diff_dense"


def test_chain_checks_ride_into_the_scenario():
    """``.check(...)`` lands on the built Scenario for the executor."""
    chain = (
        _builder_dense()
        .check(has_hidden_terminals())
        .freeze()
    )
    built = chain(0)
    assert [c.name for c in built.checks] == ["has_hidden_terminals()"]


def test_fresh_network_rebuilds_identically():
    """The stored factory contract (Scenario.fresh_network) holds."""
    built = _builder_random().freeze()(5)
    assert network_fingerprint(built.fresh_network()) == network_fingerprint(
        built.network
    )
