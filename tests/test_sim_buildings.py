"""Tests for the office-floor building model."""

import pytest

from repro.config import PathLossModel
from repro.errors import ConfigurationError
from repro.sim.buildings import FloorPlan, office_floor


class TestFloorPlan:
    def test_dimensions(self):
        floor = FloorPlan(rooms_x=4, rooms_y=3, room_size_m=6.0)
        assert floor.width_m == 24.0
        assert floor.height_m == 18.0

    def test_room_center(self):
        floor = FloorPlan(room_size_m=6.0)
        assert floor.room_center(0, 0) == (3.0, 3.0)
        assert floor.room_center(1, 2) == (9.0, 15.0)

    def test_room_out_of_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            FloorPlan(rooms_x=2, rooms_y=2).room_center(2, 0)

    def test_same_room_no_walls(self):
        floor = FloorPlan(room_size_m=6.0)
        assert floor.walls_between((1.0, 1.0), (5.0, 5.0)) == 0

    def test_adjacent_rooms_one_wall(self):
        floor = FloorPlan(rooms_x=4, rooms_y=1, room_size_m=6.0)
        # Crossing from room 0 into room 1 on the x axis.
        assert floor.walls_between((3.0, 3.0), (9.0, 3.0)) == 1

    def test_diagonal_counts_both_axes(self):
        floor = FloorPlan(rooms_x=4, rooms_y=4, room_size_m=6.0)
        assert floor.walls_between((3.0, 3.0), (9.0, 9.0)) == 2

    def test_far_rooms_many_walls(self):
        floor = FloorPlan(rooms_x=5, rooms_y=1, room_size_m=6.0)
        assert floor.walls_between((3.0, 3.0), (27.0, 3.0)) == 4

    def test_exterior_walls_not_counted(self):
        floor = FloorPlan(rooms_x=2, rooms_y=1, room_size_m=6.0)
        # Both points in the leftmost room, near the exterior wall.
        assert floor.walls_between((0.1, 3.0), (0.2, 3.0)) == 0

    def test_walls_symmetric(self):
        floor = FloorPlan(rooms_x=3, rooms_y=3)
        a, b = (2.0, 2.0), (16.0, 10.0)
        assert floor.walls_between(a, b) == floor.walls_between(b, a)

    def test_path_loss_includes_walls(self):
        floor = FloorPlan(rooms_x=4, rooms_y=1, room_size_m=6.0, wall_loss_db=5.0)
        model = PathLossModel(exponent=2.0)
        same_room = floor.path_loss_db((1.0, 3.0), (5.0, 3.0), model)
        # Equal distance but crossing one wall.
        one_wall = floor.path_loss_db((4.0, 3.0), (8.0, 3.0), model)
        assert one_wall == pytest.approx(same_room + 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloorPlan(rooms_x=0)
        with pytest.raises(ConfigurationError):
            FloorPlan(room_size_m=0.0)
        with pytest.raises(ConfigurationError):
            FloorPlan(wall_loss_db=-1.0)


class TestOfficeFloor:
    def test_builds_requested_shape(self):
        scenario = office_floor(rooms_x=3, rooms_y=2, clients_per_room=2, n_aps=2)
        assert len(scenario.network.ap_ids) == 2
        assert len(scenario.network.client_ids) == 12

    def test_deterministic(self):
        a = office_floor(seed=5)
        b = office_floor(seed=5)
        for client_id in a.network.client_ids:
            assert a.network.client(client_id).position == pytest.approx(
                b.network.client(client_id).position
            )

    def test_walls_create_quality_diversity(self):
        """On a long floor with heavy walls, far rooms land in the poor
        regime while in-room clients stay excellent."""
        scenario = office_floor(
            rooms_x=8,
            rooms_y=3,
            clients_per_room=1,
            n_aps=1,
            plan=FloorPlan(wall_loss_db=9.0),
        )
        snrs = [
            scenario.network.link_budget("AP1", client_id).snr20_db
            for client_id in scenario.network.client_ids
            if scenario.network.has_link("AP1", client_id)
        ]
        assert max(snrs) > 25.0   # in-room clients are excellent
        assert min(snrs) < 10.0   # far rooms are poor

    def test_acorn_configures_office(self):
        from repro import Acorn

        scenario = office_floor(rooms_x=4, rooms_y=2, clients_per_room=1, n_aps=3)
        acorn = Acorn(scenario.network, scenario.plan, seed=2)
        result = acorn.configure(scenario.client_order)
        assert result.total_mbps > 0
        assert len(result.report.associations) >= 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            office_floor(clients_per_room=-1)
        with pytest.raises(ConfigurationError):
            office_floor(n_aps=0)
