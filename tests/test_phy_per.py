"""Tests for the Eq. 6 PER model and goodput helper."""

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.phy.per import ber_from_per, effective_throughput_mbps, per_from_ber


class TestPerFromBer:
    def test_zero_ber_zero_per(self):
        assert per_from_ber(0.0) == 0.0

    def test_certain_bit_errors_certain_packet_error(self):
        assert per_from_ber(1.0) == pytest.approx(1.0)

    def test_known_value(self):
        # 1 - (1-1e-4)^(8*1500) = 1 - 0.9999^12000 ~ 0.6988.
        assert per_from_ber(1e-4, 1500) == pytest.approx(0.6988, abs=1e-3)

    def test_longer_packets_more_fragile(self):
        assert per_from_ber(1e-5, 3000) > per_from_ber(1e-5, 300)

    def test_tiny_ber_no_underflow(self):
        value = per_from_ber(1e-12, 1500)
        assert 0 < value < 1e-7

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            per_from_ber(0.1, 0)

    def test_array_input(self):
        bers = np.array([0.0, 1e-5, 1e-3])
        pers = per_from_ber(bers)
        assert pers.shape == bers.shape
        assert np.all(np.diff(pers) > 0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_output_in_unit_interval(self, ber):
        assert 0.0 <= per_from_ber(ber) <= 1.0

    @given(
        st.floats(min_value=1e-9, max_value=0.01),
        st.integers(min_value=10, max_value=4000),
    )
    def test_roundtrip_through_inverse(self, ber, packet_bytes):
        per = per_from_ber(ber, packet_bytes)
        # Once the PER saturates toward 1.0 the BER is unrecoverable:
        # (1 - per) loses float precision long before hitting exactly 1.
        assume(per < 1.0 - 1e-9)
        recovered = ber_from_per(per, packet_bytes)
        assert recovered == pytest.approx(ber, rel=1e-6)


class TestBerFromPer:
    def test_zero_per_zero_ber(self):
        assert ber_from_per(0.0) == 0.0

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ber_from_per(0.1, -5)

    def test_monotone(self):
        pers = np.linspace(0.0, 0.99, 20)
        bers = ber_from_per(pers)
        assert np.all(np.diff(bers) >= 0)


class TestEffectiveThroughput:
    def test_no_loss_full_rate(self):
        assert effective_throughput_mbps(65.0, 0.0) == pytest.approx(65.0)

    def test_total_loss_zero(self):
        assert effective_throughput_mbps(65.0, 1.0) == 0.0

    def test_paper_throughput_model(self):
        # T = (1 - PER) * R
        assert effective_throughput_mbps(130.0, 0.25) == pytest.approx(97.5)

    @given(
        st.floats(min_value=0.0, max_value=600.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_never_exceeds_nominal(self, rate, per):
        assert effective_throughput_mbps(rate, per) <= rate + 1e-9
