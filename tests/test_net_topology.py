"""Tests for the network topology container."""

import pytest

from repro.errors import AssociationError, TopologyError
from repro.net.channels import Channel
from repro.net.topology import Network


class TestConstruction:
    def test_add_devices(self):
        network = Network()
        network.add_ap("ap1", position=(0.0, 0.0))
        network.add_client("u1", position=(5.0, 0.0))
        assert network.ap_ids == ("ap1",)
        assert network.client_ids == ("u1",)

    def test_duplicate_ap_rejected(self):
        network = Network()
        network.add_ap("ap1")
        with pytest.raises(TopologyError):
            network.add_ap("ap1")

    def test_duplicate_client_rejected(self):
        network = Network()
        network.add_client("u1")
        with pytest.raises(TopologyError):
            network.add_client("u1")

    def test_client_id_clashing_with_ap_rejected(self):
        network = Network()
        network.add_ap("x")
        with pytest.raises(TopologyError):
            network.add_client("x")

    def test_unknown_lookup_rejected(self):
        network = Network()
        with pytest.raises(TopologyError):
            network.ap("ghost")
        with pytest.raises(TopologyError):
            network.client("ghost")


class TestLinks:
    def test_snr_override_wins_over_geometry(self):
        network = Network()
        network.add_ap("ap1", position=(0.0, 0.0))
        network.add_client("u1", position=(1.0, 0.0))
        network.set_link_snr("ap1", "u1", 12.5)
        assert network.link_budget("ap1", "u1").snr20_db == pytest.approx(12.5)

    def test_geometric_budget_decays_with_distance(self):
        network = Network()
        network.add_ap("ap1", position=(0.0, 0.0))
        network.add_client("near", position=(5.0, 0.0))
        network.add_client("far", position=(50.0, 0.0))
        near = network.link_budget("ap1", "near").snr20_db
        far = network.link_budget("ap1", "far").snr20_db
        assert near > far

    def test_no_link_info_rejected(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        assert not network.has_link("ap1", "u1")
        with pytest.raises(TopologyError):
            network.link_budget("ap1", "u1")

    def test_candidate_aps_filters_by_snr(self):
        network = Network()
        network.add_ap("strong")
        network.add_ap("weak")
        network.add_client("u1")
        network.set_link_snr("strong", "u1", 20.0)
        network.set_link_snr("weak", "u1", -20.0)
        assert network.candidate_aps("u1") == ("strong",)

    def test_ap_distance_requires_positions(self):
        network = Network()
        network.add_ap("a", position=(0.0, 0.0))
        network.add_ap("b")
        with pytest.raises(TopologyError):
            network.ap_distance_m("a", "b")

    def test_distance_euclidean(self):
        assert Network.distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


class TestAssociationState:
    def test_associate_and_clients_of(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        network.set_link_snr("ap1", "u1", 15.0)
        network.associate("u1", "ap1")
        assert network.clients_of("ap1") == ("u1",)

    def test_reassociation_moves_client(self):
        network = Network()
        network.add_ap("ap1")
        network.add_ap("ap2")
        network.add_client("u1")
        network.set_link_snr("ap1", "u1", 15.0)
        network.set_link_snr("ap2", "u1", 15.0)
        network.associate("u1", "ap1")
        network.associate("u1", "ap2")
        assert network.clients_of("ap1") == ()
        assert network.clients_of("ap2") == ("u1",)

    def test_associate_without_link_rejected(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        with pytest.raises(AssociationError):
            network.associate("u1", "ap1")

    def test_disassociate_is_idempotent(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        network.disassociate("u1")  # no-op, no error

    def test_set_channel_validates(self):
        network = Network()
        network.add_ap("ap1")
        network.set_channel("ap1", Channel(36))
        assert network.channel_assignment["ap1"] == Channel(36)
        with pytest.raises(TopologyError):
            network.set_channel("ap1", "36")
        with pytest.raises(TopologyError):
            network.set_channel("ghost", Channel(36))

    def test_snapshot_shape(self):
        network = Network()
        network.add_ap("ap1")
        network.add_client("u1")
        network.set_link_snr("ap1", "u1", 15.0)
        network.associate("u1", "ap1")
        network.set_channel("ap1", Channel(36, 40))
        snapshot = network.snapshot()
        assert snapshot["associations"] == {"u1": "ap1"}
        assert "40 MHz" in snapshot["channels"]["ap1"]


class TestExplicitConflicts:
    def test_declared_edges_stored(self):
        network = Network()
        network.add_ap("a")
        network.add_ap("b")
        network.set_explicit_conflicts([("a", "b")])
        assert network.explicit_conflicts == {frozenset(("a", "b"))}

    def test_self_conflict_rejected(self):
        network = Network()
        network.add_ap("a")
        with pytest.raises(TopologyError):
            network.set_explicit_conflicts([("a", "a")])

    def test_unknown_ap_rejected(self):
        network = Network()
        network.add_ap("a")
        with pytest.raises(TopologyError):
            network.set_explicit_conflicts([("a", "ghost")])

    def test_empty_conflicts_mean_isolation(self):
        network = Network()
        network.add_ap("a")
        network.set_explicit_conflicts([])
        assert network.explicit_conflicts == set()
