"""Fault-tolerance tests for the fleet executor: timeout, retry, crash.

The helper algorithms are registered at import time so that forked
worker processes inherit them (the documented contract of
``register_algorithm``).
"""

import os
import time

from repro.fleet import SweepSpec, register_algorithm, run_sweep
from repro.fleet.executor import _run_acorn

_FLAKY_CALLS = []


def _sleepy(scenario, traffic, rng):
    """Outlive any reasonable per-job budget."""
    time.sleep(30)


def _flaky(scenario, traffic, rng):
    """Crash on the first attempt, then behave (serial-only helper)."""
    _FLAKY_CALLS.append(1)
    if len(_FLAKY_CALLS) < 2:
        raise RuntimeError("transient fault")
    return _run_acorn(scenario, traffic, rng)


def _suicidal(scenario, traffic, rng):
    """Kill the worker process outright (breaks the pool)."""
    os._exit(1)


register_algorithm("test_sleepy", _sleepy)
register_algorithm("test_flaky", _flaky)
register_algorithm("test_suicidal", _suicidal)


def _spec(algorithm):
    return SweepSpec(scenarios=("topology1",), seeds=(0,), algorithms=(algorithm,))


class TestTimeout:
    def test_serial_timeout_with_bounded_retries(self):
        start = time.perf_counter()
        store = run_sweep(
            _spec("test_sleepy"), workers=1, timeout_s=0.2, retries=2, backoff_s=0.01
        )
        elapsed = time.perf_counter() - start
        result = store.results()[0]
        assert result.status == "timeout"
        assert result.attempts == 3
        assert "wall-clock" in result.error
        assert elapsed < 10.0  # three 0.2 s budgets, not three 30 s sleeps

    def test_parallel_timeout(self):
        store = run_sweep(
            _spec("test_sleepy"), workers=2, timeout_s=0.2, retries=0, backoff_s=0.01
        )
        result = store.results()[0]
        assert result.status == "timeout"
        assert result.attempts == 1


class TestRetry:
    def test_transient_crash_is_retried_serially(self):
        _FLAKY_CALLS.clear()
        store = run_sweep(_spec("test_flaky"), workers=1, retries=2, backoff_s=0.01)
        result = store.results()[0]
        assert result.status == "ok"
        assert result.attempts == 2

    def test_exhausted_retries_record_the_crash(self):
        _FLAKY_CALLS.clear()
        store = run_sweep(_spec("test_sleepy"), workers=1, timeout_s=0.1, retries=0)
        result = store.results()[0]
        assert result.status == "timeout"
        assert result.attempts == 1


class TestBrokenPool:
    def test_pool_is_rebuilt_after_worker_death(self):
        spec = SweepSpec(
            scenarios=("topology1",),
            seeds=(0,),
            algorithms=("test_suicidal", "acorn"),
        )
        store = run_sweep(spec, workers=2, retries=1, backoff_s=0.01)
        assert len(store) == 2
        by_algorithm = {r.algorithm: r for r in store.results()}
        assert by_algorithm["test_suicidal"].status == "crashed"
        assert by_algorithm["acorn"].status == "ok"


class TestPrecompiledPayloads:
    """Compiled-scenario shipping: same results, wrong payloads rejected."""

    def _spec(self):
        return SweepSpec(
            scenarios=(
                "topology1",
                ("random", {"n_aps": 4, "n_clients": 8}),
            ),
            seeds=(0, 1),
            algorithms=("acorn",),
        )

    @staticmethod
    def _key(store):
        results = sorted(store.results(), key=lambda r: r.job_id)
        return [r.deterministic_dict() for r in results]

    def test_precompile_matches_rebuild_path(self):
        baseline = run_sweep(self._spec(), workers=1, precompile=False)
        compiled = run_sweep(self._spec(), workers=1, precompile=True)
        assert self._key(compiled) == self._key(baseline)

    def test_precompile_matches_across_pool(self):
        baseline = run_sweep(self._spec(), workers=1, precompile=False)
        pooled = run_sweep(self._spec(), workers=2, precompile=True)
        assert self._key(pooled) == self._key(baseline)

    def test_compiled_scenario_round_trip(self):
        from repro.fleet import CompiledScenario, payload_key
        from repro.net import network_fingerprint

        job = self._spec().expand()[0]
        payload = CompiledScenario.from_job(job)
        assert payload.matches(job)
        rebuilt = payload.to_scenario()
        reference = job.build_scenario()
        assert network_fingerprint(rebuilt.network) == network_fingerprint(
            reference.network
        )
        assert rebuilt.client_order == reference.client_order
        assert payload.key == payload_key(job)

    def test_mismatched_payload_fails_the_job(self):
        from repro.fleet import CompiledScenario, SweepSpec
        from repro.fleet.executor import execute_job

        job = self._spec().expand()[0]
        other_spec = SweepSpec(
            scenarios=("dense",), seeds=(0,), algorithms=("acorn",)
        )
        wrong = CompiledScenario.from_job(other_spec.expand()[0])
        assert not wrong.matches(job)
        result = execute_job(job, payload=wrong)
        assert result.status == "failed"
        assert "payload" in result.error


class TestProfiledSweep:
    """``profile=True``: traces ride the journal, never the fingerprint."""

    def _spec(self):
        return SweepSpec(
            scenarios=("topology1",), seeds=(0, 1), algorithms=("acorn",)
        )

    def test_profile_attaches_traces_without_changing_results(self):
        baseline = run_sweep(self._spec(), workers=1)
        profiled = run_sweep(self._spec(), workers=1, profile=True)
        assert profiled.fingerprint() == baseline.fingerprint()
        for result in profiled.results():
            assert result.trace is not None
            assert result.trace["metrics"]["counters"]["alloc.starts"] > 0
            assert result.deterministic_dict() == baseline.get(
                result.job_id
            ).deterministic_dict()
        for result in baseline.results():
            assert result.trace is None

    def test_resume_survives_torn_trace_payload(self, tmp_path):
        """A SIGKILL mid-flush can cut a record inside its trace blob;

        resume must still reload every intact completed job."""
        journal = tmp_path / "journal.jsonl"
        first = run_sweep(
            self._spec(), workers=1, journal_path=str(journal), profile=True
        )
        assert len(first) == 2
        lines = journal.read_text().splitlines()
        record_line = lines[-1]
        cut = record_line.index('"trace"') + len('"trace": {"metr')
        with journal.open("a") as handle:
            handle.write(record_line[:cut])  # torn duplicate, no newline
        resumed = run_sweep(
            self._spec(),
            workers=1,
            journal_path=str(journal),
            resume=True,
            profile=True,
        )
        assert resumed.reloaded == 2
        assert resumed.fingerprint() == first.fingerprint()
        for result in resumed.results():
            assert result.trace is not None

    def test_journal_trace_merges_worker_payloads(self, tmp_path):
        from repro.obs import journal_trace

        journal = tmp_path / "journal.jsonl"
        run_sweep(
            self._spec(), workers=1, journal_path=str(journal), profile=True
        )
        merged = journal_trace(journal)
        counters = merged["metrics"]["counters"]
        assert counters["fleet.jobs.ok"] == 2
        assert counters["alloc.starts"] >= 2
        assert merged["metrics"]["histograms"]["fleet.job_seconds"]["count"] == 2
        assert any(
            record["name"] == "controller.configure"
            for record in merged["spans"]
        )
