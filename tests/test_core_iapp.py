"""Tests for the IAPP coordination registry."""

import pytest

from repro.core.iapp import IappRegistry
from repro.errors import AllocationError, TopologyError
from repro.net.channels import Channel


class TestAnnouncements:
    def test_announce_and_query(self):
        registry = IappRegistry()
        registry.announce("ap1", Channel(36), ["u1", "u2"])
        announcement = registry.announcement("ap1")
        assert announcement.channel == Channel(36)
        assert announcement.client_ids == ("u1", "u2")

    def test_refresh_replaces_state(self):
        registry = IappRegistry()
        registry.announce("ap1", Channel(36))
        registry.announce("ap1", Channel(44, 48))
        assert registry.announcement("ap1").channel == Channel(44, 48)
        assert registry.known_aps == ("ap1",)

    def test_sequence_numbers_increase(self):
        registry = IappRegistry()
        first = registry.announce("ap1", Channel(36))
        second = registry.announce("ap2", Channel(40))
        assert second.sequence > first.sequence

    def test_withdraw(self):
        registry = IappRegistry()
        registry.announce("ap1", Channel(36))
        registry.withdraw("ap1")
        assert registry.known_aps == ()
        with pytest.raises(AllocationError):
            registry.announcement("ap1")

    def test_withdraw_unknown_rejected(self):
        with pytest.raises(AllocationError):
            IappRegistry().withdraw("ghost")

    def test_invalid_channel_rejected(self):
        with pytest.raises(TopologyError):
            IappRegistry().announce("ap1", "36")


class TestOccupancyQueries:
    def make_registry(self) -> IappRegistry:
        registry = IappRegistry()
        registry.announce("a", Channel(36))
        registry.announce("b", Channel(36, 40))
        registry.announce("c", Channel(44))
        return registry

    def test_occupants_by_conflict(self):
        registry = self.make_registry()
        assert registry.occupants_of(Channel(36)) == {"a", "b"}
        assert registry.occupants_of(Channel(40)) == {"b"}
        assert registry.occupants_of(Channel(44, 48)) == {"c"}

    def test_exclude_self(self):
        registry = self.make_registry()
        assert registry.occupants_of(Channel(36), exclude="a") == {"b"}

    def test_co_channel_count_for_algorithm2(self):
        """The quantity the throughput estimator needs: |con| if the AP
        moved to a candidate colour."""
        registry = self.make_registry()
        assert registry.co_channel_count("a", Channel(36)) == 1  # just b
        assert registry.co_channel_count("a", Channel(48)) == 0
        assert registry.co_channel_count("c", Channel(36, 40)) == 2

    def test_channel_map_snapshot(self):
        registry = self.make_registry()
        snapshot = registry.channel_map()
        assert snapshot == {
            "a": Channel(36),
            "b": Channel(36, 40),
            "c": Channel(44),
        }

    def test_invalid_channel_query_rejected(self):
        with pytest.raises(TopologyError):
            self.make_registry().occupants_of(42)


class TestLog:
    def test_message_count_tracks_overhead(self):
        registry = IappRegistry()
        for _ in range(3):
            registry.announce("ap1", Channel(36))
        registry.announce("ap2", Channel(40))
        assert registry.message_count == 4

    def test_history_filter(self):
        registry = IappRegistry()
        registry.announce("ap1", Channel(36))
        registry.announce("ap2", Channel(40))
        registry.announce("ap1", Channel(44))
        assert len(registry.history()) == 3
        assert len(registry.history("ap1")) == 2
        assert all(a.ap_id == "ap1" for a in registry.history("ap1"))


class TestIntegrationWithNetwork:
    def test_registry_matches_contenders(self):
        """The IAPP occupancy view agrees with the interference-graph
        contention used by the evaluator, for fully mutually audible
        APs (the regime IAPP coordination covers)."""
        from repro.net import Network, build_interference_graph
        from repro.net.interference import contenders

        network = Network()
        registry = IappRegistry()
        channels = {
            "a": Channel(36),
            "b": Channel(36, 40),
            "c": Channel(44),
        }
        for ap_id, channel in channels.items():
            network.add_ap(ap_id)
            network.set_channel(ap_id, channel)
            registry.announce(ap_id, channel)
        network.set_explicit_conflicts(
            [("a", "b"), ("a", "c"), ("b", "c")]
        )
        graph = build_interference_graph(network)
        for ap_id in channels:
            from_graph = contenders(graph, ap_id, channels)
            from_registry = registry.occupants_of(
                channels[ap_id], exclude=ap_id
            )
            assert from_graph == from_registry
