"""Tests for width-decision hysteresis (flap suppression)."""

import pytest

from repro.core.controller import Acorn
from repro.errors import AssociationError
from repro.net.channels import Channel, ChannelPlan
from repro.net.topology import Network


def single_cell(snr_db: float) -> "tuple[Network, Acorn]":
    network = Network()
    network.add_ap("ap")
    network.add_client("u")
    network.set_link_snr("ap", "u", snr_db)
    network.associate("u", "ap")
    network.set_explicit_conflicts([])
    network.set_channel("ap", Channel(36, 40))
    acorn = Acorn(network, ChannelPlan())
    return network, acorn


class TestHysteresis:
    def test_zero_hysteresis_matches_plain_decision(self):
        network, acorn = single_cell(25.0)
        plain = acorn.opportunistic_width("ap")
        with_current = acorn.opportunistic_width(
            "ap", current=Channel(36, 40), hysteresis=0.0
        )
        assert plain == with_current

    def test_marginal_improvement_does_not_flip(self):
        """At the crossover (40 MHz barely ahead), a narrow current
        width sticks under hysteresis."""
        crossover_snr = self._find_crossover()
        network, acorn = single_cell(crossover_snr + 0.2)
        # Without hysteresis the (slightly better) 40 MHz wins...
        assert acorn.opportunistic_width("ap").is_bonded
        # ...but a 20 MHz current survives a 30 % switching margin.
        sticky = acorn.opportunistic_width(
            "ap", current=Channel(36), hysteresis=0.3
        )
        assert not sticky.is_bonded

    def test_clear_improvement_still_flips(self):
        # At 30 dB the bonded width wins by ~1.24x (MAC overhead caps
        # the gain); a 15 % margin lets the upgrade through.
        network, acorn = single_cell(30.0)
        decided = acorn.opportunistic_width(
            "ap", current=Channel(36), hysteresis=0.15
        )
        assert decided.is_bonded

    def test_collapse_still_flips_to_narrow(self):
        network, acorn = single_cell(1.0)  # 40 MHz dead
        decided = acorn.opportunistic_width(
            "ap", current=Channel(36, 40), hysteresis=0.3
        )
        assert not decided.is_bonded

    def test_invalid_current_rejected(self):
        network, acorn = single_cell(20.0)
        with pytest.raises(AssociationError):
            acorn.opportunistic_width("ap", current=Channel(44))

    def test_negative_hysteresis_rejected(self):
        network, acorn = single_cell(20.0)
        with pytest.raises(AssociationError):
            acorn.opportunistic_width("ap", hysteresis=-0.1)

    @staticmethod
    def _find_crossover() -> float:
        """Lowest SNR (0.1 dB grid) where the bonded width wins."""
        network, acorn = single_cell(0.0)
        for tenth in range(0, 400):
            snr = tenth / 10.0
            network.set_link_snr("ap", "u", snr)
            acorn.model._decision_cache.clear()
            if acorn.opportunistic_width("ap").is_bonded:
                return snr
        raise AssertionError("no crossover found")


class TestMobilityWithHysteresis:
    def test_hysteresis_reduces_switch_count(self):
        from repro.sim.mobility import run_mobility_experiment

        def switches(trace):
            widths = trace.acorn_width_mhz
            return sum(1 for a, b in zip(widths, widths[1:]) if a != b)

        plain = run_mobility_experiment("away", duration_s=50.0)
        damped = run_mobility_experiment(
            "away", duration_s=50.0, hysteresis=0.2
        )
        assert switches(damped) <= switches(plain)
        # It must still switch eventually — hysteresis delays, not blocks.
        assert damped.acorn_width_mhz[-1] == 20
