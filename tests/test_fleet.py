"""Tests for the repro.fleet sweep orchestration subsystem."""

import json
import pathlib

import numpy as np
import pytest

from repro.errors import ConfigurationError, FleetError
from repro.fleet import (
    Job,
    JobJournal,
    JobResult,
    ResultStore,
    SweepSpec,
    algorithm_names,
    execute_job,
    run_sweep,
)
from repro.sim.scenario import (
    make_scenario,
    random_enterprise,
    scenario_accepts,
    scenario_names,
)


class TestScenarioRegistry:
    def test_names_include_all_builders(self):
        names = scenario_names()
        for name in ("topology1", "topology2", "dense", "random", "office", "triple"):
            assert name in names

    def test_make_scenario_resolves(self):
        scenario = make_scenario("random", n_aps=3, n_clients=6, seed=9)
        assert len(scenario.network.ap_ids) == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            make_scenario("nosuch")

    def test_unknown_kwarg_raises(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            make_scenario("topology1", seed=3)

    def test_scenario_accepts(self):
        assert scenario_accepts("random", "seed")
        assert not scenario_accepts("topology1", "seed")


class TestSweepSpec:
    def test_grid_expansion_count(self):
        spec = SweepSpec(
            scenarios=("topology1", "dense"),
            seeds=(0, 1, 2),
            algorithms=("acorn", "kauffmann"),
        )
        jobs = spec.expand()
        assert len(jobs) == 2 * 3 * 2
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(scenarios=("dense",), seeds=(0, 1))
        assert spec.expand() == spec.expand()

    def test_seed_streams_are_distinct_and_reproducible(self):
        spec = SweepSpec(scenarios=("topology1",), seeds=(0, 1, 2))
        jobs = spec.expand()
        draws = [job.rng().integers(0, 2**63) for job in jobs]
        assert len(set(draws)) == len(draws)
        again = [job.rng().integers(0, 2**63) for job in spec.expand()]
        assert draws == again

    def test_seed_reaches_seeded_factories_only(self):
        spec = SweepSpec(scenarios=("topology1", "random"), seeds=(7,))
        jobs = spec.expand()
        by_name = {job.scenario: job for job in jobs}
        assert "seed" not in by_name["topology1"].scenario_kwargs
        assert by_name["random"].scenario_kwargs["seed"] == 7

    def test_explicit_jobs_appended(self):
        spec = SweepSpec(
            scenarios=("topology1",),
            seeds=(0,),
            explicit=({"scenario": "dense", "algorithm": "kauffmann", "seed": 4},),
        )
        jobs = spec.expand()
        assert len(jobs) == 2
        assert jobs[-1].scenario == "dense"
        assert jobs[-1].algorithm == "kauffmann"

    def test_unknown_algorithm_rejected(self):
        spec = SweepSpec(scenarios=("topology1",), algorithms=("nosuch",))
        with pytest.raises(FleetError, match="unknown algorithm"):
            spec.expand()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FleetError, match="unregistered scenario"):
            SweepSpec(scenarios=("nosuch",)).expand()

    def test_bad_traffic_rejected(self):
        with pytest.raises(FleetError, match="traffic"):
            SweepSpec(scenarios=("topology1",), traffic=("carrier-pigeon",))

    def test_fingerprint_depends_on_axes(self):
        base = SweepSpec(scenarios=("topology1",), seeds=(0,))
        assert base.fingerprint() == SweepSpec(
            scenarios=("topology1",), seeds=(0,)
        ).fingerprint()
        assert base.fingerprint() != SweepSpec(
            scenarios=("topology1",), seeds=(1,)
        ).fingerprint()
        assert base.fingerprint() != SweepSpec(
            scenarios=("topology1",), seeds=(0,), entropy=1
        ).fingerprint()

    def test_job_round_trips_through_dict(self):
        job = SweepSpec(scenarios=("dense",), seeds=(3,)).expand()[0]
        assert Job.from_dict(job.to_dict()) == job


class TestSeedDeterminism:
    """The satellite: explicit reproducibility guarantees."""

    def test_random_enterprise_reproducible_per_seed(self):
        first = random_enterprise(n_aps=4, n_clients=8, seed=13)
        second = random_enterprise(n_aps=4, n_clients=8, seed=13)
        assert first.network._snr_overrides == second.network._snr_overrides
        assert first.network.explicit_conflicts == second.network.explicit_conflicts
        assert first.client_order == second.client_order
        different = random_enterprise(n_aps=4, n_clients=8, seed=14)
        assert first.network._snr_overrides != different.network._snr_overrides

    def test_same_spec_gives_bit_identical_journals(self, tmp_path):
        spec = SweepSpec(
            scenarios=("topology1", ("random", {"n_aps": 3, "n_clients": 6})),
            seeds=(0, 1),
        )
        stores = []
        payloads = []
        for run in range(2):
            path = tmp_path / f"run{run}.jsonl"
            stores.append(run_sweep(spec, workers=1, journal_path=str(path)))
            lines = path.read_text().splitlines()
            records = [json.loads(line) for line in lines[1:]]
            # Strip the wall-clock bookkeeping; everything else must match.
            for record in records:
                record.pop("elapsed_s")
            payloads.append(sorted(records, key=lambda r: r["job_id"]))
        assert payloads[0] == payloads[1]
        assert stores[0].fingerprint() == stores[1].fingerprint()


class TestExecuteJob:
    def _job(self, **overrides):
        spec = SweepSpec(scenarios=("topology1",), seeds=(0,))
        job = spec.expand()[0]
        return Job.from_dict({**job.to_dict(), **overrides})

    def test_ok_result_metrics(self):
        result = execute_job(self._job())
        assert result.ok
        assert result.metrics["total_mbps"] > 0
        assert 0 < result.metrics["jain"] <= 1
        assert result.metrics["n_aps"] == 2
        assert result.per_ap_mbps.keys() == {"AP1", "AP2"}

    def test_library_error_is_captured_not_raised(self):
        result = execute_job(self._job(scenario_kwargs={"seed": 1}))
        assert result.status == "failed"
        assert "ConfigurationError" in result.error

    def test_unknown_algorithm_is_failed(self):
        result = execute_job(self._job(algorithm="nosuch"))
        assert result.status == "failed"
        assert "unknown algorithm" in result.error

    def test_algorithm_registry_names(self):
        names = algorithm_names()
        for name in ("acorn", "acorn_refine", "kauffmann"):
            assert name in names


class TestJournal:
    def test_load_missing_file(self, tmp_path):
        header, records = JobJournal(tmp_path / "absent.jsonl").load()
        assert header is None and records == []

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        spec = SweepSpec(scenarios=("topology1",), seeds=(0, 1))
        run_sweep(spec, workers=1, journal_path=str(path))
        full = path.read_text()
        lines = full.splitlines(keepends=True)
        path.write_text("".join(lines[:2]) + lines[2][:20])
        journal = JobJournal(path)
        header, records = journal.load()
        assert header is not None
        assert len(records) == 1
        done = journal.completed_results(spec.fingerprint())
        assert len(done) == 1

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "header", "version": 1}\nGARBAGE\n{"type": "job"}\n')
        with pytest.raises(FleetError, match="corrupt journal"):
            JobJournal(path).load()

    def test_mismatched_spec_fingerprint_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_sweep(
            SweepSpec(scenarios=("topology1",), seeds=(0,)),
            journal_path=str(path),
        )
        other = SweepSpec(scenarios=("topology1",), seeds=(1,))
        with pytest.raises(FleetError, match="different sweep"):
            JobJournal(path).completed_results(other.fingerprint())

    def test_record_requires_start(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        with pytest.raises(FleetError, match="not open"):
            journal.record(
                JobResult(job_id="x", scenario="s", algorithm="a", traffic="udp", seed=0)
            )


class TestResultStore:
    def _result(self, job_id, algorithm="acorn", total=100.0, status="ok"):
        return JobResult(
            job_id=job_id,
            scenario="topology1",
            algorithm=algorithm,
            traffic="udp",
            seed=0,
            status=status,
            metrics={"total_mbps": total, "jain": 0.8} if status == "ok" else {},
        )

    def test_fingerprint_is_order_independent(self):
        a = ResultStore()
        b = ResultStore()
        first, second = self._result("01"), self._result("02", total=50.0)
        a.add(first), a.add(second)
        b.add(second), b.add(first)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_excludes_bookkeeping(self):
        a, b = ResultStore(), ResultStore()
        fast = self._result("01")
        slow = self._result("01")
        slow.elapsed_s, slow.attempts = 99.0, 3
        a.add(fast), b.add(slow)
        assert a.fingerprint() == b.fingerprint()

    def test_summary_and_table(self):
        store = ResultStore()
        store.extend(
            [
                self._result("01", "acorn", 100.0),
                self._result("02", "acorn", 120.0),
                self._result("03", "kauffmann", 80.0),
                self._result("04", "kauffmann", 0.0, status="failed"),
            ]
        )
        summary = store.summary()
        assert summary["acorn"]["mean"] == pytest.approx(110.0)
        assert summary["kauffmann"]["n"] == 1
        table = store.summary_table()
        assert "acorn" in table and "kauffmann" in table
        assert len(store.failed) == 1

    def test_metric_ecdf(self):
        store = ResultStore()
        store.extend([self._result(f"{i:02d}", total=float(i)) for i in range(5)])
        values, probabilities = store.metric_ecdf("total_mbps")
        assert values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert probabilities[-1] == 1.0

    def test_json_round_trip(self, tmp_path):
        store = ResultStore(spec_fingerprint="abc")
        store.add(self._result("01"))
        path = tmp_path / "store.json"
        store.to_json(path)
        loaded = ResultStore.from_json(path)
        assert loaded.spec_fingerprint == "abc"
        assert loaded.fingerprint() == store.fingerprint()


class TestRunSweep:
    SPEC = SweepSpec(
        scenarios=("topology1", "dense"),
        seeds=(0, 1),
        algorithms=("acorn",),
    )

    def test_serial_and_parallel_are_bit_identical(self, tmp_path):
        serial = run_sweep(self.SPEC, workers=1)
        parallel = run_sweep(self.SPEC, workers=2)
        assert len(serial) == len(parallel) == 4
        assert serial.fingerprint() == parallel.fingerprint()

    def test_resume_skips_completed_jobs(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        reference = run_sweep(self.SPEC, workers=1, journal_path=str(path))
        lines = path.read_text().splitlines(keepends=True)
        # Keep header + 2 records, leave a torn tail (SIGKILL mid-write).
        path.write_text("".join(lines[:3]) + lines[3][:25])
        executed = []
        resumed = run_sweep(
            self.SPEC,
            workers=1,
            journal_path=str(path),
            resume=True,
            progress=lambda result: executed.append(result.job_id),
        )
        assert resumed.reloaded == 2
        assert len(executed) == 2
        assert resumed.fingerprint() == reference.fingerprint()

    def test_resume_with_complete_journal_recomputes_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        reference = run_sweep(self.SPEC, workers=1, journal_path=str(path))
        executed = []
        resumed = run_sweep(
            self.SPEC,
            workers=1,
            journal_path=str(path),
            resume=True,
            progress=lambda result: executed.append(result.job_id),
        )
        assert executed == []
        assert resumed.reloaded == 4
        assert resumed.fingerprint() == reference.fingerprint()

    def test_invalid_worker_count(self):
        with pytest.raises(FleetError, match="workers"):
            run_sweep(self.SPEC, workers=0)

    def test_failed_jobs_are_recorded_not_raised(self):
        spec = SweepSpec(
            scenarios=("topology1",),
            seeds=(0,),
            explicit=(
                {
                    "scenario": "random",
                    "scenario_kwargs": {"n_aps": 0, "n_clients": 1},
                },
            ),
        )
        store = run_sweep(spec, workers=1)
        assert len(store) == 2
        assert len(store.failed) == 1
        assert store.failed[0].status == "failed"
