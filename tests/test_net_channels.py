"""Tests for channels-as-colours and the channel plan."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ChannelError
from repro.net.channels import (
    FIVE_GHZ_20MHZ_CHANNELS,
    Channel,
    ChannelPlan,
)
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ


def any_channel():
    """Hypothesis strategy over the full default palette."""
    return st.sampled_from(ChannelPlan().all_channels())


class TestChannel:
    def test_basic_width(self):
        assert Channel(36).width_mhz == 20
        assert not Channel(36).is_bonded

    def test_bonded_width(self):
        channel = Channel(36, 40)
        assert channel.width_mhz == 40
        assert channel.is_bonded

    def test_params_by_width(self):
        assert Channel(36).params is OFDM_20MHZ
        assert Channel(36, 40).params is OFDM_40MHZ

    def test_self_bond_rejected(self):
        with pytest.raises(ChannelError):
            Channel(36, 36)

    def test_constituents(self):
        assert Channel(44).constituents == frozenset({44})
        assert Channel(44, 48).constituents == frozenset({44, 48})

    def test_basic_basic_no_conflict(self):
        assert not Channel(36).conflicts_with(Channel(40))

    def test_same_channel_conflicts(self):
        assert Channel(36).conflicts_with(Channel(36))

    def test_composite_conflicts_with_constituents(self):
        """The paper's colour rule: {c_i, c_j} conflicts with c_i and c_j."""
        bonded = Channel(36, 40)
        assert bonded.conflicts_with(Channel(36))
        assert bonded.conflicts_with(Channel(40))
        assert not bonded.conflicts_with(Channel(44))

    def test_overlapping_composites_conflict(self):
        assert Channel(36, 40).conflicts_with(Channel(36, 40))
        assert not Channel(36, 40).conflicts_with(Channel(44, 48))

    def test_conflict_with_non_channel_rejected(self):
        with pytest.raises(ChannelError):
            Channel(36).conflicts_with("not a channel")

    def test_primary_only_fallback(self):
        bonded = Channel(52, 56)
        narrow = bonded.primary_only()
        assert narrow == Channel(52)
        assert bonded.conflicts_with(narrow)

    def test_str_representation(self):
        assert "40 MHz" in str(Channel(36, 40))
        assert "20 MHz" in str(Channel(36))

    @given(any_channel(), any_channel())
    def test_conflict_symmetry(self, a, b):
        assert a.conflicts_with(b) == b.conflicts_with(a)

    @given(any_channel())
    def test_conflict_reflexive(self, channel):
        assert channel.conflicts_with(channel)


class TestChannelPlan:
    def test_default_plan_counts(self):
        plan = ChannelPlan()
        assert plan.n_basic == 12
        assert len(plan.channels_40()) == 6
        assert len(plan.all_channels()) == 18

    def test_palette_order_basic_first(self):
        palette = ChannelPlan().all_channels()
        widths = [channel.width_mhz for channel in palette]
        assert widths == sorted(widths)

    def test_subset_two_channels(self):
        plan = ChannelPlan().subset(2)
        assert plan.channel_numbers == (36, 40)
        assert len(plan.channels_40()) == 1

    def test_subset_odd_count_drops_incomplete_pair(self):
        plan = ChannelPlan().subset(3)
        assert plan.channel_numbers == (36, 40, 44)
        # 44 has no partner 48 in the subset.
        assert len(plan.channels_40()) == 1

    def test_subset_invalid_rejected(self):
        with pytest.raises(ChannelError):
            ChannelPlan().subset(0)
        with pytest.raises(ChannelError):
            ChannelPlan().subset(13)

    def test_empty_plan_rejected(self):
        with pytest.raises(ChannelError):
            ChannelPlan([])

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ChannelError):
            ChannelPlan([36, 36])

    def test_custom_channels_pair_consecutively(self):
        plan = ChannelPlan([1, 2, 3, 4])
        assert {tuple(sorted(c.constituents)) for c in plan.channels_40()} == {
            (1, 2),
            (3, 4),
        }

    def test_bonded_pair_outside_plan_rejected(self):
        with pytest.raises(ChannelError):
            ChannelPlan([36, 40], bonded_pairs=[(44, 48)])

    def test_five_ghz_channel_numbers(self):
        assert FIVE_GHZ_20MHZ_CHANNELS[0] == 36
        assert len(FIVE_GHZ_20MHZ_CHANNELS) == 12

    def test_len_and_repr(self):
        plan = ChannelPlan().subset(4)
        assert len(plan) == 6  # 4 basic + 2 bonded
        assert "20MHz" in repr(plan)

    @given(st.integers(min_value=1, max_value=12))
    def test_subset_palette_sizes(self, n):
        plan = ChannelPlan().subset(n)
        assert plan.n_basic == n
        assert len(plan.channels_40()) <= n // 2
