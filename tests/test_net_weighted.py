"""Tests for the weighted (partial-overlap) throughput model."""

import pytest

from repro.net import Channel, ChannelPlan, build_interference_graph
from repro.net.throughput import ThroughputModel, WeightedThroughputModel
from repro.net.topology import Network


def two_ap_network() -> Network:
    network = Network()
    network.add_ap("a")
    network.add_ap("b")
    for client_id, ap_id in (("ua", "a"), ("ub", "b")):
        network.add_client(client_id)
        network.set_link_snr(ap_id, client_id, 24.0)
        network.associate(client_id, ap_id)
    network.set_explicit_conflicts([("a", "b")])
    return network


class TestReduction:
    @pytest.mark.parametrize(
        "assignment",
        [
            {"a": Channel(36), "b": Channel(36)},       # co-channel
            {"a": Channel(36), "b": Channel(44)},       # orthogonal
            {"a": Channel(36, 40), "b": Channel(40)},   # composite/constituent
        ],
    )
    def test_orthogonal_or_cochannel_matches_binary(self, assignment):
        """On the 5 GHz plan (overlaps all 0, 0.5 or 1) the weighted
        model matches or refines the binary one predictably."""
        network = two_ap_network()
        graph = build_interference_graph(network)
        binary = ThroughputModel()
        weighted = WeightedThroughputModel()
        binary_value = binary.aggregate_mbps(network, graph, assignment=assignment)
        weighted_value = weighted.aggregate_mbps(
            network, graph, assignment=assignment
        )
        if assignment["a"].conflicts_with(assignment["b"]):
            # Weighted contention can only be as bad or milder than
            # binary (partial coverage costs less than full).
            assert weighted_value >= binary_value - 1e-9
        else:
            assert weighted_value == pytest.approx(binary_value)

    def test_fully_cochannel_identical(self):
        network = two_ap_network()
        graph = build_interference_graph(network)
        assignment = {"a": Channel(36), "b": Channel(36)}
        assert WeightedThroughputModel().aggregate_mbps(
            network, graph, assignment=assignment
        ) == pytest.approx(
            ThroughputModel().aggregate_mbps(network, graph, assignment=assignment)
        )


class TestPartialOverlap:
    def test_24ghz_partial_neighbours_graded(self):
        """On 2.4 GHz, moving a neighbour further away in channel
        number gradually releases airtime — binary conflicts cannot
        express this."""
        network = two_ap_network()
        graph = build_interference_graph(network)
        weighted = WeightedThroughputModel()
        values = []
        for b_channel in (1, 2, 3, 4, 6):
            assignment = {"a": Channel(1), "b": Channel(b_channel)}
            values.append(
                weighted.aggregate_mbps(network, graph, assignment=assignment)
            )
        assert values == sorted(values)
        # Channel 6 is fully orthogonal to 1: no contention left.
        isolated = weighted.aggregate_mbps(
            network, graph, assignment={"a": Channel(1), "b": Channel(6)}
        )
        assert values[-1] == pytest.approx(isolated)

    def test_constituent_pays_half_against_bonded(self):
        """A 20 MHz AP under a neighbouring 40 MHz signal: the bonded
        neighbour covers its whole band (weight 1 for it), while the
        bonded AP only loses half its band (weight 0.5)."""
        network = two_ap_network()
        graph = build_interference_graph(network)
        weighted = WeightedThroughputModel()
        assignment = {"a": Channel(36, 40), "b": Channel(36)}
        report = weighted.evaluate(network, graph, assignment=assignment)
        share_bonded = weighted.medium_share_of(graph, "a", assignment)
        share_narrow = weighted.medium_share_of(graph, "b", assignment)
        assert share_bonded == pytest.approx(1 / 1.5)
        assert share_narrow == pytest.approx(0.5)
        assert report.total_mbps > 0

    def test_allocation_works_with_weighted_model(self):
        """Algorithm 2 runs unchanged on the weighted objective."""
        from repro.core import allocate_channels

        network = two_ap_network()
        graph = build_interference_graph(network)
        plan = ChannelPlan([1, 2, 3, 4, 5, 6], bonded_pairs=[])
        weighted = WeightedThroughputModel()
        result = allocate_channels(network, graph, plan, weighted, rng=0)
        # With six 2.4 GHz channels available it finds an orthogonal
        # pair (1/6-style separation).
        from repro.net.overlap import spectral_overlap_fraction

        a_channel = result.assignment["a"]
        b_channel = result.assignment["b"]
        assert spectral_overlap_fraction(a_channel, b_channel) == 0.0
