"""Golden-number regression tests.

These pin the headline quantities of the reproduction (with loose
tolerances) so that refactors of the substrate cannot silently shift
the results EXPERIMENTS.md documents. If a deliberate model change
moves a number, update both the constant here and EXPERIMENTS.md.
"""

import pytest

from repro import Acorn
from repro.baselines import KauffmannController
from repro.link.quality import transition_snr_db
from repro.phy.modulation import QAM16, QAM64, QPSK
from repro.phy.noise import cb_snr_penalty_db
from repro.sim.scenario import dense_triangle, topology1, topology2


class TestPhysicsConstants:
    def test_cb_penalty(self):
        assert cb_snr_penalty_db() == pytest.approx(3.09, abs=0.02)

    @pytest.mark.parametrize(
        "modulation,rate,expected",
        [
            (QPSK, 3 / 4, 12.0),
            (QAM16, 3 / 4, 18.7),
            (QAM64, 3 / 4, 24.6),
            (QAM64, 5 / 6, 26.3),
        ],
    )
    def test_transition_snrs(self, modulation, rate, expected):
        assert transition_snr_db(modulation, rate) == pytest.approx(
            expected, abs=0.5
        )


class TestScenarioGoldenNumbers:
    def test_topology1_totals(self):
        scenario = topology1()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assert result.total_mbps == pytest.approx(75.2, rel=0.05)
        assert result.report.per_ap_mbps["AP1"] == pytest.approx(6.1, rel=0.1)
        assert result.report.per_ap_mbps["AP2"] == pytest.approx(69.1, rel=0.05)

    def test_topology2_totals(self):
        acorn_scenario = topology2()
        acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
        acorn_total = acorn.configure(acorn_scenario.client_order).total_mbps
        baseline_scenario = topology2()
        baseline = KauffmannController(
            baseline_scenario.network, baseline_scenario.plan
        )
        baseline_total = baseline.configure(
            baseline_scenario.client_order
        ).total_mbps
        assert acorn_total == pytest.approx(209.4, rel=0.05)
        assert baseline_total == pytest.approx(202.0, rel=0.05)

    def test_dense_triangle_total(self):
        """Fig 11's headline: 81.0 Mbps here vs 79.98 in the paper."""
        scenario = dense_triangle()
        acorn = Acorn(scenario.network, scenario.plan, seed=7)
        result = acorn.configure(scenario.client_order)
        assert result.total_mbps == pytest.approx(81.0, rel=0.05)

    def test_mobility_away_endpoint(self):
        from repro.sim.mobility import run_mobility_experiment

        trace = run_mobility_experiment("away")
        assert trace.acorn_mbps[-1] == pytest.approx(15.4, rel=0.1)
        assert trace.fixed_mbps[-1] == pytest.approx(0.0, abs=0.5)


class TestThroughputCeilings:
    def test_fig6a_ceilings(self):
        """The simulated testbed's ceilings: ~63 Mbps at 20 MHz,
        ~84 Mbps at 40 MHz (paper: ~60/~80)."""
        from repro.link.budget import LinkBudget
        from repro.mac.airtime import cell_throughput_mbps, client_delay_s
        from repro.mcs.selection import optimal_mcs
        from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ

        budget = LinkBudget.from_snr20(40.0)
        ceilings = {}
        for params in (OFDM_20MHZ, OFDM_40MHZ):
            decision = optimal_mcs(budget.subcarrier_snr_db(params), params)
            delay = client_delay_s(decision.nominal_rate_mbps, decision.per)
            ceilings[params.name] = cell_throughput_mbps([delay])
        assert ceilings["HT20"] == pytest.approx(62.8, rel=0.03)
        assert ceilings["HT40"] == pytest.approx(83.8, rel=0.03)
