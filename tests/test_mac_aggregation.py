"""Tests for the A-MPDU aggregation model."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.aggregation import MAX_AGGREGATION, AmpduModel
from repro.mac.dcf import DEFAULT_TIMINGS


class TestGeometry:
    def test_mpdu_count_capped_by_window(self):
        model = AmpduModel(max_aggregation=16)
        assert model.mpdus_per_ampdu(500) == 16

    def test_mpdu_count_capped_by_bytes(self):
        model = AmpduModel()
        # 65535 / (1504) = 43 full 1500-byte MPDUs fit.
        assert model.mpdus_per_ampdu(1500) == 43

    def test_at_least_one_mpdu(self):
        model = AmpduModel()
        assert model.mpdus_per_ampdu(60_000) == 1

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AmpduModel().mpdus_per_ampdu(0)

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            AmpduModel(max_aggregation=0)
        with pytest.raises(ConfigurationError):
            AmpduModel(max_aggregation=MAX_AGGREGATION + 1)


class TestAirtime:
    def test_aggregation_beats_per_packet_dcf(self):
        """The whole point: amortised per-packet airtime shrinks."""
        model = AmpduModel()
        for rate in (65.0, 135.0, 270.0):
            aggregated = model.packet_airtime_s(rate)
            plain = DEFAULT_TIMINGS.packet_airtime_s(12_000, rate)
            assert aggregated < plain

    def test_efficiency_approaches_one_at_high_aggregation(self):
        """43 aggregated MPDUs leave only delimiter + amortised fixed
        overhead: ~89 % efficiency at MCS 15 vs ~33 % without."""
        model = AmpduModel()
        assert model.mac_efficiency(270.0) > 0.85
        assert DEFAULT_TIMINGS.mac_efficiency(12_000, 270.0) < 0.5

    def test_no_aggregation_similar_to_plain_dcf(self):
        from repro.mac.dcf import MacTimings

        model = AmpduModel(max_aggregation=1)
        aggregated = model.packet_airtime_s(65.0)
        # Compare against unbursted DCF (the model's burst_size=2 would
        # otherwise amortise overhead the single-MPDU A-MPDU cannot).
        plain = MacTimings(burst_size=1).packet_airtime_s(12_000, 65.0)
        # Same structure modulo block-ACK-vs-ACK and delimiter bytes.
        assert aggregated == pytest.approx(plain, rel=0.1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            AmpduModel().ampdu_airtime_s(0.0)

    def test_efficiency_gain_larger_at_high_rates(self):
        """Fast links are the ones suffocated by fixed overhead, so
        aggregation helps them disproportionately."""
        model = AmpduModel()
        gain_slow = DEFAULT_TIMINGS.mac_efficiency(12_000, 13.0) / 1.0
        slow_ratio = model.mac_efficiency(13.0) / DEFAULT_TIMINGS.mac_efficiency(
            12_000, 13.0
        )
        fast_ratio = model.mac_efficiency(270.0) / DEFAULT_TIMINGS.mac_efficiency(
            12_000, 270.0
        )
        assert fast_ratio > slow_ratio
        del gain_slow


class TestClientDelay:
    def test_loss_free_matches_packet_airtime(self):
        model = AmpduModel()
        assert model.client_delay_s(130.0, 0.0) == pytest.approx(
            model.packet_airtime_s(130.0), rel=1e-6
        )

    def test_dead_link_infinite(self):
        assert AmpduModel().client_delay_s(130.0, 1.0) == float("inf")

    def test_selective_repeat_cheaper_than_full_retry(self):
        """Block-ACK retransmission only re-pays the payload, not the
        contention/preamble overhead."""
        model = AmpduModel()
        per = 0.5
        aggregated = model.client_delay_s(130.0, per)
        from repro.mac.airtime import client_delay_s

        plain = client_delay_s(130.0, per)
        assert aggregated < plain / 2

    def test_invalid_per_rejected(self):
        with pytest.raises(ConfigurationError):
            AmpduModel().client_delay_s(130.0, 1.5)

    def test_delay_monotone_in_per(self):
        model = AmpduModel()
        delays = [model.client_delay_s(65.0, p / 10) for p in range(10)]
        assert delays == sorted(delays)
