"""Differential harness: instrumentation must change nothing.

The :mod:`repro.obs` contract is that an activated :class:`Tracer` is
*transparent*: every allocator, refinement pass and baseline run under
a full tracer produces results bit-identical (float ``==``, dict ``==``)
to the same run under the default :class:`NullTracer`. The harness
mirrors ``tests/test_compiled_state.py``'s oracle pattern — every
registered scenario plus a seeded sweep of random enterprises — and
additionally asserts the tracer actually *recorded* something, so a
silently dead instrumentation path cannot fake transparency.
"""

import random

import pytest

from repro.baselines.kauffmann import KauffmannController
from repro.core.allocation import allocate_channels, random_assignment
from repro.core.controller import Acorn
from repro.core.refinement import refine_associations
from repro.net import ThroughputModel, build_interference_graph
from repro.obs import NULL_TRACER, Tracer, activate, active_tracer
from repro.sim.scenario import SCENARIOS, random_enterprise

RANDOM_SEEDS = tuple(range(8))
ALL_CASES = [("scenario", name) for name in SCENARIOS] + [
    ("random", seed) for seed in RANDOM_SEEDS
]


def registered(name):
    """A registered scenario with every client associated."""
    scenario = SCENARIOS[name]()
    network = scenario.network
    for client_id in network.client_ids:
        candidates = network.candidate_aps(client_id)
        if candidates:
            network.associate(client_id, candidates[0])
    return network, build_interference_graph(network), scenario.plan


def random_case(seed, n_aps=5, n_clients=12):
    """A random enterprise with deterministic random associations."""
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=seed
    )
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    return network, build_interference_graph(network), scenario.plan


def build_case(kind, key):
    return registered(key) if kind == "scenario" else random_case(key)


def run_observed(work):
    """``work()`` under a fresh full tracer; returns (result, payload)."""
    tracer = Tracer()
    with activate(tracer):
        result = work()
    assert active_tracer() is NULL_TRACER
    return result, tracer.to_payload()


def assert_recorded(payload):
    """The tracer must have seen real work — not a dead seam."""
    assert payload["spans"] or payload["metrics"]["counters"]


class TestGreedyTransparency:
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_allocation_is_bit_identical(self, kind, key):
        def run():
            network, graph, plan = build_case(kind, key)
            model = ThroughputModel()
            initial = random_assignment(network.ap_ids, plan, 3)
            return allocate_channels(
                network, graph, plan, model,
                initial=initial, rng=7, restarts=2,
            )

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.assignment == baseline.assignment
        assert observed.aggregate_mbps == baseline.aggregate_mbps
        assert observed.rounds == baseline.rounds
        assert observed.evaluations == baseline.evaluations
        assert observed.history == baseline.history
        assert_recorded(payload)
        assert payload["metrics"]["counters"]["alloc.starts"] == 2


class TestRefinementTransparency:
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_refinement_is_bit_identical(self, kind, key):
        def run():
            network, graph, plan = build_case(kind, key)
            model = ThroughputModel()
            initial = random_assignment(network.ap_ids, plan, 3)
            allocation = allocate_channels(
                network, graph, plan, model, initial=initial, rng=7
            )
            for ap_id, channel in allocation.assignment.items():
                network.set_channel(ap_id, channel)
            return refine_associations(network, graph, model, apply=False)

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.associations == baseline.associations
        assert observed.aggregate_mbps == baseline.aggregate_mbps
        assert observed.moves == baseline.moves
        assert observed.evaluations == baseline.evaluations
        assert_recorded(payload)
        assert "refine.evaluations" in payload["metrics"]["counters"]


class TestControllerTransparency:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_acorn_configure_is_bit_identical(self, name):
        def run():
            scenario = SCENARIOS[name]()
            acorn = Acorn(scenario.network, scenario.plan, seed=11)
            return acorn.configure(scenario.client_order)

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.total_mbps == baseline.total_mbps
        assert (
            observed.allocation.assignment == baseline.allocation.assignment
        )
        assert observed.report.per_ap_mbps == baseline.report.per_ap_mbps
        assert observed.association_order == baseline.association_order
        assert_recorded(payload)
        names = [record["name"] for record in payload["spans"]]
        assert "controller.configure" in names


class TestBatchedTransparency:
    @pytest.mark.parametrize(("kind", "key"), ALL_CASES)
    def test_batched_allocation_is_bit_identical(self, kind, key):
        def run():
            network, graph, plan = build_case(kind, key)
            model = ThroughputModel()
            initial = random_assignment(network.ap_ids, plan, 3)
            return allocate_channels(
                network, graph, plan, model,
                initial=initial, rng=7, restarts=2,
                engine_mode="batched",
            )

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.assignment == baseline.assignment
        assert observed.aggregate_mbps == baseline.aggregate_mbps
        assert observed.rounds == baseline.rounds
        assert observed.evaluations == baseline.evaluations
        assert observed.history == baseline.history
        assert_recorded(payload)
        counters = payload["metrics"]["counters"]
        assert counters["alloc.starts"] == 2
        assert counters["alloc.batch_evaluations"] > 0
        assert counters["alloc.batch_steps"] > 0
        assert "alloc.batch_size" in payload["metrics"]["histograms"]

    def test_batched_refinement_counts_evaluations(self):
        def run():
            network, graph, plan = build_case("random", 1)
            model = ThroughputModel()
            allocation = allocate_channels(
                network, graph, plan, model, rng=5, engine_mode="batched"
            )
            for ap_id, channel in allocation.assignment.items():
                network.set_channel(ap_id, channel)
            return refine_associations(
                network, graph, model, apply=False, engine_mode="batched"
            )

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.associations == baseline.associations
        assert observed.aggregate_mbps == baseline.aggregate_mbps
        assert observed.evaluations == baseline.evaluations
        counters = payload["metrics"]["counters"]
        assert 0 < counters["refine.batch_evaluations"] <= observed.evaluations


class TestKauffmannTransparency:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_kauffmann_configure_is_bit_identical(self, name):
        def run():
            scenario = SCENARIOS[name]()
            controller = KauffmannController(scenario.network, scenario.plan)
            return controller.configure(scenario.client_order)

        baseline = run()
        observed, payload = run_observed(run)
        assert observed.total_mbps == baseline.total_mbps
        assert observed.assignment == baseline.assignment
        assert observed.report.per_ap_mbps == baseline.report.per_ap_mbps
        assert_recorded(payload)
        counters = payload["metrics"]["counters"]
        assert counters["kauffmann.contention_scans"] > 0
