"""Invariant-check evaluation inside the fleet executor.

The contract under test: a failing ``check(...)`` marks the job's
*result* (violations are data — ``status`` stays ``"ok"``), the
verdicts are part of the deterministic payload (so they survive
``--resume`` from a torn journal and merge bit-identically at any
worker count), and ``ResultStore.check_violations()`` surfaces them
for the CLI gate.
"""

import pytest

from repro.fleet import SweepSpec, run_sweep
from repro.fleet.executor import execute_job
from repro.sim.builder import scenario
from repro.sim.checks import (
    all_clients_admissible,
    min_interference_degree,
    min_total_mbps,
)
from repro.sim.scenario import SCENARIOS


def _register(chain):
    compiled = chain.register()
    return compiled.name


@pytest.fixture()
def violating_scenario():
    """One isolated AP declaring an impossible degree floor."""
    name = _register(
        scenario("chk_degree_fail")
        .ap("AP1")
        .client("c0")
        .link("AP1", "c0", 25.0)
        .no_conflicts()
        .check(min_interference_degree(5))
    )
    yield name
    SCENARIOS.pop(name, None)


@pytest.fixture()
def result_violating_scenario():
    """A healthy cell declaring an unreachable throughput floor."""
    name = _register(
        scenario("chk_total_fail")
        .ap("AP1")
        .client("c0")
        .link("AP1", "c0", 25.0)
        .no_conflicts()
        .check(min_total_mbps(1e9))
    )
    yield name
    SCENARIOS.pop(name, None)


@pytest.fixture()
def passing_scenario():
    """Checks that hold — verdicts recorded, nothing violated."""
    name = _register(
        scenario("chk_pass")
        .ap("AP1")
        .client("c0")
        .link("AP1", "c0", 25.0)
        .no_conflicts()
        .check(all_clients_admissible())
        .check(min_total_mbps(0.001))
    )
    yield name
    SCENARIOS.pop(name, None)


class TestCheckEvaluationInWorkers:
    def test_network_check_violation_marks_result_not_crash(
        self, violating_scenario
    ):
        spec = SweepSpec(scenarios=(violating_scenario,), seeds=(0,))
        result = execute_job(spec.expand()[0])
        assert result.ok
        assert result.metrics["total_mbps"] > 0
        failures = result.check_failures
        assert [f["name"] for f in failures] == ["min_interference_degree(5)"]
        assert "vs floor 5" in failures[0]["detail"]

    def test_result_check_violation_marks_result_not_crash(
        self, result_violating_scenario
    ):
        spec = SweepSpec(scenarios=(result_violating_scenario,), seeds=(0,))
        result = execute_job(spec.expand()[0])
        assert result.ok
        assert [f["name"] for f in result.check_failures] == [
            "min_total_mbps(1e+09)"
        ]

    def test_passing_checks_are_recorded_verdicts(self, passing_scenario):
        spec = SweepSpec(scenarios=(passing_scenario,), seeds=(0,))
        result = execute_job(spec.expand()[0])
        assert result.ok
        assert len(result.checks) == 2
        assert all(v["passed"] for v in result.checks)
        assert result.check_failures == []

    def test_store_surfaces_violations_in_job_id_order(
        self, violating_scenario, passing_scenario
    ):
        spec = SweepSpec(
            scenarios=(violating_scenario, passing_scenario), seeds=(0, 1)
        )
        store = run_sweep(spec, workers=1)
        violations = store.check_violations()
        assert len(violations) == 2  # only the violating scenario's seeds
        assert all(v["scenario"] == violating_scenario for v in violations)
        assert all(v["check"] == "min_interference_degree(5)" for v in violations)
        job_ids = [v["job_id"] for v in violations]
        assert job_ids == sorted(job_ids)


class TestCheckDeterminism:
    def test_checks_merge_identically_at_any_worker_count(
        self, violating_scenario, passing_scenario
    ):
        spec = SweepSpec(
            scenarios=(violating_scenario, passing_scenario), seeds=(0, 1)
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert (
            serial.check_violations() == parallel.check_violations()
        )

    def test_checks_survive_resume_from_torn_journal(
        self, violating_scenario, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        spec = SweepSpec(scenarios=(violating_scenario,), seeds=(0, 1, 2))
        reference = run_sweep(spec, workers=1, journal_path=str(path))
        assert len(reference.check_violations()) == 3
        # Keep the header + one record, tear the second mid-line
        # (a SIGKILL mid-checkpoint), then resume.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]) + lines[2][:25])
        resumed = run_sweep(
            spec,
            workers=1,
            journal_path=str(path),
            resume=True,
        )
        assert resumed.reloaded == 1
        assert resumed.fingerprint() == reference.fingerprint()
        assert resumed.check_violations() == reference.check_violations()
        # The reloaded record carried its verdicts through the journal.
        reloaded = resumed.results()[0]
        assert reloaded.check_failures

    def test_verdicts_are_part_of_the_deterministic_payload(
        self, violating_scenario
    ):
        spec = SweepSpec(scenarios=(violating_scenario,), seeds=(0,))
        result = execute_job(spec.expand()[0])
        payload = result.deterministic_dict()
        assert payload["checks"] == result.checks
        roundtrip = type(result).from_dict(result.to_dict())
        assert roundtrip.deterministic_dict() == payload
