"""Property-style equivalence suite for the incremental evaluation engine.

The contract under test: after *any* sequence of trial / commit /
rollback / reset / association-move operations, a
:class:`repro.net.DeltaEvaluator`'s aggregate equals a fresh full
:meth:`repro.net.ThroughputModel.evaluate` of the same configuration to
1e-9 — for the base binary-conflict model, the
:class:`~repro.net.WeightedThroughputModel` overlap path, and the
uplink model's neighbourhood tier.
"""

import random

import pytest

from repro.core.allocation import random_assignment
from repro.errors import AllocationError
from repro.net import (
    Channel,
    ChannelPlan,
    DeltaEvaluator,
    FullEvaluationEngine,
    ThroughputModel,
    UplinkThroughputModel,
    WeightedThroughputModel,
    build_interference_graph,
)
from repro.sim.scenario import random_enterprise

SCENARIO_SEEDS = tuple(range(20))
TOLERANCE = 1e-9


def build_scenario(seed, n_aps=5, n_clients=12):
    """A random enterprise with deterministic random associations."""
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=seed
    )
    network = scenario.network
    rng = random.Random(seed)
    for client_id in network.client_ids:
        candidates = list(network.candidate_aps(client_id, -8.0))
        if candidates:
            network.associate(client_id, rng.choice(candidates))
    graph = build_interference_graph(network)
    return network, graph, scenario.plan


def full_aggregate(model, network, graph, engine):
    """Ground truth: a fresh full evaluation of the engine's state."""
    return model.evaluate(
        network,
        graph,
        assignment=engine.assignment,
        associations=engine.associations,
    ).total_mbps


def drive_random_walk(model, network, graph, plan, seed, steps=30):
    """Random operation sequence, checking the contract at every step."""
    rng = random.Random(7919 + seed)
    palette = plan.all_channels()
    ap_ids = network.ap_ids
    client_ids = [c for c in network.client_ids if c in network.associations]
    engine = DeltaEvaluator(
        network, graph, model=model, assignment=random_assignment(ap_ids, plan, seed)
    )
    reference = full_aggregate(model, network, graph, engine)
    assert engine.aggregate_mbps == pytest.approx(reference, abs=TOLERANCE)
    can_rollback = False
    for _ in range(steps):
        op = rng.choice(
            ("trial", "commit", "commit", "rollback", "reset", "move")
        )
        if op == "trial":
            ap_id = rng.choice(ap_ids)
            channel = rng.choice(palette)
            before = engine.aggregate_mbps
            value = engine.trial(ap_id, channel)
            what_if = engine.assignment
            what_if[ap_id] = channel
            truth = model.evaluate(
                network, graph, assignment=what_if, associations=engine.associations
            ).total_mbps
            assert value == pytest.approx(truth, abs=TOLERANCE)
            # A trial must not disturb the committed state.
            assert engine.aggregate_mbps == before
        elif op == "commit":
            ap_id = rng.choice(ap_ids)
            channel = rng.choice(palette)
            engine.commit(ap_id, channel)
            can_rollback = True
        elif op == "rollback" and can_rollback:
            engine.rollback()
            can_rollback = False
        elif op == "reset":
            engine.reset(random_assignment(ap_ids, plan, rng.randint(0, 10**6)))
            can_rollback = False
        elif op == "move" and client_ids:
            client_id = rng.choice(client_ids)
            target_ap = rng.choice(ap_ids)
            value = engine.trial_move(client_id, target_ap)
            what_if = engine.associations
            what_if[client_id] = target_ap
            truth = model.evaluate(
                network,
                graph,
                assignment=engine.assignment,
                associations=what_if,
            ).total_mbps
            assert value == pytest.approx(truth, abs=TOLERANCE)
            if rng.random() < 0.5:
                engine.commit_move(client_id, target_ap)
                can_rollback = True
        assert engine.aggregate_mbps == pytest.approx(
            full_aggregate(model, network, graph, engine), abs=TOLERANCE
        )
    return engine


class TestStructuralEquivalence:
    @pytest.mark.parametrize("seed", SCENARIO_SEEDS)
    def test_base_model_walks(self, seed):
        network, graph, plan = build_scenario(seed)
        engine = drive_random_walk(
            ThroughputModel(), network, graph, plan, seed
        )
        assert engine.tier == "structural"

    @pytest.mark.parametrize("seed", SCENARIO_SEEDS)
    def test_weighted_model_walks(self, seed):
        """The partial-overlap medium share follows the same contract."""
        network, graph, plan = build_scenario(seed)
        engine = drive_random_walk(
            WeightedThroughputModel(), network, graph, plan, seed
        )
        assert engine.tier == "structural"

    def test_trial_equals_commit_exactly(self):
        """A trial predicts the post-commit aggregate bit-for-bit."""
        network, graph, plan = build_scenario(3)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 3),
        )
        rng = random.Random(3)
        palette = plan.all_channels()
        for _ in range(25):
            ap_id = rng.choice(network.ap_ids)
            channel = rng.choice(palette)
            predicted = engine.trial(ap_id, channel)
            assert engine.commit(ap_id, channel) == predicted


class TestNeighborhoodTier:
    @pytest.mark.parametrize("seed", (0, 7, 13))
    def test_uplink_model_walks(self, seed):
        """Uplink X_a couples to neighbour cells' clients: the engine
        must fall back to neighbourhood recomputation and stay exact."""
        network, graph, plan = build_scenario(seed)
        engine = drive_random_walk(
            UplinkThroughputModel(), network, graph, plan, seed
        )
        assert engine.tier == "neighborhood"


class TestFullTierFallback:
    def test_custom_evaluate_stays_exact(self):
        """A model overriding evaluate() wholesale is never fast-pathed."""

        class DoubledModel(ThroughputModel):
            def evaluate(self, network, graph, assignment=None, associations=None):
                report = super().evaluate(network, graph, assignment, associations)
                doubled = {ap: 2 * x for ap, x in report.per_ap_mbps.items()}
                return type(report)(
                    per_ap_mbps=doubled,
                    per_client_mbps=report.per_client_mbps,
                    assignment=report.assignment,
                    associations=report.associations,
                )

        network, graph, plan = build_scenario(5)
        model = DoubledModel()
        engine = drive_random_walk(model, network, graph, plan, 5, steps=8)
        assert engine.tier == "full"


class TestEngineMechanics:
    def test_rollback_without_commit_raises(self):
        network, graph, plan = build_scenario(1)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 1),
        )
        with pytest.raises(AllocationError):
            engine.rollback()

    def test_double_rollback_raises(self):
        network, graph, plan = build_scenario(1)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 1),
        )
        engine.commit(network.ap_ids[0], Channel(36, 40))
        engine.rollback()
        with pytest.raises(AllocationError):
            engine.rollback()

    def test_unknown_ap_rejected(self):
        network, graph, plan = build_scenario(1)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 1),
        )
        with pytest.raises(AllocationError):
            engine.trial("nonexistent", Channel(36))
        with pytest.raises(AllocationError):
            engine.commit("nonexistent", Channel(36))

    def test_profiles_cached_across_trials(self):
        """Repeating a trial costs no new link mathematics."""
        network, graph, plan = build_scenario(2)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 2),
        )
        ap_id = network.ap_ids[0]
        channel = plan.all_channels()[0]
        engine.trial(ap_id, channel)
        builds = engine.stats.cell_profile_builds
        for _ in range(10):
            engine.trial(ap_id, channel)
        assert engine.stats.cell_profile_builds == builds

    def test_profiles_survive_reset(self):
        """Multi-restart searches reuse warm caches."""
        network, graph, plan = build_scenario(2)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 2),
        )
        palette = plan.all_channels()
        for channel in palette:
            for ap_id in network.ap_ids:
                engine.trial(ap_id, channel)
        builds = engine.stats.cell_profile_builds
        engine.reset(random_assignment(network.ap_ids, plan, 99))
        for channel in palette:
            for ap_id in network.ap_ids:
                engine.trial(ap_id, channel)
        assert engine.stats.cell_profile_builds == builds

    def test_stats_counters_track_operations(self):
        network, graph, plan = build_scenario(4)
        engine = DeltaEvaluator(
            network,
            graph,
            assignment=random_assignment(network.ap_ids, plan, 4),
        )
        engine.trial(network.ap_ids[0], Channel(36, 40))
        engine.commit(network.ap_ids[0], Channel(44, 48))
        engine.rollback()
        stats = engine.stats.as_dict()
        assert stats["trials"] == 1
        assert stats["commits"] == 1
        assert stats["rollbacks"] == 1


class TestFullEvaluationAdapter:
    def test_adapter_matches_callable(self):
        """The EvaluateFn adapter reproduces the callable exactly and
        charges no extra evaluation for committing a tried winner."""
        network, graph, plan = build_scenario(6)
        model = ThroughputModel()
        calls = {"n": 0}

        def evaluate(assignment):
            calls["n"] += 1
            return model.aggregate_mbps(
                network, graph, assignment=dict(assignment)
            )

        adapter = FullEvaluationEngine(evaluate)
        start = random_assignment(network.ap_ids, plan, 6)
        adapter.reset(start)
        assert calls["n"] == 1
        value = adapter.trial(network.ap_ids[0], Channel(36, 40))
        assert calls["n"] == 2
        committed = adapter.commit(network.ap_ids[0], Channel(36, 40))
        assert calls["n"] == 2  # memoised: no re-evaluation
        assert committed == value
        adapter.rollback()
        assert adapter.aggregate_mbps == pytest.approx(
            evaluate(start), abs=TOLERANCE
        )
