"""The re-allocation periodicity trade-off behind T = 30 minutes.

Section 4.2: re-allocating too often wastes throughput on switching
overhead; too rarely leaves the configuration stale as the client
population churns. Fig 9's association durations (median ~31 min) set
the churn timescale; this bench sweeps the period under that exact
workload and shows the paper's choice sits at the sweet spot.
"""

import pytest

from repro.analysis.tables import render_table
from repro.net import ChannelPlan, Network
from repro.sim.longrun import ChurnConfig, run_long_run

PERIODS_MIN = (5, 15, 30, 60, 120)
DURATION_S = 4 * 3600.0


def build_wlan() -> Network:
    network = Network()
    for index in range(4):
        network.add_ap(f"AP{index + 1}")
    network.set_explicit_conflicts(
        [("AP1", "AP2"), ("AP2", "AP3"), ("AP3", "AP4")]
    )
    return network


def run_period(period_min: float):
    config = ChurnConfig(
        duration_s=DURATION_S, period_s=period_min * 60.0, seed=3
    )
    return run_long_run(build_wlan(), ChannelPlan().subset(6), config)


@pytest.fixture(scope="module")
def sweep():
    return {period: run_period(period) for period in PERIODS_MIN}


def test_periodicity_tradeoff(benchmark, sweep, emit):
    rows = [
        [
            period,
            result.mean_throughput_mbps,
            result.n_reallocations,
            result.downtime_s,
            result.n_arrivals,
            result.n_departures,
        ]
        for period, result in sorted(sweep.items())
    ]
    table = render_table(
        [
            "period (min)",
            "mean throughput (Mbps)",
            "re-allocations",
            "downtime (s)",
            "arrivals",
            "departures",
        ],
        rows,
        float_format=".1f",
        title=(
            "Re-allocation periodicity under CRAWDAD-calibrated churn\n"
            "Paper: T = 30 min from the median association duration"
        ),
    )
    emit("periodicity", table)

    means = {period: sweep[period].mean_throughput_mbps for period in PERIODS_MIN}
    # Too-frequent loses to the paper's band (switching overhead)...
    assert means[30] > means[5]
    # ...and so does too-rare (stale configuration under churn).
    assert means[30] > means[120]
    # The staleness penalty grows monotonically past the sweet spot.
    assert means[30] >= means[60] >= means[120]
    # Downtime accounting is linear in the re-allocation count.
    assert sweep[5].n_reallocations > 5 * sweep[30].n_reallocations

    benchmark.pedantic(
        lambda: run_period(30).mean_throughput_mbps, rounds=1, iterations=1
    )
