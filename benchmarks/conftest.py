"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure from the paper:
it computes the experiment, prints the same rows/series the paper
reports (bypassing pytest capture so the output lands in the terminal
and in ``benchmarks/results/``), asserts the *shape* of the result, and
times the computational kernel via pytest-benchmark.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from _shared import missing_baseline_message

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
ALLOCATOR_BASELINE = pathlib.Path(__file__).parent.parent / "BENCH_allocator.json"


@pytest.fixture(scope="session")
def allocator_baseline():
    """The checked-in ``BENCH_allocator.json``, or a skip when absent.

    The skip reason is the same phrasing the ``bench_*`` scripts print
    on exit 2 (``benchmarks/_shared.py``), so a missing baseline reads
    identically everywhere.
    """
    if not ALLOCATOR_BASELINE.exists():
        pytest.skip(missing_baseline_message(ALLOCATOR_BASELINE))
    return json.loads(ALLOCATOR_BASELINE.read_text())


@pytest.fixture(scope="session")
def emit():
    """Print a report block to the real stdout and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        block = f"\n{'=' * 72}\n{text}\n{'=' * 72}\n"
        sys.__stdout__.write(block)
        sys.__stdout__.flush()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
