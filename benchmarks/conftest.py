"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure from the paper:
it computes the experiment, prints the same rows/series the paper
reports (bypassing pytest capture so the output lands in the terminal
and in ``benchmarks/results/``), asserts the *shape* of the result, and
times the computational kernel via pytest-benchmark.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a report block to the real stdout and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        block = f"\n{'=' * 72}\n{text}\n{'=' * 72}\n"
        sys.__stdout__.write(block)
        sys.__stdout__.flush()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
