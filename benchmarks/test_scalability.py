"""Scalability of Algorithm 2 — the practical side of NP-completeness.

The allocation problem is NP-complete, so the brute-force optimum
explodes (|palette|^n assignments); ACORN's greedy pass costs
O(rounds x n x |palette|) evaluations and converges in a couple of
rounds. This bench measures both curves — and, since the allocator now
runs on the incremental DeltaEvaluator, it also times the same greedy
run through the full-evaluation adapter to put a number on the
engine's speedup (the (16, 40) and (24, 60) sizes only became
affordable with the engine).
"""

import time

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.core import allocate_channels
from repro.core.allocation import greedy_allocate, random_assignment
from repro.net import ThroughputModel
from repro.sim.scenario import random_enterprise

SIZES = ((4, 10), (6, 15), (8, 20), (10, 24), (16, 40), (24, 60))


def run_size(n_aps: int, n_clients: int, time_full: bool = True):
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=31
    )
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=5)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph
    start_assignment = random_assignment(scenario.network.ap_ids, scenario.plan, 5)

    # Warm the model's rate-decision cache and module-level PHY tables
    # once so both timed paths face identical cache state — the engine
    # performs far fewer link computations than the full path, so
    # running it cold would bill the shared warm-up to whichever path
    # happens to go first.
    allocate_channels(
        scenario.network, graph, scenario.plan, model,
        initial=start_assignment, rng=5,
    )

    start = time.perf_counter()
    result = allocate_channels(
        scenario.network,
        graph,
        scenario.plan,
        model,
        initial=start_assignment,
        rng=5,
    )
    delta_elapsed = time.perf_counter() - start

    full_elapsed = float("nan")
    if time_full:
        # The pre-engine path: every candidate pays a full-network
        # evaluation through the EvaluateFn adapter. Shares the model
        # instance (and so its rate-decision cache) with the delta run:
        # the cache keys round SNR to 3 decimals, so differently-warmed
        # instances can disagree at the ~1e-5 level.

        def evaluate(assignment):
            return model.aggregate_mbps(
                scenario.network, graph, assignment=dict(assignment)
            )

        start = time.perf_counter()
        full_result = greedy_allocate(
            scenario.network.ap_ids,
            scenario.plan.all_channels(),
            evaluate,
            initial=start_assignment,
        )
        full_elapsed = time.perf_counter() - start
        # Same arithmetic, same trajectory: the engine is a pure
        # optimisation, not an approximation.
        assert full_result.assignment == result.assignment
        assert full_result.aggregate_mbps == pytest.approx(
            result.aggregate_mbps, abs=1e-9
        )

    return result, delta_elapsed, full_elapsed, len(scenario.plan)


@pytest.fixture(scope="module")
def measurements():
    return {size: run_size(*size) for size in SIZES}


def test_allocation_scalability(benchmark, measurements, emit):
    rows = []
    for (n_aps, n_clients), (result, delta_s, full_s, palette) in sorted(
        measurements.items()
    ):
        exhaustive = palette**n_aps
        rows.append(
            [
                n_aps,
                n_clients,
                result.rounds,
                result.evaluations,
                exhaustive,
                full_s * 1e3,
                delta_s * 1e3,
                full_s / delta_s,
                result.aggregate_mbps,
            ]
        )
    table = render_table(
        [
            "APs",
            "clients",
            "rounds",
            "greedy evals",
            "brute-force size",
            "full (ms)",
            "delta (ms)",
            "speedup",
            "Y (Mbps)",
        ],
        rows,
        float_format=".1f",
        title=(
            "Algorithm 2 scalability — full-evaluation vs delta-engine "
            "wall-clock, and the exponential exhaustive search"
        ),
    )
    emit("scalability", table)

    evaluations = [
        measurements[size][0].evaluations for size in sorted(measurements)
    ]
    # Greedy work grows, but polynomially: ~n^2 * |palette| here, which
    # for a 6x AP increase must stay orders of magnitude under the
    # explosion of the exhaustive search.
    assert evaluations == sorted(evaluations)
    assert evaluations[-1] < 100 * evaluations[0]
    # Convergence in a handful of rounds regardless of size.
    for (result, _, _, _) in measurements.values():
        assert result.rounds <= 4
    benchmark.pedantic(lambda: run_size(4, 10, time_full=False), rounds=2, iterations=1)


def test_delta_speedup_grows_with_density(measurements):
    """The engine's win must be real and grow with the neighbourhood-
    to-network ratio: at n >= 10 APs the full path is at least 5x
    slower; the largest size must beat the smallest."""
    speedups = {
        size: full_s / delta_s
        for size, (_, delta_s, full_s, _) in measurements.items()
    }
    for (n_aps, _), speedup in speedups.items():
        if n_aps >= 10:
            assert speedup >= 5.0, f"speedup {speedup:.1f}x at {n_aps} APs"
    assert speedups[SIZES[-1]] > speedups[SIZES[0]]
