"""Scalability of Algorithm 2 — the practical side of NP-completeness.

The allocation problem is NP-complete, so the brute-force optimum
explodes (|palette|^n assignments); ACORN's greedy pass costs
O(rounds x n x |palette|) evaluations and converges in a couple of
rounds. This bench measures both curves so the complexity claim is a
number, not a sentence.
"""

import time

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.core import allocate_channels
from repro.net import ThroughputModel
from repro.sim.scenario import random_enterprise

SIZES = ((4, 10), (6, 15), (8, 20), (10, 24))


def run_size(n_aps: int, n_clients: int):
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=31
    )
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=5)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph
    start = time.perf_counter()
    result = allocate_channels(scenario.network, graph, scenario.plan, model, rng=5)
    elapsed = time.perf_counter() - start
    return result, elapsed, len(scenario.plan)


@pytest.fixture(scope="module")
def measurements():
    return {size: run_size(*size) for size in SIZES}


def test_allocation_scalability(benchmark, measurements, emit):
    rows = []
    for (n_aps, n_clients), (result, elapsed, palette) in sorted(
        measurements.items()
    ):
        exhaustive = palette**n_aps
        rows.append(
            [
                n_aps,
                n_clients,
                result.rounds,
                result.evaluations,
                exhaustive,
                elapsed * 1e3,
                result.aggregate_mbps,
            ]
        )
    table = render_table(
        [
            "APs",
            "clients",
            "rounds",
            "greedy evals",
            "brute-force size",
            "time (ms)",
            "Y (Mbps)",
        ],
        rows,
        float_format=".1f",
        title=(
            "Algorithm 2 scalability — greedy evaluations vs the "
            "exponential exhaustive search"
        ),
    )
    emit("scalability", table)

    evaluations = [
        measurements[size][0].evaluations for size in sorted(measurements)
    ]
    # Greedy work grows, but polynomially: ~n^2 * |palette| here, which
    # for a 2.5x AP increase must stay well under the 10^13x explosion
    # of the exhaustive search.
    assert evaluations == sorted(evaluations)
    assert evaluations[-1] < 50 * evaluations[0]
    # Convergence in a handful of rounds regardless of size.
    for (result, _, _) in measurements.values():
        assert result.rounds <= 4
    benchmark.pedantic(lambda: run_size(4, 10), rounds=2, iterations=1)
