"""Realistic enterprise floor: ACORN vs [17] behind drywall.

The paper's Fig 10/11 topologies are SNR-specified; this bench runs the
same comparison on a geometric office floor (multi-wall propagation,
corridor APs, one client per room) where the poor/good client mix
*emerges* from the building rather than being scripted — the deployment
a WLAN controller actually meets.
"""

import pytest

from repro import Acorn
from repro.analysis.fairness import throughput_fairness_report
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController
from repro.sim.buildings import FloorPlan, office_floor

# 8x3 rooms behind 10 dB walls with two corridor APs: enough attenuation
# that far rooms sit in the CB-hurts regime, so the width decision
# matters. (A floor where every room stays above ~15 dB makes greedy
# all-40 MHz simply correct — see EXPERIMENTS.md for that negative case
# and the sequential-association caveat it revealed.)
FLOOR = dict(
    rooms_x=8,
    rooms_y=3,
    clients_per_room=1,
    n_aps=2,
    seed=4,
    plan=FloorPlan(wall_loss_db=10.0),
)


def run_both():
    acorn_scenario = office_floor(**FLOOR)
    acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
    acorn_result = acorn.configure(acorn_scenario.client_order)
    baseline_scenario = office_floor(**FLOOR)
    baseline = KauffmannController(
        baseline_scenario.network, baseline_scenario.plan
    )
    baseline_result = baseline.configure(baseline_scenario.client_order)
    return acorn_result, baseline_result


@pytest.fixture(scope="module")
def results():
    return run_both()


def test_office_floor(benchmark, results, emit):
    acorn_result, baseline_result = results
    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        acorn_clients = sum(
            1 for ap in acorn_result.report.associations.values() if ap == ap_id
        )
        rows.append(
            [
                ap_id,
                str(acorn_result.report.assignment[ap_id]),
                acorn_clients,
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
            ]
        )
    rows.append(
        [
            "TOTAL",
            "",
            len(acorn_result.report.associations),
            acorn_result.total_mbps,
            baseline_result.total_mbps,
        ]
    )
    table = render_table(
        ["AP", "ACORN channel", "clients", "ACORN (Mbps)", "[17] (Mbps)"],
        rows,
        float_format=".1f",
        title=(
            "Office floor (8x3 rooms, 10 dB walls, 2 corridor APs): "
            "ACORN vs greedy 40 MHz"
        ),
    )
    emit("office_floor", table)

    # ACORN wins on the emergent topology too.
    assert acorn_result.total_mbps >= baseline_result.total_mbps
    # Everyone in radio range is served.
    assert len(acorn_result.report.associations) >= 20
    # And nobody is starved outright under ACORN.
    acorn_fairness = throughput_fairness_report(
        acorn_result.report.per_client_mbps.values()
    )
    assert acorn_fairness["min"] > 0

    benchmark.pedantic(run_both, rounds=1, iterations=1)
