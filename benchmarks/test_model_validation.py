"""Cross-validation benches: the analytic models vs their ground truth.

Two consistency results that everything else stands on:

1. The analytic MAC model (X = M/ATD + performance anomaly) against the
   packet-level DCF simulation.
2. The analytic coded-BER estimator (union bound) against the real
   K=7 Viterbi codec running over the OFDM chain.
"""

import pytest

from repro.analysis.tables import render_table
from repro.mac.airtime import cell_throughput_mbps, client_delay_s
from repro.mac.dcf import DEFAULT_TIMINGS
from repro.mac.packetsim import SimulatedLink, simulate_cell
from repro.phy.ber import coded_ber
from repro.phy.modulation import QPSK
from repro.phy.ofdm import OFDM_20MHZ
from repro.phy.per import per_from_ber
from repro.warp.codedmac import CodedBerHarness

PACKET_BITS = 8 * 1500


def mac_validation_rows():
    """Analytic vs simulated cell throughput across client mixes."""
    cases = {
        "2 fast": [(130.0, 0.0), (130.0, 0.0)],
        "fast + slow": [(130.0, 0.0), (6.5, 0.0)],
        "fast + lossy": [(130.0, 0.0), (65.0, 0.4)],
        "3-way mix": [(130.0, 0.0), (26.0, 0.1), (6.5, 0.2)],
    }
    rows = []
    for label, mix in cases.items():
        analytic = cell_throughput_mbps(
            [client_delay_s(rate, per) for rate, per in mix]
        )
        links = [
            SimulatedLink(
                client_id=f"u{i}",
                airtime_s=DEFAULT_TIMINGS.packet_airtime_s(PACKET_BITS, rate),
                per=per,
            )
            for i, (rate, per) in enumerate(mix)
        ]
        simulated = simulate_cell(
            links, duration_s=60.0, retry_limit=100, rng=1
        ).cell_throughput_mbps
        rows.append([label, analytic, simulated, simulated / analytic])
    return rows


def test_mac_model_vs_packet_simulation(benchmark, emit):
    rows = mac_validation_rows()
    table = render_table(
        ["client mix", "analytic (Mbps)", "simulated (Mbps)", "ratio"],
        rows,
        float_format=".2f",
        title=(
            "Validation — X = M/ATD + anomaly vs packet-level DCF simulation"
        ),
    )
    emit("validation_mac", table)
    for _, analytic, simulated, ratio in rows:
        assert ratio == pytest.approx(1.0, abs=0.05)
    benchmark.pedantic(mac_validation_rows, rounds=1, iterations=1)


def coded_validation_rows():
    """Union-bound PER estimate vs the real codec over the OFDM chain."""
    rows = []
    packet_bytes = 150
    for snr_db in (4.0, 5.0, 6.0, 8.0):
        estimated_ber = coded_ber(QPSK, 1 / 2, snr_db)
        estimated_per = float(per_from_ber(estimated_ber, packet_bytes))
        harness = CodedBerHarness(OFDM_20MHZ, QPSK, code_rate=1 / 2)
        measured = harness.measure_at_subcarrier_snr(
            snr_db, n_packets=12, packet_bytes=packet_bytes, rng=int(snr_db)
        )
        rows.append([snr_db, estimated_per, measured.per])
    return rows


def test_coded_estimator_vs_viterbi(benchmark, emit):
    rows = coded_validation_rows()
    table = render_table(
        ["SNR (dB)", "union-bound PER", "measured PER (Viterbi)"],
        rows,
        float_format=".3f",
        title=(
            "Validation — ACORN's coded-PER estimator vs the real "
            "K=7 Viterbi decoder end to end"
        ),
    )
    emit("validation_coded", table)
    for snr_db, estimated, measured in rows:
        # The union bound upper-bounds the decoder (a small Monte-Carlo
        # allowance on top).
        assert measured <= estimated + 0.15
    # Both collapse to ~0 above the waterfall.
    assert rows[-1][1] < 0.05 and rows[-1][2] <= 0.05
    # Both are ~1 below it.
    assert rows[0][1] > 0.9

    harness = CodedBerHarness(OFDM_20MHZ, QPSK, code_rate=1 / 2)
    benchmark.pedantic(
        lambda: harness.measure_at_subcarrier_snr(
            6.0, n_packets=2, packet_bytes=100, rng=0
        ),
        rounds=2,
        iterations=1,
    )
