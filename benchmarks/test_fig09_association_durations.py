"""Fig 9: the CDF of user association durations and the choice of T.

The paper mines the CRAWDAD trace (206 APs, 3+ years): more than 90 %
of associations last under 40 minutes, the median is ~31 minutes, and
channel allocation is therefore run every 30 minutes. We regenerate the
CDF from the calibrated synthetic trace (see DESIGN.md for the
substitution) and re-derive the periodicity.
"""

import numpy as np
import pytest

from repro.analysis.stats import ecdf
from repro.analysis.tables import render_table
from repro.traces.associations import (
    recommended_period_s,
    summarize_durations,
    synthesize_association_durations,
)

N_SESSIONS = 50_000


@pytest.fixture(scope="module")
def durations():
    return synthesize_association_durations(N_SESSIONS, rng=2010)


def test_fig9_association_duration_cdf(benchmark, durations, emit):
    values, probabilities = ecdf(durations)
    summary = summarize_durations(durations)
    checkpoints_min = [5, 10, 20, 31, 40, 60, 120]
    rows = []
    for minutes in checkpoints_min:
        seconds = minutes * 60.0
        fraction = float(np.searchsorted(values, seconds) / values.size)
        rows.append([minutes, fraction])
    table = render_table(
        ["duration (min)", "CDF"],
        rows,
        float_format=".3f",
        title=(
            "Fig 9 — CDF of association durations (synthetic CRAWDAD)\n"
            f"median = {summary.median_minutes:.1f} min; "
            "paper: median ~31 min, >90% under 40 min -> T = 30 min"
        ),
    )
    emit("fig09_association_durations", table)

    assert summary.median_minutes == pytest.approx(31.0, rel=0.05)
    under_40 = float(np.mean(durations < 40 * 60.0))
    assert under_40 >= 0.88
    assert recommended_period_s(durations) == pytest.approx(30 * 60.0)

    benchmark(synthesize_association_durations, 5_000, rng=1)
