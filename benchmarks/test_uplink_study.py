"""Extension study: does ACORN's allocation logic survive uplink traffic?

The paper's analysis assumes saturated downlink. Under saturated uplink
the contention unit is the *station*, and the performance anomaly leaks
across co-channel cell boundaries. This bench evaluates the paper's
Topology 2 and the dense triangle under both traffic directions and
checks the allocation decisions that matter (poor cells narrow, good
cells isolated+bonded) pay off either way.
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.core import allocate_channels
from repro.net import ThroughputModel, UplinkThroughputModel
from repro.sim.scenario import dense_triangle, topology2


def run_scenario(builder, n_channels=None):
    """Configure with ACORN (downlink objective), score both directions."""
    scenario = builder()
    plan = scenario.plan if n_channels is None else scenario.plan.subset(n_channels)
    downlink = ThroughputModel()
    acorn = Acorn(scenario.network, plan, downlink, seed=7)
    result = acorn.configure(scenario.client_order)
    graph = acorn.graph
    uplink = UplinkThroughputModel()
    uplink_total = uplink.aggregate_mbps(scenario.network, graph)
    # Re-optimise directly for uplink and compare.
    uplink_native = allocate_channels(
        scenario.network, graph, plan, uplink, rng=7
    )
    return result.total_mbps, uplink_total, uplink_native.aggregate_mbps


@pytest.fixture(scope="module")
def studies():
    return {
        "topology2": run_scenario(topology2),
        "dense_triangle": run_scenario(dense_triangle),
        # Channel scarcity forces co-channel sharing: the regime where
        # per-station (uplink) and per-AP (downlink) fairness diverge.
        "dense_triangle (2 ch)": run_scenario(dense_triangle, n_channels=2),
    }


def test_uplink_study(benchmark, studies, emit):
    rows = [
        [name, downlink, uplink, uplink_native]
        for name, (downlink, uplink, uplink_native) in studies.items()
    ]
    table = render_table(
        [
            "scenario",
            "downlink total (Mbps)",
            "uplink, downlink-optimised",
            "uplink, uplink-optimised",
        ],
        rows,
        float_format=".1f",
        title=(
            "Extension — saturated uplink vs the paper's downlink "
            "assumption (same ACORN machinery)"
        ),
    )
    emit("uplink_study", table)

    for name, (downlink, uplink, uplink_native) in studies.items():
        # Everything still flows under uplink.
        assert uplink > 0
        # Re-optimising for the uplink objective can only help.
        assert uplink_native >= uplink - 1e-6
        # Interference-free scenarios: per-packet fairness makes the two
        # directions coincide cell by cell, so the totals agree closely.
        if name == "topology2":
            assert uplink == pytest.approx(downlink, rel=0.05)

    benchmark.pedantic(lambda: run_scenario(dense_triangle), rounds=1, iterations=1)
