#!/usr/bin/env python
"""Service benchmark: request throughput, tail latency, warm restarts.

Three rungs, persisted as ``BENCH_service.json`` at the repository
root:

1. **Request throughput** — replays the deterministic self-test script
   (:func:`repro.service.run_self_test` over the (24, 60) campus:
   concurrent admissions, batched beacons, shard reconfigurations,
   departures) and gates an absolute requests/sec floor. The same run
   is replayed twice and the response fingerprints must match — the
   gate doubles as the determinism smoke the ``service-smoke`` CI job
   runs through the CLI.

2. **Tail latency** — the p99 of the per-response ``latency_s`` stamps
   from the same replay, gated against an absolute budget. Both
   wall-clock rungs are deliberately loose (runner-relative): they
   catch a collapse back to cold-multi-start costs, not slow CI iron.

3. **Warm-start factor** — cold (multi-start) vs warm (resumed)
   reconfiguration over all shards, compared by *evaluation counts*,
   which are deterministic: the warm pass must beat the cold one by
   the gated factor. This is the ratio the whole warm-start design is
   accountable to.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py          # refresh the baseline
    PYTHONPATH=src python benchmarks/bench_service.py --check  # gate against the baseline

``--check`` re-measures and fails (exit 1) when a floor is missed or a
deterministic quantity drifts against the checked-in baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import gc
import json
import pathlib
import sys
import time


@contextlib.contextmanager
def quiesced_gc():
    """Collect then pause the cyclic GC around a timed region."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


from repro.net import ChannelPlan, ThroughputModel
from repro.service import AcornService, run_self_test
from repro.service.server import self_test_network

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _shared import floor_failure_message, require_baseline  # noqa: E402

SCENARIO = (24, 60)
SCENARIO_SEED = 3
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"
# Absolute wall-clock floors: runner-relative, so set far under the
# ~9 req/s / ~0.4 s p99 a development machine records — they catch a
# collapse to cold-allocation costs, not slow CI hardware.
REQUESTS_PER_S_FLOOR = 1.0
P99_LATENCY_BUDGET_S = 5.0
# Deterministic floor: the warm pass must spend at least this factor
# fewer throughput evaluations than the cold multi-start.
WARM_EVAL_RATIO_FLOOR = 3.0
REGRESSION_TOLERANCE = 0.20


def measure_replay() -> dict:
    """The throughput + tail-latency rung, with a determinism check."""
    with quiesced_gc():
        t0 = time.perf_counter()
        responses, fingerprint = run_self_test(*SCENARIO, seed=SCENARIO_SEED)
        wall_s = time.perf_counter() - t0
    _, replay_fingerprint = run_self_test(*SCENARIO, seed=SCENARIO_SEED)
    if fingerprint != replay_fingerprint:
        raise SystemExit(
            "determinism violated: two self-test replays produced "
            f"different fingerprints ({fingerprint[:12]} vs "
            f"{replay_fingerprint[:12]})"
        )
    latencies = sorted(r["latency_s"] for r in responses)
    n = len(latencies)
    p99 = latencies[min(n - 1, int(0.99 * n))]
    failed = sum(1 for r in responses if not r.get("ok", False))
    return {
        "n_aps": SCENARIO[0],
        "n_clients": SCENARIO[1],
        "n_requests": n,
        "n_failed": failed,
        "wall_s": round(wall_s, 3),
        "requests_per_s": round(n / wall_s, 2) if wall_s > 0 else 0.0,
        "p99_latency_s": round(p99, 4),
        "max_latency_s": round(latencies[-1], 4),
        "fingerprint": fingerprint,
    }


def measure_warm_factor() -> dict:
    """Cold multi-start vs warm-resumed reconfiguration (all shards)."""
    network, arrival_lines = self_test_network(*SCENARIO, seed=SCENARIO_SEED)
    arrivals = [json.loads(line) for line in arrival_lines]
    service = AcornService(
        network, ChannelPlan(), ThroughputModel(), seed=SCENARIO_SEED
    )

    async def script():
        await service.start()
        for arrival in arrivals:
            await service.admit(
                arrival["client"], position=tuple(arrival["position"])
            )
        cold = await service.reconfigure(warm=False)
        warm = await service.reconfigure(warm=True)
        await service.stop()
        return cold, warm

    cold, warm = asyncio.run(script())
    ratio = (
        cold["evaluations"] / warm["evaluations"]
        if warm["evaluations"]
        else float("inf")
    )
    return {
        "n_shards": len(cold["shards"]),
        "cold_evaluations": cold["evaluations"],
        "warm_evaluations": warm["evaluations"],
        "cold_aggregate_mbps": round(cold["aggregate_mbps"], 6),
        "warm_aggregate_mbps": round(warm["aggregate_mbps"], 6),
        "warm_eval_ratio": round(ratio, 2),
    }


def run_benchmark() -> dict:
    replay = measure_replay()
    print(
        f"  ({replay['n_aps']} APs, {replay['n_clients']} clients): "
        f"{replay['n_requests']} requests in {replay['wall_s']:.1f} s — "
        f"{replay['requests_per_s']:.1f} req/s, "
        f"p99 {replay['p99_latency_s'] * 1e3:.0f} ms, "
        f"fingerprint {replay['fingerprint'][:12]}",
        flush=True,
    )
    warm = measure_warm_factor()
    print(
        f"  warm reconfigure over {warm['n_shards']} shard(s): "
        f"{warm['warm_evaluations']} evaluations vs "
        f"{warm['cold_evaluations']} cold "
        f"({warm['warm_eval_ratio']:.1f}x fewer)",
        flush=True,
    )
    return {
        "benchmark": "service",
        "generated_by": "benchmarks/bench_service.py",
        "scenario_seed": SCENARIO_SEED,
        "requests_per_s_floor": REQUESTS_PER_S_FLOOR,
        "p99_latency_budget_s": P99_LATENCY_BUDGET_S,
        "warm_eval_ratio_floor": WARM_EVAL_RATIO_FLOOR,
        "replay": replay,
        "warm": warm,
    }


def check_against_baseline(report: dict, baseline: dict) -> list:
    """Regression gate: floors plus deterministic-quantity drift."""
    failures = []
    replay = report["replay"]
    label = f"({replay['n_aps']} APs, {replay['n_clients']} clients replay)"
    if replay["requests_per_s"] < REQUESTS_PER_S_FLOOR:
        failures.append(
            floor_failure_message(
                label,
                "service replay",
                replay["requests_per_s"],
                REQUESTS_PER_S_FLOOR,
                kind="rate",
                unit=" req/s",
            )
        )
    if replay["p99_latency_s"] > P99_LATENCY_BUDGET_S:
        failures.append(
            f"{label}: p99 latency {replay['p99_latency_s']:.3f} s is over "
            f"the {P99_LATENCY_BUDGET_S:.0f} s budget"
        )
    warm = report["warm"]
    warm_label = f"({warm['n_shards']} shard warm reconfigure)"
    if warm["warm_eval_ratio"] < WARM_EVAL_RATIO_FLOOR:
        failures.append(
            floor_failure_message(
                warm_label,
                "cold/warm evaluations",
                warm["warm_eval_ratio"],
                WARM_EVAL_RATIO_FLOOR,
            )
        )
    # Deterministic quantities must not drift at all: the replay is
    # seeded, so a changed request count or a fingerprint mismatch is a
    # behaviour change, not noise. (No drift clause for wall rates —
    # they are runner-relative, as in bench_timeline.)
    old_replay = baseline.get("replay", {})
    if "n_requests" in old_replay and (
        replay["n_requests"] != old_replay["n_requests"]
    ):
        failures.append(
            f"{label}: request count changed {old_replay['n_requests']} -> "
            f"{replay['n_requests']} (seeded replay must be deterministic)"
        )
    old_warm = baseline.get("warm", {})
    for key in ("cold_evaluations", "warm_evaluations", "n_shards"):
        if key in old_warm and warm[key] != old_warm[key]:
            failures.append(
                f"{warm_label}: {key} changed {old_warm[key]} -> "
                f"{warm[key]} (deterministic quantity)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the checked-in baseline instead of refreshing it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"baseline path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.check:
        code = require_baseline(args.output)
        if code is not None:
            return code

    print(
        "service benchmark (request throughput, tail latency, warm restarts)",
        flush=True,
    )
    report = run_benchmark()

    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check_against_baseline(report, baseline)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"ok: within {REGRESSION_TOLERANCE:.0%} of {args.output}")
        return 0

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
