"""Helpers shared by the standalone ``bench_*`` scripts and conftest.

One thing lives here today: the missing-baseline protocol. Every gated
benchmark (``bench_allocator --check``, ``bench_obs --check``) and every
pytest fixture that reads a checked-in ``BENCH_*.json`` reports the
same message and the same exit code (:data:`MISSING_BASELINE_EXIT`)
when the baseline file is absent, so CI logs and ``tests/test_cli.py``
can match on a single phrasing.
"""

from __future__ import annotations

import pathlib
import sys

#: Exit code for "--check requested but no baseline file recorded yet".
#: Distinct from 1 (a real regression) so scripts can tell "you forgot
#: to record" from "you made it slower".
MISSING_BASELINE_EXIT = 2


def missing_baseline_message(path: "str | pathlib.Path") -> str:
    """The one shared phrasing for an absent ``BENCH_*.json`` baseline."""
    return f"no baseline at {path}; run without --check first to record one"


def require_baseline(path: "str | pathlib.Path") -> "int | None":
    """Gate entry for ``--check`` modes: complain if the baseline is gone.

    Returns :data:`MISSING_BASELINE_EXIT` (printing the shared message
    to stderr) when ``path`` does not exist, else ``None`` — callers do
    ``code = require_baseline(p); if code is not None: return code``.
    """
    if pathlib.Path(path).exists():
        return None
    print(missing_baseline_message(path), file=sys.stderr)
    return MISSING_BASELINE_EXIT
