"""Helpers shared by the standalone ``bench_*`` scripts and conftest.

Two protocols live here: the missing-baseline protocol and the
floor-failure phrasing. Every gated benchmark (``bench_allocator
--check``, ``bench_obs --check``) and every pytest fixture that reads a
checked-in ``BENCH_*.json`` reports the same message and the same exit
code (:data:`MISSING_BASELINE_EXIT`) when the baseline file is absent,
and names the specific acceptance floor (``full/delta``,
``compiled/delta``, ``batched/compiled``) through
:func:`floor_failure_message` when one is missed, so CI logs and
``tests/test_cli.py`` can match on a single phrasing.
"""

from __future__ import annotations

import pathlib
import sys

#: Exit code for "--check requested but no baseline file recorded yet".
#: Distinct from 1 (a real regression) so scripts can tell "you forgot
#: to record" from "you made it slower".
MISSING_BASELINE_EXIT = 2


def missing_baseline_message(path: "str | pathlib.Path") -> str:
    """The one shared phrasing for an absent ``BENCH_*.json`` baseline."""
    return f"no baseline at {path}; run without --check first to record one"


def floor_failure_message(
    label: str,
    floor_name: str,
    value: float,
    floor: float,
    kind: str = "speedup",
    unit: str = "x",
) -> str:
    """Name the acceptance floor a benchmark rung missed.

    ``floor_name`` identifies which quantity failed — an engine ratio
    (``full/delta``, ``compiled/delta``, ``batched/compiled``,
    ``compile/churn``) or an absolute throughput floor — so a CI log
    line is actionable without opening the baseline JSON. The default
    ``kind``/``unit`` keep the historical speedup phrasing byte-for-byte
    (``tests/test_cli.py`` pins it); rate floors pass e.g.
    ``kind="rate", unit=" events/s"`` to report events/sec the same way.
    """
    return (
        f"{label}: {floor_name} {kind} {value:.2f}{unit} is under the "
        f"{floor:.0f}{unit} acceptance floor"
    )


def require_baseline(path: "str | pathlib.Path") -> "int | None":
    """Gate entry for ``--check`` modes: complain if the baseline is gone.

    Returns :data:`MISSING_BASELINE_EXIT` (printing the shared message
    to stderr) when ``path`` does not exist, else ``None`` — callers do
    ``code = require_baseline(p); if code is not None: return code``.
    """
    if pathlib.Path(path).exists():
        return None
    print(missing_baseline_message(path), file=sys.stderr)
    return MISSING_BASELINE_EXIT
