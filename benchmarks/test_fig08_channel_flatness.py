"""Fig 8: link quality is flat across same-width channels.

The paper measures back-to-back PER on every channel at MCS 15 and finds
negligible variation — because the 2x3 MIMO PHY averages out the
per-frequency fades that plague single-antenna systems. This underpins
ACORN's assumption that a link measured on one channel predicts every
other channel of the same width.

We reproduce the mechanism: per channel, draw an independent Rician
multipath snapshot per antenna pair (6 paths for a 2x3 system), combine
them (MRC), and compute the MCS 15 PER from the resulting effective SNR.
The same experiment with a single antenna shows the variation MIMO
removes.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.link.budget import LinkBudget
from repro.mcs.tables import mcs_by_index
from repro.phy.ber import coded_ber
from repro.phy.channelmodel import rician_subcarrier_gains
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.per import per_from_ber

N_CHANNELS = 12
SNR20_DB = 24.0
MCS = mcs_by_index(15)


def per_on_channel(channel_index: int, params, n_antenna_paths: int) -> float:
    """PER of an MCS 15 link on one channel's multipath snapshot."""
    gains = rician_subcarrier_gains(
        n_antenna_paths, k_factor_db=6.0, rng=1000 + channel_index
    )
    effective_gain = float(np.mean(np.abs(gains) ** 2))
    budget = LinkBudget.from_snr20(SNR20_DB)
    snr = budget.subcarrier_snr_db(params) + 10.0 * np.log10(effective_gain)
    # MCS 15 = two 64QAM 5/6 streams; per-stream SNR loses the split.
    ber = coded_ber(MCS.modulation, MCS.code_rate, snr - 3.0)
    return float(per_from_ber(ber))


def channel_sweep(params, n_antenna_paths: int):
    return [
        per_on_channel(index, params, n_antenna_paths)
        for index in range(N_CHANNELS)
    ]


@pytest.fixture(scope="module")
def sweeps():
    return {
        ("20", "mimo"): channel_sweep(OFDM_20MHZ, 6),
        ("40", "mimo"): channel_sweep(OFDM_40MHZ, 6),
        ("20", "siso"): channel_sweep(OFDM_20MHZ, 1),
    }


def test_fig8_flat_across_channels(benchmark, sweeps, emit):
    rows = [
        [
            index + 1,
            sweeps[("20", "mimo")][index],
            sweeps[("40", "mimo")][index],
            sweeps[("20", "siso")][index],
        ]
        for index in range(N_CHANNELS)
    ]
    table = render_table(
        ["channel", "PER 20MHz (2x3)", "PER 40MHz (2x3)", "PER 20MHz (1x1)"],
        rows,
        float_format=".3f",
        title=(
            "Fig 8 — MCS 15 PER across same-width channels\n"
            "Paper: negligible variation thanks to MIMO averaging"
        ),
    )
    emit("fig08_channel_flatness", table)

    # MIMO sweeps are flat: tiny spread across channels.
    for key in (("20", "mimo"), ("40", "mimo")):
        values = np.array(sweeps[key])
        assert values.max() - values.min() < 0.15
    # The single-antenna comparison varies far more — the effect the
    # studies cited by the paper reported on SISO hardware.
    siso = np.array(sweeps[("20", "siso")])
    mimo = np.array(sweeps[("20", "mimo")])
    assert siso.std() > 3 * max(mimo.std(), 1e-6)

    benchmark(channel_sweep, OFDM_20MHZ, 6)
