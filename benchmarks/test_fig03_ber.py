"""Fig 3: uncoded QPSK BER vs SNR (a) and vs transmit power (b).

(a) At a fixed per-subcarrier SNR the BER does not depend on the channel
width, and both measured curves match Rappaport's theory (the paper
reports R² of 0.8 and 0.89).
(b) At a fixed transmit power the 40 MHz channel errs more — its
per-subcarrier SNR is ~3 dB lower.
"""

import numpy as np
import pytest

from repro.analysis.stats import coefficient_of_determination
from repro.analysis.tables import render_table
from repro.phy.ber import uncoded_ber
from repro.phy.modulation import QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.warp.bermac import BerMacHarness

SNR_POINTS_DB = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
TX_POINTS_DBM = [4.0, 8.0, 12.0, 16.0, 20.0]
PATH_LOSS_DB = 118.0
N_PACKETS = 40
PACKET_BYTES = 400


@pytest.fixture(scope="module")
def sweeps():
    h20 = BerMacHarness(OFDM_20MHZ, QPSK)
    h40 = BerMacHarness(OFDM_40MHZ, QPSK)
    vs_snr = {
        "20": h20.sweep_subcarrier_snr(
            SNR_POINTS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=1
        ),
        "40": h40.sweep_subcarrier_snr(
            SNR_POINTS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=2
        ),
    }
    vs_tx = {
        "20": [
            h20.measure_at_tx_power(
                tx, PATH_LOSS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=3
            )
            for tx in TX_POINTS_DBM
        ],
        "40": [
            h40.measure_at_tx_power(
                tx, PATH_LOSS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=4
            )
            for tx in TX_POINTS_DBM
        ],
    }
    return vs_snr, vs_tx


def test_fig3a_ber_vs_snr_width_independent(benchmark, sweeps, emit):
    vs_snr, _ = sweeps
    theory = [float(uncoded_ber(QPSK, snr)) for snr in SNR_POINTS_DB]
    rows = [
        [snr, m20.ber, m40.ber, th]
        for snr, m20, m40, th in zip(
            SNR_POINTS_DB, vs_snr["20"], vs_snr["40"], theory
        )
    ]
    table = render_table(
        ["SNR (dB)", "BER 20MHz", "BER 40MHz", "theory"],
        rows,
        float_format=".5f",
        title=(
            "Fig 3a — uncoded QPSK BER vs per-subcarrier SNR\n"
            "Paper: width-independent; fits theory with R^2 = 0.8/0.89"
        ),
    )
    emit("fig03a_ber_vs_snr", table)
    measured20 = np.array([m.ber for m in vs_snr["20"]])
    measured40 = np.array([m.ber for m in vs_snr["40"]])
    r2_20 = coefficient_of_determination(measured20, np.array(theory))
    r2_40 = coefficient_of_determination(measured40, np.array(theory))
    assert r2_20 > 0.95  # the simulated channel is exactly AWGN
    assert r2_40 > 0.95
    # Width independence at equal SNR: curves agree pointwise.
    for m20, m40 in zip(vs_snr["20"], vs_snr["40"]):
        assert m20.ber == pytest.approx(m40.ber, abs=0.02)
    benchmark(lambda: [uncoded_ber(QPSK, snr) for snr in SNR_POINTS_DB])


def test_fig3b_ber_vs_tx_cb_worse(benchmark, sweeps, emit):
    _, vs_tx = sweeps
    rows = [
        [tx, m20.ber, m40.ber]
        for tx, m20, m40 in zip(TX_POINTS_DBM, vs_tx["20"], vs_tx["40"])
    ]
    table = render_table(
        ["Tx (dBm)", "BER 20MHz", "BER 40MHz"],
        rows,
        float_format=".5f",
        title=(
            "Fig 3b — uncoded QPSK BER vs transmit power (fixed link)\n"
            "Paper: the wider channel has more bits in error at equal Tx"
        ),
    )
    emit("fig03b_ber_vs_tx", table)
    # CB is worse wherever either curve still has errors.
    worse = [
        (m40.ber >= m20.ber)
        for m20, m40 in zip(vs_tx["20"], vs_tx["40"])
        if m20.ber > 0 or m40.ber > 0
    ]
    assert worse and all(worse)
    harness = BerMacHarness(OFDM_20MHZ, QPSK)
    benchmark.pedantic(
        lambda: harness.measure_at_subcarrier_snr(
            6.0, n_packets=5, packet_bytes=PACKET_BYTES, rng=9
        ),
        rounds=3,
        iterations=1,
    )
