"""Fig 6: testbed throughput with and without CB across 24 links.

(a) With auto-rate, scatter 40 MHz throughput against 20 MHz throughput
for UDP and TCP: every point sits right of y = 2x (CB less than doubles
throughput), a minority of links — clustered at low throughput — do
better on 20 MHz, and TCP favours 20 MHz more often than UDP (paper:
~30 % vs ~10-20 %).
(b) The exhaustive-search optimal MCS with 40 MHz is no more aggressive
than with 20 MHz.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.link.budget import LinkBudget
from repro.mac.airtime import cell_throughput_mbps, client_delay_s
from repro.mcs.selection import optimal_mcs
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.sim.traffic import TcpTraffic, UdpTraffic

# 24 links spanning the testbed's quality range; a handful sit in the
# poor regime where the paper sees 20 MHz winning.
LINK_SNRS_DB = [
    -1.0, 0.5, 1.5, 2.5, 3.5, 4.5, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0,
    18.0, 20.0, 22.0, 24.0, 25.0, 26.0, 28.0, 29.0, 30.0, 32.0, 34.0, 36.0,
]


def link_throughput_mbps(snr20_db: float, params, traffic) -> float:
    """Single-client cell throughput with auto-rate on one width."""
    budget = LinkBudget.from_snr20(snr20_db)
    decision = optimal_mcs(budget.subcarrier_snr_db(params), params)
    delay = client_delay_s(decision.nominal_rate_mbps, decision.per)
    base = cell_throughput_mbps([delay])
    return base * traffic.goodput_factor(decision.per)


def scatter(traffic):
    return [
        (
            link_throughput_mbps(snr, OFDM_20MHZ, traffic),
            link_throughput_mbps(snr, OFDM_40MHZ, traffic),
        )
        for snr in LINK_SNRS_DB
    ]


@pytest.fixture(scope="module")
def scatters():
    return {"udp": scatter(UdpTraffic()), "tcp": scatter(TcpTraffic())}


def test_fig6a_throughput_scatter(benchmark, scatters, emit):
    rows = []
    for snr, (udp20, udp40), (tcp20, tcp40) in zip(
        LINK_SNRS_DB, scatters["udp"], scatters["tcp"]
    ):
        rows.append([snr, udp20, udp40, tcp20, tcp40, udp40 < udp20])
    table = render_table(
        [
            "SNR20 (dB)",
            "UDP T20",
            "UDP T40",
            "TCP T20",
            "TCP T40",
            "20MHz wins (UDP)",
        ],
        rows,
        float_format=".1f",
        title=(
            "Fig 6a — rate-controlled throughput, 24 links\n"
            "Paper: ~20% of links favour 20 MHz (30% for TCP, 10% UDP); "
            "all points right of y = 2x"
        ),
    )
    emit("fig06a_throughput_scatter", table)

    udp_20_wins = sum(1 for t20, t40 in scatters["udp"] if t20 > t40)
    tcp_20_wins = sum(1 for t20, t40 in scatters["tcp"] if t20 > t40)
    n = len(LINK_SNRS_DB)
    # A minority of links favour 20 MHz...
    assert 0 < udp_20_wins <= n // 3
    # ...more of them under TCP than UDP (loss sensitivity).
    assert tcp_20_wins >= udp_20_wins
    # Losing links cluster at low throughput (the paper's observation).
    losing_t20 = [t20 for t20, t40 in scatters["udp"] if t20 > t40]
    winning_t20 = [t20 for t20, t40 in scatters["udp"] if t40 >= t20]
    assert max(losing_t20) < np.median(winning_t20)
    # Every point lies on or right of y = 2x (less than double).
    for t20, t40 in scatters["udp"]:
        if t20 > 0:
            assert t40 <= 2.0 * t20 * 1.05

    benchmark(link_throughput_mbps, 20.0, OFDM_20MHZ, UdpTraffic())


def test_fig6b_optimal_mcs(benchmark, emit):
    rows = []
    violations = 0
    comparable = 0
    for snr in LINK_SNRS_DB:
        budget = LinkBudget.from_snr20(snr)
        d20 = optimal_mcs(budget.subcarrier_snr_db(OFDM_20MHZ), OFDM_20MHZ)
        d40 = optimal_mcs(budget.subcarrier_snr_db(OFDM_40MHZ), OFDM_40MHZ)
        rows.append(
            [
                snr,
                d20.per_stream_index,
                d20.mode.name,
                d40.per_stream_index,
                d40.mode.name,
            ]
        )
        if d20.mode is d40.mode:
            comparable += 1
            if d40.per_stream_index > d20.per_stream_index:
                violations += 1
    table = render_table(
        ["SNR20 (dB)", "opt MCS 20", "mode 20", "opt MCS 40", "mode 40"],
        rows,
        float_format=".1f",
        title=(
            "Fig 6b — exhaustive-search optimal MCS per width\n"
            "Paper: the 40 MHz optimum is almost always less aggressive"
        ),
    )
    emit("fig06b_optimal_mcs", table)
    assert comparable >= len(LINK_SNRS_DB) * 2 // 3
    assert violations == 0
    benchmark(
        optimal_mcs, 20.0, OFDM_40MHZ
    )
