"""The throughput/fairness trade-off ACORN explicitly makes (§4).

"Our objective is to maximize the total network throughput ... we
tradeoff some level of fairness", in line with PF-scheduler practice in
cellular systems. This bench quantifies the trade on Topology 2:
per-client throughput totals, Jain's index, and the PF utility for
ACORN, the "[17]" baseline, and an everyone-on-20-MHz configuration.
"""

import pytest

from repro import Acorn
from repro.analysis.fairness import throughput_fairness_report
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController, assign_orthogonal
from repro.net import ThroughputModel, build_interference_graph
from repro.sim.scenario import topology2


def run_all():
    results = {}

    acorn_scenario = topology2()
    acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
    acorn_result = acorn.configure(acorn_scenario.client_order)
    results["ACORN"] = acorn_result.report

    baseline_scenario = topology2()
    baseline = KauffmannController(
        baseline_scenario.network, baseline_scenario.plan
    )
    results["[17] greedy 40MHz"] = baseline.configure(
        baseline_scenario.client_order
    ).report

    fixed_scenario = topology2()
    model = ThroughputModel()
    fixed = Acorn(fixed_scenario.network, fixed_scenario.plan, model, seed=7)
    fixed.assign_initial_channels()
    fixed.admit_clients(fixed_scenario.client_order)
    assign_orthogonal(fixed_scenario.network, fixed_scenario.plan, 20)
    results["all 20 MHz"] = model.evaluate(
        fixed_scenario.network, build_interference_graph(fixed_scenario.network)
    )
    return results


@pytest.fixture(scope="module")
def reports():
    return {
        label: throughput_fairness_report(report.per_client_mbps.values())
        for label, report in run_all().items()
    }


def test_fairness_tradeoff(benchmark, reports, emit):
    rows = [
        [
            label,
            report["total"],
            report["jain"],
            report["pf_utility"],
            report["min"],
            report["max"],
        ]
        for label, report in reports.items()
    ]
    table = render_table(
        [
            "scheme",
            "total (Mbps)",
            "Jain index",
            "PF utility",
            "worst client",
            "best client",
        ],
        rows,
        float_format=".2f",
        title=(
            "Throughput vs fairness on Topology 2 (the paper's §4 trade)"
        ),
    )
    emit("fairness_tradeoff", table)

    # ACORN maximises the total — its declared objective.
    assert reports["ACORN"]["total"] == max(r["total"] for r in reports.values())
    # The greedy 40 MHz baseline starves poor cells outright: its worst
    # client does (much) worse than ACORN's.
    assert reports["[17] greedy 40MHz"]["min"] < reports["ACORN"]["min"] + 1e-9
    # The conservative all-20 MHz network is the most equal but pays
    # for it in total throughput.
    assert reports["all 20 MHz"]["jain"] >= reports["ACORN"]["jain"] - 0.05
    assert reports["all 20 MHz"]["total"] < reports["ACORN"]["total"]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
