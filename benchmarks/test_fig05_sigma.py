"""Fig 5: σ-values for four links across Tx power, modulations, code rates.

σ = (1 − PER20)/(1 − PER40) at equal transmit power. The paper's
finding: for each link there is a transmit-power window where σ ≥ 2
(channel bonding loses throughput, inequality 3); below it both widths
fail (σ ≈ 1), above it both succeed (σ ≈ 1). Robust links (their
link B) never enter the window at usable powers.
"""

import pytest

from repro.analysis.tables import render_table
from repro.link.budget import LinkBudget
from repro.link.estimator import LinkQualityEstimator
from repro.link.quality import sigma, sigma_cap
from repro.phy.modulation import QAM16, QAM64, QPSK
from repro.phy.ofdm import OFDM_20MHZ

# Four representative links. Losses are chosen so the 0-22 dBm Tx sweep
# drags each link's SNR across (or past) the sigma >= 2 windows:
# B is robust (above every window even at 0 dBm, like the paper's
# link B), C traverses all four windows, D the lower-order ones, and A
# sits in between.
LINK_LOSSES_DB = {"A": 92.0, "B": 68.0, "C": 88.0, "D": 94.0}
MODCODS = [
    ("QPSK 3/4", QPSK, 3 / 4),
    ("16QAM 3/4", QAM16, 3 / 4),
    ("64QAM 3/4", QAM64, 3 / 4),
    ("64QAM 5/6", QAM64, 5 / 6),
]
TX_SWEEP_DBM = [float(t) for t in range(0, 24, 2)]


def sigma_profile(loss_db: float, modulation, code_rate):
    """σ(Tx) for one link and modulation-coding pair."""
    estimator = LinkQualityEstimator()
    profile = []
    for tx in TX_SWEEP_DBM:
        budget = LinkBudget(tx_power_dbm=tx, path_loss_db=loss_db)
        est20, est40 = estimator.estimate_both_widths(
            budget.snr20_db, modulation, code_rate
        )
        profile.append(sigma(est20.per, est40.per))
    return profile


@pytest.fixture(scope="module")
def profiles():
    return {
        (label, link): sigma_profile(loss, modulation, rate)
        for label, modulation, rate in MODCODS
        for link, loss in LINK_LOSSES_DB.items()
    }


def test_fig5_sigma_windows(benchmark, profiles, emit):
    rows = []
    for (label, link), profile in sorted(profiles.items()):
        peak = max(profile)
        rows.append(
            [
                label,
                link,
                sigma_cap(min(profile)),
                sigma_cap(peak) if peak != float("inf") else 10.0,
                any(v >= 2.0 for v in profile),
            ]
        )
    table = render_table(
        ["modcod", "link", "min sigma", "max sigma (cap 10)", "window?"],
        rows,
        title=(
            "Fig 5 — sigma across Tx in [0, 22] dBm for 4 links\n"
            "Paper: CB hurts (sigma >= 2) only inside a low-power window"
        ),
    )
    emit("fig05_sigma", table)

    # Link C's sweep traverses a sigma >= 2 window for every modcod.
    for label, _, _ in MODCODS:
        assert any(v >= 2.0 for v in profiles[(label, "C")])
    # Link D reaches the lower-order windows within its power range.
    for label in ("QPSK 3/4", "16QAM 3/4"):
        assert any(v >= 2.0 for v in profiles[(label, "D")])
    # The robust link (B) never enters a window: CB is always fine there.
    for label, _, _ in MODCODS:
        assert all(v < 2.0 for v in profiles[(label, "B")])
    # sigma returns to ~1 at the top of the power range once both
    # widths deliver (the right-hand side of every Fig 5 panel).
    assert profiles[("QPSK 3/4", "A")][-1] == pytest.approx(1.0, abs=0.05)

    benchmark(sigma_profile, LINK_LOSSES_DB["A"], QPSK, 3 / 4)
