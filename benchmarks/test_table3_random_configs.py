"""Table 3: ACORN vs the 10 best of 50 random manual configurations.

On a randomly picked enterprise topology, the paper configures channels
and associations uniformly at random 50 times and keeps the 10 best;
ACORN beats all of them for both saturated UDP (259.2 vs 201.6 Mbps)
and unsaturated TCP (178.9 vs 161.7 Mbps).
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines import RandomConfigurator
from repro.net import ThroughputModel
from repro.sim import TcpTraffic, random_enterprise

PAPER_UDP = (259.2, [201.63, 193.1, 188.56, 187.6, 184.62])
PAPER_TCP = (178.93, [161.7, 155.77, 134.78, 133.4, 130.64])

N_CONFIGS = 50
KEEP = 10


def run_comparison(traffic=None):
    scenario = random_enterprise(n_aps=5, n_clients=12, seed=11)
    model = ThroughputModel() if traffic is None else ThroughputModel(traffic=traffic)
    acorn = Acorn(scenario.network, scenario.plan, model, seed=3)
    acorn_result = acorn.configure(scenario.client_order)
    configurator = RandomConfigurator(
        scenario.network, acorn.graph, scenario.plan, model
    )
    best = configurator.best(N_CONFIGS, keep=KEEP, rng=5)
    return acorn_result, best


@pytest.fixture(scope="module")
def comparisons():
    return {
        "udp": run_comparison(),
        "tcp": run_comparison(TcpTraffic()),
    }


def test_table3_acorn_vs_random(benchmark, comparisons, emit):
    rows = []
    for label, paper in (("UDP", PAPER_UDP), ("TCP", PAPER_TCP)):
        acorn_result, best = comparisons[label.lower()]
        rows.append(
            [
                label,
                acorn_result.total_mbps,
                best[0].total_mbps,
                best[-1].total_mbps,
                paper[0],
                paper[1][0],
            ]
        )
    table = render_table(
        [
            "traffic",
            "ACORN (Mbps)",
            "best random",
            "10th random",
            "paper ACORN",
            "paper best random",
        ],
        rows,
        float_format=".1f",
        title=(
            f"Table 3 — ACORN vs the {KEEP} best of {N_CONFIGS} random "
            "configurations"
        ),
    )
    emit("table3_random_configs", table)

    for label in ("udp", "tcp"):
        acorn_result, best = comparisons[label]
        # ACORN beats every one of the 10 best random configurations.
        assert all(
            configuration.total_mbps < acorn_result.total_mbps
            for configuration in best
        )
    # TCP totals sit below UDP totals, as in the paper's two rows.
    assert (
        comparisons["tcp"][0].total_mbps < comparisons["udp"][0].total_mbps
    )

    acorn_result, _ = comparisons["udp"]
    scenario = random_enterprise(n_aps=5, n_clients=12, seed=11)
    model = ThroughputModel()
    from repro.net import build_interference_graph

    graph = build_interference_graph(scenario.network)
    configurator = RandomConfigurator(
        scenario.network, graph, scenario.plan, model
    )
    benchmark.pedantic(
        lambda: configurator.sample(5, rng=1), rounds=3, iterations=1
    )
