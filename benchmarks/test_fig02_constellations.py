"""Fig 2: received QPSK constellations with 52 vs 108 subcarriers.

The paper shows the received I-Q scatter is tighter with 20 MHz than
with CB at the same transmit power (the 3 dB per-subcarrier energy loss
raises symbol uncertainty). We quantify the scatter as RMS EVM (error
vector magnitude) of the equalised constellation and check the bonded
configuration is visibly worse.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.phy.channelmodel import awgn
from repro.phy.modulation import QPSK
from repro.phy.noise import snr_per_subcarrier_db
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.warp.bermac import time_snr_offset_db
from repro.warp.receiver import OfdmReceiver
from repro.warp.waveform import OfdmTransmitter

# A link budget in the regime where 20 MHz is comfortable and 40 MHz
# struggles — the Fig 2 operating point.
TX_POWER_DBM = 10.0
PATH_LOSS_DB = 112.0
N_SYMBOLS = 60


def received_evm(params, seed: int = 0) -> float:
    """RMS EVM of the received constellation at the fixed link budget."""
    transmitter = OfdmTransmitter(params=params, modulation=QPSK)
    frame = transmitter.build_frame(N_SYMBOLS, rng=seed)
    subcarrier_snr = snr_per_subcarrier_db(TX_POWER_DBM, PATH_LOSS_DB, params)
    noisy = awgn(
        frame.samples, subcarrier_snr + time_snr_offset_db(params), rng=seed + 1
    )
    receiver = OfdmReceiver(params, QPSK)
    result = receiver.demodulate(
        noisy, frame.n_symbols, payload_start=frame.preamble_length
    )
    reference = transmitter.modulate_bits(frame.bits)
    error = result.symbols - reference
    return float(
        np.sqrt(np.mean(np.abs(error) ** 2) / np.mean(np.abs(reference) ** 2))
    )


def test_fig2_constellation_spread(benchmark, emit):
    evm20 = received_evm(OFDM_20MHZ)
    evm40 = received_evm(OFDM_40MHZ)
    table = render_table(
        ["configuration", "RMS EVM", "EVM (dB)"],
        [
            ["20 MHz (52 subcarriers)", evm20, 20 * np.log10(evm20)],
            ["40 MHz (108 subcarriers)", evm40, 20 * np.log10(evm40)],
        ],
        float_format=".3f",
        title=(
            "Fig 2 — received QPSK constellation scatter at equal Tx power\n"
            "Paper: visibly higher symbol uncertainty with CB"
        ),
    )
    emit("fig02_constellations", table)
    # CB must widen the scatter; with a 3 dB SNR loss the EVM grows by
    # ~sqrt(2) (~1.41x).
    assert evm40 > evm20 * 1.2
    assert evm40 / evm20 == pytest.approx(np.sqrt(2), rel=0.25)
    benchmark(received_evm, OFDM_20MHZ)
