#!/usr/bin/env python
"""Fleet scaling benchmark: sweep wall-clock vs worker count.

Runs the same random-enterprise sweep (default: 200 cells, the scale of
the paper's Table 3 style comparisons) serially and across increasing
worker counts, verifies every run's :class:`ResultStore` fingerprint is
bit-identical to the serial reference, and reports jobs/s, speedup and
parallel efficiency per worker count. Persists ``BENCH_fleet.json`` at
the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py                # full 200-cell sweep
    PYTHONPATH=src python benchmarks/bench_fleet.py --jobs 40      # quicker look
    PYTHONPATH=src python benchmarks/bench_fleet.py --check        # gate the 4-worker floor

``--check`` fails (exit 1) when the 4-worker speedup lands under the
2.5x acceptance floor — but only on machines with at least 4 CPU cores;
on smaller hosts the floor is reported as skipped, since a process pool
cannot outrun the hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.analysis.tables import render_table
from repro.fleet import SweepSpec, run_sweep

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fleet.json"
SPEEDUP_FLOOR = 2.5  # acceptance: >= 2.5x at 4 workers (on >= 4 cores)
FLOOR_WORKERS = 4


def build_spec(n_jobs: int) -> SweepSpec:
    """The benchmark sweep: ``n_jobs`` random-enterprise ACORN cells."""
    return SweepSpec(
        scenarios=(("random", {"n_aps": 5, "n_clients": 12}),),
        seeds=tuple(range(n_jobs)),
        algorithms=("acorn",),
        entropy=2010,
    )


def measure(spec: SweepSpec, workers: int) -> dict:
    """Time one full sweep at the given worker count."""
    start = time.perf_counter()
    store = run_sweep(spec, workers=workers)
    elapsed = time.perf_counter() - start
    if store.failed:
        raise SystemExit(
            f"{len(store.failed)} jobs failed at workers={workers}: "
            f"{store.failed[0].error}"
        )
    return {
        "workers": workers,
        "wall_s": round(elapsed, 3),
        "jobs_per_s": round(len(store) / elapsed, 3),
        "fingerprint": store.fingerprint(),
    }


def run_benchmark(n_jobs: int, worker_counts) -> dict:
    """Sweep the worker ladder and assemble the report."""
    spec = build_spec(n_jobs)
    rows = []
    serial = None
    for workers in worker_counts:
        row = measure(spec, workers)
        if serial is None:
            serial = row
        if row["fingerprint"] != serial["fingerprint"]:
            raise SystemExit(
                f"workers={workers} produced different results than serial"
            )
        row["speedup"] = round(serial["wall_s"] / row["wall_s"], 2)
        row["efficiency"] = round(row["speedup"] / workers, 2)
        rows.append(row)
        print(
            f"  {workers:2d} workers: {row['wall_s']:7.1f} s, "
            f"{row['jobs_per_s']:6.2f} jobs/s, speedup {row['speedup']:5.2f}x",
            flush=True,
        )
    return {
        "benchmark": "fleet",
        "generated_by": "benchmarks/bench_fleet.py",
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "speedup_floor": {"workers": FLOOR_WORKERS, "speedup": SPEEDUP_FLOOR},
        "fingerprint": serial["fingerprint"],
        "scaling": rows,
    }


def check_floor(report: dict) -> list:
    """The acceptance gate: >= 2.5x at 4 workers on >= 4 cores."""
    cores = report.get("cpu_count") or 1
    if cores < FLOOR_WORKERS:
        print(
            f"skipping the {SPEEDUP_FLOOR}x floor: host has {cores} core(s), "
            f"needs >= {FLOOR_WORKERS}"
        )
        return []
    failures = []
    by_workers = {row["workers"]: row for row in report["scaling"]}
    row = by_workers.get(FLOOR_WORKERS)
    if row is None:
        failures.append(f"no {FLOOR_WORKERS}-worker measurement in the ladder")
    elif row["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"{FLOOR_WORKERS}-worker speedup {row['speedup']:.2f}x under the "
            f"{SPEEDUP_FLOOR}x acceptance floor"
        )
    return failures


def main(argv=None) -> int:
    """Benchmark entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=200, help="sweep cells (default 200)"
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker ladder (default 1,2,4)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the 4-worker speedup misses the 2.5x floor",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT
    )
    args = parser.parse_args(argv)
    ladder = [int(w) for w in args.workers.split(",") if w.strip()]
    if not ladder or ladder[0] != 1:
        ladder = [1] + [w for w in ladder if w != 1]

    print(
        f"fleet scaling benchmark ({args.jobs} random-enterprise cells, "
        f"{os.cpu_count()} cores)",
        flush=True,
    )
    report = run_benchmark(args.jobs, ladder)
    print(
        render_table(
            ["workers", "wall (s)", "jobs/s", "speedup", "efficiency"],
            [
                [r["workers"], r["wall_s"], r["jobs_per_s"], r["speedup"], r["efficiency"]]
                for r in report["scaling"]
            ],
            float_format=".2f",
            title="Sweep scaling (bit-identical results at every width)",
        )
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = check_floor(report)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("ok: scaling floor satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
