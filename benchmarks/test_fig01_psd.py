"""Fig 1: PSD estimate with different channel widths.

The paper transmits the same power over 52 (20 MHz) and 108 (40 MHz)
data subcarriers and observes an ~3 dB drop in the per-subcarrier PSD
level (−92 dB → −95 dB on their scale). We regenerate the PSDs from the
simulated WarpLab chain and report the occupied-band levels.
"""

import pytest

from repro.analysis.tables import render_table
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.psd import occupied_band_level_db, welch_psd
from repro.warp.waveform import OfdmTransmitter

N_SYMBOLS = 400


def psd_level_db(params, seed: int = 0) -> float:
    """Median occupied-band PSD level of a generated waveform."""
    transmitter = OfdmTransmitter(params=params, tx_power=1.0)
    frame = transmitter.build_frame(N_SYMBOLS, rng=seed)
    payload = frame.samples[frame.preamble_length :]
    sample_rate = params.bandwidth_mhz * 1e6
    freqs, psd = welch_psd(payload, sample_rate, segment_length=params.fft_size * 4)
    return occupied_band_level_db(freqs, psd, sample_rate * 0.8)


@pytest.fixture(scope="module")
def levels():
    return {
        "20 MHz (52 data subcarriers)": psd_level_db(OFDM_20MHZ),
        "40 MHz (108 data subcarriers)": psd_level_db(OFDM_40MHZ),
    }


def test_fig1_psd_drop(benchmark, levels, emit):
    drop = (
        levels["20 MHz (52 data subcarriers)"]
        - levels["40 MHz (108 data subcarriers)"]
    )
    table = render_table(
        ["configuration", "occupied-band PSD (dB)", "relative (dB)"],
        [
            ["20 MHz (52 data subcarriers)", levels["20 MHz (52 data subcarriers)"], 0.0],
            ["40 MHz (108 data subcarriers)", levels["40 MHz (108 data subcarriers)"], -drop],
        ],
        title=(
            "Fig 1 — PSD per subcarrier, equal total transmit power\n"
            "Paper: -92 dB vs -95 dB (a ~3 dB drop with channel bonding)"
        ),
    )
    emit("fig01_psd", table)
    # The headline result: ~3 dB per-subcarrier energy reduction.
    assert drop == pytest.approx(3.0, abs=0.8)
    # Timing kernel: one full PSD estimation.
    benchmark(psd_level_db, OFDM_20MHZ)
