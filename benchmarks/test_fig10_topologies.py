"""Fig 10: per-AP throughput in interference-free deployments.

Topology 1 (2 APs): ACORN keeps the poor cell on 20 MHz — the paper
reports 16.03 vs 3.15 Mbps on AP1 (a 4-5x gain) while the good cell is
unchanged. Topology 2 (5 APs): the poor cells (AP4, AP5) gain 6x and
1.5x, and quality-aware grouping re-shapes the AP1/AP3 split.

Absolute Mbps differ from the authors' testbed; the asserted shape is
the set of width decisions, the per-poor-cell gains and the total
ordering.
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController
from repro.sim.scenario import topology1, topology2

PAPER_TOPOLOGY1 = {
    "AP1": (16.03, 3.15),  # (ACORN, [17]) Mbps
    "AP2": (52.9, 56.25),
}
PAPER_TOPOLOGY2 = {
    "AP1": (56.6, 55.8),
    "AP2": (53.5, 54.1),
    "AP3": (56.3, 20.4),
    "AP4": (3.78, 0.56),
    "AP5": (15.9, 6.35),
}


def configure_both(builder, seed=7):
    acorn_scenario = builder()
    acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=seed)
    acorn_result = acorn.configure(acorn_scenario.client_order)
    baseline_scenario = builder()
    baseline = KauffmannController(baseline_scenario.network, baseline_scenario.plan)
    baseline_result = baseline.configure(baseline_scenario.client_order)
    return acorn_result, baseline_result


@pytest.fixture(scope="module")
def results():
    return {
        "topology1": configure_both(topology1),
        "topology2": configure_both(topology2),
    }


def _table(name, acorn_result, baseline_result, paper):
    rows = []
    for ap_id in sorted(acorn_result.report.per_ap_mbps):
        rows.append(
            [
                ap_id,
                acorn_result.report.per_ap_mbps[ap_id],
                baseline_result.report.per_ap_mbps[ap_id],
                str(acorn_result.report.assignment[ap_id]),
                paper[ap_id][0],
                paper[ap_id][1],
            ]
        )
    rows.append(
        [
            "TOTAL",
            acorn_result.total_mbps,
            baseline_result.total_mbps,
            "",
            sum(p[0] for p in paper.values()),
            sum(p[1] for p in paper.values()),
        ]
    )
    return render_table(
        [
            "AP",
            "ACORN (Mbps)",
            "[17] (Mbps)",
            "ACORN channel",
            "paper ACORN",
            "paper [17]",
        ],
        rows,
        float_format=".1f",
        title=f"Fig 10 — {name}: per-AP throughput, ACORN vs [17]",
    )


def test_fig10_topology1(benchmark, results, emit):
    acorn_result, baseline_result = results["topology1"]
    emit(
        "fig10_topology1",
        _table("Topology 1", acorn_result, baseline_result, PAPER_TOPOLOGY1),
    )
    # The poor cell stays narrow and gains at least the paper's 4x.
    assert not acorn_result.report.assignment["AP1"].is_bonded
    acorn_ap1 = acorn_result.report.per_ap_mbps["AP1"]
    baseline_ap1 = baseline_result.report.per_ap_mbps["AP1"]
    assert acorn_ap1 > 3.0
    assert baseline_ap1 < acorn_ap1 / 3.0
    # The good cell bonds under both schemes and is unchanged.
    assert acorn_result.report.assignment["AP2"].is_bonded
    assert acorn_result.report.per_ap_mbps["AP2"] == pytest.approx(
        baseline_result.report.per_ap_mbps["AP2"], rel=0.1
    )
    benchmark.pedantic(
        lambda: configure_both(topology1), rounds=2, iterations=1
    )


def test_fig10_topology2(benchmark, results, emit):
    acorn_result, baseline_result = results["topology2"]
    emit(
        "fig10_topology2",
        _table("Topology 2", acorn_result, baseline_result, PAPER_TOPOLOGY2),
    )
    report = acorn_result.report
    # Width decisions: poor cells narrow, good cells bonded.
    assert not report.assignment["AP4"].is_bonded
    assert not report.assignment["AP5"].is_bonded
    assert report.assignment["AP2"].is_bonded
    # Poor-cell gains (paper: 6x on AP4, 1.5x on AP5).
    for ap_id, min_gain in (("AP4", 3.0), ("AP5", 1.05)):
        acorn_value = report.per_ap_mbps[ap_id]
        baseline_value = baseline_result.report.per_ap_mbps[ap_id]
        assert acorn_value > min_gain * max(baseline_value, 1e-9) or (
            baseline_value == 0 and acorn_value > 0
        )
    # Network-wide, ACORN wins (paper: 186.1 vs 137.2).
    assert acorn_result.total_mbps > baseline_result.total_mbps
    benchmark.pedantic(
        lambda: configure_both(topology2), rounds=1, iterations=1
    )
