"""Fig 12/13: ACORN tracks link quality under pedestrian mobility.

One AP, two static good clients, and a laptop walking away from (a) or
toward (b) the AP. ACORN's opportunistic width mode re-evaluates the
20-vs-40 decision from the measured link qualities.

(a) vs fixed 40 MHz: ACORN falls back to 20 MHz when the mobile link
degrades (paper: ~30 s into the walk) and then sustains almost ten
times the fixed cell's throughput — the poor client otherwise drags the
whole cell down via the performance anomaly.
(b) vs fixed 20 MHz: ACORN upgrades to 40 MHz once the link supports it
(paper: ~10 s) and collects the bonding gain.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.sim.mobility import run_mobility_experiment

DURATION_S = 50.0


@pytest.fixture(scope="module")
def traces():
    return {
        "away": run_mobility_experiment("away", duration_s=DURATION_S),
        "toward": run_mobility_experiment("toward", duration_s=DURATION_S),
    }


def _trace_table(trace, label, reference):
    rows = []
    for index in range(0, len(trace.times_s), 5):
        rows.append(
            [
                trace.times_s[index],
                trace.mobile_snr20_db[index],
                trace.acorn_width_mhz[index],
                trace.acorn_mbps[index],
                trace.fixed_mbps[index],
            ]
        )
    return render_table(
        ["t (s)", "mobile SNR20 (dB)", "ACORN width", "ACORN (Mbps)", f"{reference} (Mbps)"],
        rows,
        float_format=".1f",
        title=f"Fig 13{label} — mobility trace, ACORN vs fixed {reference}",
    )


def test_fig13a_walk_away(benchmark, traces, emit):
    trace = traces["away"]
    emit("fig13a_mobility_away", _trace_table(trace, "a", "40 MHz"))
    # Starts bonded, ends narrow, switching partway through the walk.
    assert trace.acorn_width_mhz[0] == 40
    assert trace.acorn_width_mhz[-1] == 20
    switch = trace.switch_time_s
    assert switch is not None
    assert 0.3 * DURATION_S <= switch <= 0.95 * DURATION_S
    # After the switch ACORN sustains a large multiple of the fixed
    # 40 MHz cell (paper: "almost ten times").
    assert trace.post_switch_gain() > 3.0
    # The fixed 40 MHz cell ends (nearly) dead; ACORN keeps delivering.
    assert trace.acorn_mbps[-1] > 5.0
    assert trace.fixed_mbps[-1] < trace.acorn_mbps[-1] / 5.0
    benchmark.pedantic(
        lambda: run_mobility_experiment("away", duration_s=20.0),
        rounds=2,
        iterations=1,
    )


def test_fig13b_walk_toward(benchmark, traces, emit):
    trace = traces["toward"]
    emit("fig13b_mobility_toward", _trace_table(trace, "b", "20 MHz"))
    # Starts narrow, upgrades to bonded early in the walk.
    assert trace.acorn_width_mhz[0] == 20
    assert trace.acorn_width_mhz[-1] == 40
    switch = trace.switch_time_s
    assert switch is not None
    assert switch <= 0.5 * DURATION_S
    # After the upgrade ACORN collects the bonding gain over fixed 20.
    assert trace.post_switch_gain() > 1.1
    # ACORN never does worse than either fixed configuration.
    for acorn_value, fixed_value in zip(trace.acorn_mbps, trace.fixed_mbps):
        assert acorn_value >= fixed_value - 1e-9
    benchmark.pedantic(
        lambda: run_mobility_experiment("toward", duration_s=20.0),
        rounds=2,
        iterations=1,
    )
