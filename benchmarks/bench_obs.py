#!/usr/bin/env python
"""Observability overhead benchmark: the disabled tracer must be free.

Re-runs the largest allocator ladder rung — (24 APs, 60 clients),
compiled engine, identical scenario/start seeds to
``benchmarks/bench_allocator.py`` — twice: once with the default
:class:`~repro.obs.tracer.NullTracer` (the *disabled* mode every
un-profiled caller pays) and once under an activated
:class:`~repro.obs.tracer.Tracer` (the ``--profile`` mode). Both runs
must produce bit-identical allocations; the disabled run must stay
within :data:`OVERHEAD_LIMIT_PCT` of the ``compiled_ms`` timing
recorded in ``BENCH_allocator.json`` — i.e. instrumenting the hot path
may not tax callers who never asked for a trace.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py          # refresh BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py --check  # gate the overhead

Both modes need ``BENCH_allocator.json`` as the reference timing (exit
2 when missing, the shared missing-baseline protocol). ``--check``
fails with exit 1 when the disabled-mode overhead reaches the limit.
The comparison is against a timing recorded on the *same* machine —
refresh the allocator baseline first when moving hardware.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import Acorn
from repro.core import allocate_channels
from repro.core.allocation import random_assignment
from repro.net import CompiledNetwork, ThroughputModel
from repro.obs import Tracer, activate
from repro.sim.scenario import random_enterprise

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _shared import require_baseline  # noqa: E402

N_APS, N_CLIENTS = 24, 60  # the largest bench_allocator rung
SCENARIO_SEED = 31
START_SEED = 5
REPEATS = 9
OVERHEAD_LIMIT_PCT = 2.0
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ALLOCATOR_BASELINE = REPO_ROOT / "BENCH_allocator.json"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_obs.json"


def _build_workload():
    """The (24, 60) compiled-allocator workload, arrays pre-built."""
    scenario = random_enterprise(
        n_aps=N_APS,
        n_clients=N_CLIENTS,
        area_m=(60.0, 45.0),
        seed=SCENARIO_SEED,
    )
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=START_SEED)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph
    start = random_assignment(scenario.network.ap_ids, scenario.plan, START_SEED)
    compiled = CompiledNetwork.compile(scenario.network, graph, scenario.plan)
    compiled.rate_tables(model)

    def run():
        return allocate_channels(
            scenario.network,
            graph,
            scenario.plan,
            model,
            initial=start,
            rng=START_SEED,
            engine_mode="compiled",
            compiled=compiled,
        )

    return run


def measure() -> dict:
    """Best-of-``REPEATS`` wall clock for the disabled and enabled modes."""
    run = _build_workload()
    run()  # warm caches (rate decisions, PHY tables) off the clock

    disabled_s = float("inf")
    baseline_result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        baseline_result = run()
        disabled_s = min(disabled_s, time.perf_counter() - t0)

    enabled_s = float("inf")
    traced_result = None
    for _ in range(REPEATS):
        tracer = Tracer()  # fresh per repeat: spans must not accumulate
        with activate(tracer):
            t0 = time.perf_counter()
            traced_result = run()
            enabled_s = min(enabled_s, time.perf_counter() - t0)

    if (
        traced_result.assignment != baseline_result.assignment
        or traced_result.aggregate_mbps != baseline_result.aggregate_mbps
        or traced_result.evaluations != baseline_result.evaluations
    ):
        raise SystemExit(
            "transparency violated: traced and untraced allocations diverged"
        )

    return {
        "disabled_ms": round(disabled_s * 1e3, 3),
        "enabled_ms": round(enabled_s * 1e3, 3),
        "evaluations": baseline_result.evaluations,
        "enabled_overhead_pct": round(
            (enabled_s / disabled_s - 1.0) * 100.0, 2
        ),
    }


def main(argv=None) -> int:
    """Benchmark entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the disabled-mode overhead instead of refreshing BENCH_obs.json",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--reference",
        type=pathlib.Path,
        default=ALLOCATOR_BASELINE,
        help=f"allocator baseline to compare against (default: {ALLOCATOR_BASELINE})",
    )
    args = parser.parse_args(argv)

    code = require_baseline(args.reference)
    if code is not None:
        return code
    allocator = json.loads(args.reference.read_text())
    reference_ms = next(
        row["compiled_ms"]
        for row in allocator["sizes"]
        if (row["n_aps"], row["n_clients"]) == (N_APS, N_CLIENTS)
    )

    print(
        f"obs overhead benchmark ({N_APS} APs / {N_CLIENTS} clients, "
        f"compiled engine, best of {REPEATS})",
        flush=True,
    )
    report = measure()
    overhead_pct = (report["disabled_ms"] / reference_ms - 1.0) * 100.0
    report.update(
        benchmark="obs",
        generated_by="benchmarks/bench_obs.py",
        n_aps=N_APS,
        n_clients=N_CLIENTS,
        reference_compiled_ms=reference_ms,
        disabled_overhead_pct=round(overhead_pct, 2),
        overhead_limit_pct=OVERHEAD_LIMIT_PCT,
    )
    print(
        f"  disabled {report['disabled_ms']:8.1f} ms "
        f"({report['disabled_overhead_pct']:+.1f}% vs reference "
        f"{reference_ms:.1f} ms), "
        f"enabled {report['enabled_ms']:8.1f} ms "
        f"({report['enabled_overhead_pct']:+.1f}% vs disabled)",
        flush=True,
    )

    if args.check:
        if overhead_pct >= OVERHEAD_LIMIT_PCT:
            print(
                f"REGRESSION: disabled-tracer overhead "
                f"{overhead_pct:+.1f}% reaches the "
                f"{OVERHEAD_LIMIT_PCT:.0f}% limit"
            )
            return 1
        print(
            f"ok: disabled-tracer overhead {overhead_pct:+.1f}% "
            f"under {OVERHEAD_LIMIT_PCT:.0f}%"
        )
        return 0

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
