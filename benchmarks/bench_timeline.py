#!/usr/bin/env python
"""Timeline benchmark: incremental recompilation vs fresh compile.

Two rungs, persisted as ``BENCH_timeline.json`` at the repository root:

1. **Churn speedup** — at campus scale (100 APs, 500 associated
   clients), times a fresh :meth:`~repro.net.CompiledNetwork.compile`
   against a single-event :meth:`~repro.net.CompiledNetwork.apply_churn`
   (one departure, one arrival, hearing cache warm — the steady state of
   the event loop). The acceptance floor is a 10x compile/churn speedup;
   the patched snapshot must also reproduce the fresh compile's
   fingerprint bit-for-bit, so the gate doubles as an equivalence smoke
   test. Rate tables stay cold here on both sides: a fresh table build
   at this size costs minutes, which is exactly why the timeline never
   pays it (tables grow by patched columns instead).

2. **Event throughput** — replays a short
   :func:`~repro.sim.timeline.run_timeline` over a 100-AP campus
   (starting empty, tables growing incrementally) and gates an absolute
   events/sec floor, so the end-to-end loop — Eq. 4 admission, churn
   patching, periodic Algorithm 2 — cannot quietly regress to
   fresh-compile costs.

Usage::

    PYTHONPATH=src python benchmarks/bench_timeline.py          # refresh the baseline
    PYTHONPATH=src python benchmarks/bench_timeline.py --check  # gate against the baseline

``--check`` re-measures and fails (exit 1) when a floor is missed or
the new numbers regress more than 20% against the checked-in baseline.
Floor failures share :func:`benchmarks._shared.floor_failure_message`
phrasing with the other gated benchmarks.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import pathlib
import sys
import time


@contextlib.contextmanager
def quiesced_gc():
    """Collect then pause the cyclic GC around a timed region.

    Same rationale as ``bench_allocator``: a gen-2 collection landing
    inside a ~20 ms ``apply_churn`` inflates its minimum enough to read
    as a fake ratio regression.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


from repro.core.allocation import random_assignment
from repro.net import CompiledNetwork
from repro.net.interference import build_interference_graph
from repro.sim.timeline import (
    TimelineConfig,
    campus_network,
    place_client_uniform,
    run_timeline,
)
from repro.config import make_rng

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _shared import floor_failure_message, require_baseline  # noqa: E402

CHURN_SIZE = (100, 500)
SCENARIO_SEED = 31
START_SEED = 5
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_timeline.json"
CHURN_SPEEDUP_FLOOR = 10.0  # acceptance: compile >= 10x one apply_churn event
# Absolute end-to-end floor. Deliberately far under the ~1.4 events/s a
# development machine records: wall-clock rates are runner-relative (the
# ratio floors are not), so the floor only catches collapse back to
# fresh-compile costs (~0.02 events/s at this size), not slow CI iron.
EVENTS_PER_S_FLOOR = 0.3
REGRESSION_TOLERANCE = 0.20

# Event-throughput rung: ~20 minutes of simulated campus churn, sized
# so CI finishes in seconds while still mixing arrivals, departures,
# and a periodic Algorithm 2 epoch.
TIMELINE_CONFIG = dict(
    horizon_s=1200.0,
    arrival_rate_per_s=1 / 20.0,
    period_s=600.0,
    seed=START_SEED,
)


def _campus_with_clients(n_aps: int, n_clients: int):
    """A campus grid with clients associated to their strongest AP.

    Associations use the max-SNR rule rather than the full Eq. 4 scan:
    this rung gates compile-vs-patch arithmetic, which only needs a
    realistic associated state, not an optimal one.
    """
    network = campus_network(n_aps=n_aps, seed=SCENARIO_SEED)
    rng = make_rng(SCENARIO_SEED)
    for index in range(n_clients):
        client_id = f"c{index:04d}"
        place_client_uniform(network, client_id, rng)
        best = max(
            network.ap_ids,
            key=lambda ap_id: network.link_budget(ap_id, client_id).snr20_db,
        )
        network.associate(client_id, best)
    return network


def measure_churn(n_aps: int, n_clients: int, repeats: int = 3) -> dict:
    """The compile-vs-apply_churn rung, with a bit-identity check."""
    from repro.net import ChannelPlan

    network = _campus_with_clients(n_aps, n_clients)
    plan = ChannelPlan().subset(4)
    assignment = random_assignment(network.ap_ids, plan, START_SEED)
    for ap_id, channel in assignment.items():
        network.set_channel(ap_id, channel)
    graph = build_interference_graph(network)

    compile_s = float("inf")
    with quiesced_gc():
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            compiled = CompiledNetwork.compile(network, graph, plan)
            compile_s = min(compile_s, time.perf_counter() - t0)

    # The churn cycle removes one client and re-adds it identically, so
    # every repeat patches the same steady state. The first cycle pays
    # the one-time AP hearing-matrix build; warm it outside timing, as
    # the event loop does after its first event.
    victim = network.client_ids[-1]
    position = network.client(victim).position
    home_ap = network.associations[victim]

    def depart():
        network.disassociate(victim)
        network.remove_client(victim)
        compiled.apply_churn(network, removed_clients=(victim,))

    def arrive():
        network.add_client(victim, position=position)
        network.associate(victim, home_ap)
        compiled.apply_churn(network, added_clients=(victim,))

    depart()
    arrive()

    depart_s = arrive_s = float("inf")
    churn_repeats = max(repeats, 7)
    with quiesced_gc():
        for _ in range(churn_repeats):
            t0 = time.perf_counter()
            depart()
            depart_s = min(depart_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            arrive()
            arrive_s = min(arrive_s, time.perf_counter() - t0)

    fresh = CompiledNetwork.compile(
        network, build_interference_graph(network), plan
    )
    if compiled.fingerprint() != fresh.fingerprint():
        raise SystemExit(
            f"equivalence violated at ({n_aps}, {n_clients}): patched "
            "snapshot fingerprint diverged from a fresh compile"
        )

    churn_s = max(depart_s, arrive_s)  # conservative: the slower event
    return {
        "n_aps": n_aps,
        "n_clients": n_clients,
        "compile_ms": round(compile_s * 1e3, 3),
        "churn_departure_ms": round(depart_s * 1e3, 3),
        "churn_arrival_ms": round(arrive_s * 1e3, 3),
        "churn_ms": round(churn_s * 1e3, 3),
        "speedup_vs_compile": round(compile_s / churn_s, 2),
    }


def measure_timeline() -> dict:
    """The end-to-end events/sec rung over an initially-empty campus."""
    from repro.net import ChannelPlan

    network = campus_network(n_aps=CHURN_SIZE[0], seed=SCENARIO_SEED)
    config = TimelineConfig(**TIMELINE_CONFIG)
    plan = ChannelPlan().subset(4)
    with quiesced_gc():
        t0 = time.perf_counter()
        result = run_timeline(network, plan, config)
        wall_s = time.perf_counter() - t0
    events_per_s = result.n_events / wall_s if wall_s > 0 else 0.0
    return {
        "n_aps": CHURN_SIZE[0],
        "horizon_s": config.horizon_s,
        "n_events": result.n_events,
        "n_epochs": result.n_epochs,
        "peak_clients": result.peak_clients,
        "mean_throughput_mbps": round(result.mean_throughput_mbps, 6),
        "wall_s": round(wall_s, 3),
        "events_per_s": round(events_per_s, 2),
    }


def run_benchmark() -> dict:
    churn = measure_churn(*CHURN_SIZE)
    print(
        f"  {churn['n_aps']:3d} APs / {churn['n_clients']:3d} clients: "
        f"compile {churn['compile_ms']:8.1f} ms, "
        f"churn {churn['churn_ms']:6.1f} ms "
        f"(arrival {churn['churn_arrival_ms']:.1f} / "
        f"departure {churn['churn_departure_ms']:.1f}), "
        f"speedup {churn['speedup_vs_compile']:5.1f}x",
        flush=True,
    )
    timeline = measure_timeline()
    print(
        f"  replay {timeline['n_events']:4d} events in "
        f"{timeline['wall_s']:6.1f} s: "
        f"{timeline['events_per_s']:.1f} events/s "
        f"({timeline['n_epochs']} epochs, "
        f"peak {timeline['peak_clients']} clients)",
        flush=True,
    )
    return {
        "benchmark": "timeline",
        "generated_by": "benchmarks/bench_timeline.py",
        "scenario_seed": SCENARIO_SEED,
        "churn_speedup_floor": {
            "speedup_vs_compile": CHURN_SPEEDUP_FLOOR,
        },
        "events_per_s_floor": EVENTS_PER_S_FLOOR,
        "churn": churn,
        "timeline": timeline,
    }


def check_against_baseline(report: dict, baseline: dict) -> list:
    """Regression gate: floors plus >20% drift against the baseline."""
    failures = []
    churn = report["churn"]
    label = f"({churn['n_aps']} APs, {churn['n_clients']} clients)"
    if churn["speedup_vs_compile"] < CHURN_SPEEDUP_FLOOR:
        failures.append(
            floor_failure_message(
                label,
                "compile/churn",
                churn["speedup_vs_compile"],
                CHURN_SPEEDUP_FLOOR,
            )
        )
    timeline = report["timeline"]
    replay_label = f"({timeline['n_aps']} APs replay)"
    if timeline["events_per_s"] < EVENTS_PER_S_FLOOR:
        failures.append(
            floor_failure_message(
                replay_label,
                "run_timeline",
                timeline["events_per_s"],
                EVENTS_PER_S_FLOOR,
                kind="rate",
                unit=" events/s",
            )
        )
    old_churn = baseline.get("churn", {})
    if "speedup_vs_compile" in old_churn:
        allowed = old_churn["speedup_vs_compile"] * (1 - REGRESSION_TOLERANCE)
        if churn["speedup_vs_compile"] < allowed:
            failures.append(
                f"{label}: churn speedup regressed "
                f"{old_churn['speedup_vs_compile']:.1f}x -> "
                f"{churn['speedup_vs_compile']:.1f}x (>20%)"
            )
    # No drift clause for events/s: absolute rates are runner-relative,
    # so baseline-vs-CI comparisons would flag hardware, not code. The
    # floor above plus the deterministic event count carry the gate.
    old_timeline = baseline.get("timeline", {})
    if "n_events" in old_timeline and (
        timeline["n_events"] != old_timeline["n_events"]
    ):
        failures.append(
            f"{replay_label}: event count changed "
            f"{old_timeline['n_events']} -> {timeline['n_events']} "
            "(seeded replay must be deterministic)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the checked-in baseline instead of refreshing it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"baseline path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.check:
        code = require_baseline(args.output)
        if code is not None:
            return code

    print(
        "timeline benchmark (incremental recompilation vs fresh compile)",
        flush=True,
    )
    report = run_benchmark()

    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check_against_baseline(report, baseline)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"ok: within {REGRESSION_TOLERANCE:.0%} of {args.output}")
        return 0

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
