"""Table 1: the experimental transition SNRs for σ = 2.

The paper tabulates, per modulation-and-coding pair, the SNR γ below
which σ ≥ 2 (CB hurts) and above which σ < 2 (CB helps):

    modcod      QPSK 3/4   16QAM 3/4   64QAM 3/4   64QAM 5/6
    σ ≥ 2        −7 dB       3 dB        5 dB        8 dB
    σ < 2        −4 dB       5 dB        7 dB       11 dB

Absolute values depend on the SNR reference of their Ralink cards (2x3
MIMO front end); the reproducible *shape* is (i) the boundary rises
monotonically with modulation aggressiveness and (ii) each band is a
few dB wide.
"""

import pytest

from repro.analysis.tables import render_table
from repro.link.quality import sigma_from_snr, transition_snr_db
from repro.phy.modulation import QAM16, QAM64, QPSK

MODCODS = [
    ("QPSK 3/4", QPSK, 3 / 4, (-7.0, -4.0)),
    ("16QAM 3/4", QAM16, 3 / 4, (3.0, 5.0)),
    ("64QAM 3/4", QAM64, 3 / 4, (5.0, 7.0)),
    ("64QAM 5/6", QAM64, 5 / 6, (8.0, 11.0)),
]


def compute_transitions():
    """Upper and lower edges of each sigma >= 2 band."""
    rows = []
    for label, modulation, rate, paper in MODCODS:
        upper = transition_snr_db(modulation, rate)
        assert upper is not None
        # Walk down from the upper edge to find where sigma drops
        # back below 2 (both widths failing).
        lower = upper
        snr = upper
        while snr > upper - 15.0:
            snr -= 0.1
            if sigma_from_snr(snr, modulation, rate) < 2.0:
                lower = snr
                break
        rows.append((label, lower, upper, paper))
    return rows


@pytest.fixture(scope="module")
def transitions():
    return compute_transitions()


def test_table1_transition_snrs(benchmark, transitions, emit):
    table = render_table(
        [
            "modcod",
            "sigma>=2 from (dB)",
            "sigma<2 above (dB)",
            "paper sigma>=2",
            "paper sigma<2",
        ],
        [
            [label, lower, upper, paper[0], paper[1]]
            for label, lower, upper, paper in transitions
        ],
        float_format=".1f",
        title=(
            "Table 1 — SNR transition points for sigma = 2\n"
            "Shape: boundaries rise with modulation aggressiveness; "
            "bands are a few dB wide"
        ),
    )
    emit("table1_transitions", table)

    uppers = [upper for _, _, upper, _ in transitions]
    # (i) Monotone in modulation aggressiveness, as in the paper.
    assert uppers == sorted(uppers)
    # (ii) The paper's ordering gaps: roughly 2-10 dB between entries.
    gaps = [b - a for a, b in zip(uppers, uppers[1:])]
    assert all(1.0 <= gap <= 10.0 for gap in gaps)
    # (iii) Each sigma >= 2 band spans a few dB (paper: 2-3 dB).
    for _, lower, upper, _ in transitions:
        assert 0.5 <= upper - lower <= 6.0

    benchmark(transition_snr_db, QPSK, 3 / 4)
