#!/usr/bin/env python
"""Allocator benchmark: full vs delta vs compiled vs batched paths.

Runs Algorithm 2 over the scalability scenario ladder four times per
size — through the batched vectorized evaluator
(:class:`~repro.net.BatchedEvaluator`, the production path), through
the scalar array-backed :class:`~repro.net.CompiledEvaluator`, through
the dict-keyed :class:`~repro.net.DeltaEvaluator` (the oracle path),
and through the ``EvaluateFn`` adapter that re-evaluates the whole
network per candidate (the pre-engine behaviour) — and persists the
wall-clock times, evaluation counts, speedups, and engine counters as
``BENCH_allocator.json`` at the repository root. Compilation happens
outside the timed region (recorded separately as ``compile_ms``),
matching how the controller and the fleet amortise it. A large
``(100, 500)`` rung runs the engine paths only (the pre-engine full
evaluation would take minutes there and proves nothing new).

Usage::

    PYTHONPATH=src python benchmarks/bench_allocator.py          # refresh the baseline
    PYTHONPATH=src python benchmarks/bench_allocator.py --check  # gate against the baseline

``--check`` re-measures and fails (exit 1) when the new numbers regress
more than 20% against the checked-in baseline: evaluation counts are
deterministic and must not grow, and the speedups — machine-relative
ratios, so they survive slow CI runners — must hold: full/delta at
least 5x at every size with at least 10 APs, compiled/delta at least
3x at 24+ APs, and batched/compiled at least 5x at 24+ APs. Each floor
failure names the ratio that missed (see
:func:`benchmarks._shared.floor_failure_message`). All runs must
produce bit-identical allocations, so the gate doubles as an
end-to-end equivalence smoke test.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import pathlib
import sys
import time


@contextlib.contextmanager
def quiesced_gc():
    """Collect then pause the cyclic GC around a timed region.

    The earlier benchmark legs leave megabytes of garbage behind; a
    gen-2 collection landing inside a millisecond-scale engine run can
    inflate its minimum by 20%+, which on ratio floors reads as a fake
    regression. Applied uniformly to every timed leg so no path gets
    an unfair advantage.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

from repro import Acorn
from repro.core import allocate_channels
from repro.core.allocation import greedy_allocate, random_assignment
from repro.net import CompiledNetwork, DeltaEvaluator, ThroughputModel
from repro.sim.scenario import random_enterprise

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _shared import floor_failure_message, require_baseline  # noqa: E402

SIZES = ((4, 10), (6, 15), (8, 20), (10, 24), (16, 40), (24, 60))
# Engine-only rungs: too large for the pre-engine full evaluation,
# sized to show the batched path holding its floor at fleet scale.
LARGE_SIZES = ((100, 500),)
SCENARIO_SEED = 31
START_SEED = 5
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_allocator.json"
SPEEDUP_FLOOR = 5.0  # acceptance: >= 5x at n >= 10 APs
SPEEDUP_FLOOR_MIN_APS = 10
COMPILED_SPEEDUP_FLOOR = 3.0  # acceptance: compiled >= 3x delta at n >= 24 APs
COMPILED_SPEEDUP_FLOOR_MIN_APS = 24
BATCHED_SPEEDUP_FLOOR = 5.0  # acceptance: batched >= 5x compiled at n >= 24 APs
BATCHED_SPEEDUP_FLOOR_MIN_APS = 24
REGRESSION_TOLERANCE = 0.20


def measure_size(
    n_aps: int, n_clients: int, repeats: int = 3, include_full: bool = True
) -> dict:
    """One ladder rung: build the scenario, time every allocator path."""
    scenario = random_enterprise(
        n_aps=n_aps, n_clients=n_clients, area_m=(60.0, 45.0), seed=SCENARIO_SEED
    )
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=START_SEED)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph
    ap_ids = scenario.network.ap_ids
    palette = scenario.plan.all_channels()
    start = random_assignment(ap_ids, scenario.plan, START_SEED)

    # Warm the model's rate-decision cache and module-level PHY tables
    # so no timed path is billed for the shared warm-up.
    allocate_channels(
        scenario.network, graph, scenario.plan, model,
        initial=start, rng=START_SEED, engine_mode="delta",
    )

    # The compiled arrays are built once outside the timed region
    # (recorded as compile_ms), as the controller and fleet amortise it.
    t0 = time.perf_counter()
    compiled = CompiledNetwork.compile(scenario.network, graph, scenario.plan)
    compiled.rate_tables(model)
    compile_s = time.perf_counter() - t0

    def run(mode):
        return allocate_channels(
            scenario.network, graph, scenario.plan, model,
            initial=start, rng=START_SEED, engine_mode=mode,
            compiled=None if mode == "delta" else compiled,
        )

    # Warm each engine path once outside timing (the batched warm-up
    # also absorbs the one-time quantized-grid and palette-cache
    # builds).
    run("compiled")
    run("batched")

    # Each leg is timed back-to-back (not interleaved): the production
    # pattern is the same engine run repeatedly, so the warm
    # steady-state minimum is the honest number — alternating legs
    # makes every run pay the other engines' cache-eviction bill. The
    # engine runs are milliseconds-cheap, so they take the min over
    # more repeats than the delta leg; on a busy single-core runner a
    # 3-sample min can inflate a ratio by 20%+.
    fast_repeats = max(repeats, 9)
    delta_s = compiled_s = batched_s = float("inf")
    result = compiled_result = batched_result = None
    with quiesced_gc():
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = run("delta")
            delta_s = min(delta_s, time.perf_counter() - t0)
    with quiesced_gc():
        for _ in range(fast_repeats):
            t0 = time.perf_counter()
            compiled_result = run("compiled")
            compiled_s = min(compiled_s, time.perf_counter() - t0)
    with quiesced_gc():
        for _ in range(fast_repeats):
            t0 = time.perf_counter()
            batched_result = run("batched")
            batched_s = min(batched_s, time.perf_counter() - t0)

    for other, name in (
        (compiled_result, "compiled"),
        (batched_result, "batched"),
    ):
        if (
            other.assignment != result.assignment
            or other.aggregate_mbps != result.aggregate_mbps
            or other.evaluations != result.evaluations
        ):
            raise SystemExit(
                f"equivalence violated at ({n_aps}, {n_clients}): "
                f"{name} and delta paths diverged"
            )

    # One instrumented engine run to capture the work counters.
    engine = DeltaEvaluator(scenario.network, graph, model=model, assignment={})
    greedy_allocate(ap_ids, palette, initial=start, engine=engine)
    stats = engine.stats.as_dict()

    row = {
        "n_aps": n_aps,
        "n_clients": n_clients,
        "rounds": result.rounds,
        "evaluations": result.evaluations,
        "aggregate_mbps": round(result.aggregate_mbps, 6),
        "delta_ms": round(delta_s * 1e3, 3),
        "compiled_ms": round(compiled_s * 1e3, 3),
        "batched_ms": round(batched_s * 1e3, 3),
        "compile_ms": round(compile_s * 1e3, 3),
        "speedup_vs_delta": round(delta_s / compiled_s, 2),
        "speedup_vs_compiled": round(compiled_s / batched_s, 2),
        "engine": stats,
    }
    if not include_full:
        return row

    # The pre-engine path: a full-network evaluation per candidate,
    # through the EvaluateFn ablation adapter. Shares the model instance
    # (and its decision cache) with the delta runs — see
    # benchmarks/test_scalability.py for why that matters at 1e-5.
    def evaluate(assignment):
        return model.aggregate_mbps(
            scenario.network, graph, assignment=dict(assignment)
        )

    with quiesced_gc():
        t0 = time.perf_counter()
        full_result = greedy_allocate(ap_ids, palette, evaluate, initial=start)
        full_s = time.perf_counter() - t0

    if full_result.assignment != result.assignment:
        raise SystemExit(
            f"equivalence violated at ({n_aps}, {n_clients}): "
            "delta and full paths diverged"
        )
    if abs(full_result.aggregate_mbps - result.aggregate_mbps) > 1e-9:
        raise SystemExit(
            f"equivalence violated at ({n_aps}, {n_clients}): aggregates "
            f"{full_result.aggregate_mbps} != {result.aggregate_mbps}"
        )

    row["full_ms"] = round(full_s * 1e3, 3)
    row["speedup"] = round(full_s / delta_s, 2)
    return row


def run_benchmark() -> dict:
    rows = []
    for n_aps, n_clients in SIZES:
        row = measure_size(n_aps, n_clients)
        rows.append(row)
        print(
            f"  {n_aps:3d} APs / {n_clients:3d} clients: "
            f"full {row['full_ms']:9.1f} ms, delta {row['delta_ms']:8.1f} ms, "
            f"compiled {row['compiled_ms']:7.1f} ms "
            f"({row['speedup_vs_delta']:.1f}x delta), "
            f"batched {row['batched_ms']:7.1f} ms "
            f"({row['speedup_vs_compiled']:.1f}x compiled), "
            f"speedup {row['speedup']:5.1f}x, {row['evaluations']} evals",
            flush=True,
        )
    for n_aps, n_clients in LARGE_SIZES:
        row = measure_size(n_aps, n_clients, repeats=2, include_full=False)
        rows.append(row)
        print(
            f"  {n_aps:3d} APs / {n_clients:3d} clients: "
            f"delta {row['delta_ms']:8.1f} ms, "
            f"compiled {row['compiled_ms']:7.1f} ms "
            f"({row['speedup_vs_delta']:.1f}x delta), "
            f"batched {row['batched_ms']:7.1f} ms "
            f"({row['speedup_vs_compiled']:.1f}x compiled), "
            f"{row['evaluations']} evals",
            flush=True,
        )
    return {
        "benchmark": "allocator",
        "generated_by": "benchmarks/bench_allocator.py",
        "scenario_seed": SCENARIO_SEED,
        "speedup_floor": {
            "min_aps": SPEEDUP_FLOOR_MIN_APS,
            "speedup": SPEEDUP_FLOOR,
        },
        "compiled_speedup_floor": {
            "min_aps": COMPILED_SPEEDUP_FLOOR_MIN_APS,
            "speedup_vs_delta": COMPILED_SPEEDUP_FLOOR,
        },
        "batched_speedup_floor": {
            "min_aps": BATCHED_SPEEDUP_FLOOR_MIN_APS,
            "speedup_vs_compiled": BATCHED_SPEEDUP_FLOOR,
        },
        "sizes": rows,
    }


def check_against_baseline(report: dict, baseline: dict) -> list:
    """Regression gate: >20% worse than the baseline fails the build."""
    failures = []
    old_by_size = {
        (row["n_aps"], row["n_clients"]): row for row in baseline.get("sizes", [])
    }
    for row in report["sizes"]:
        key = (row["n_aps"], row["n_clients"])
        label = f"({key[0]} APs, {key[1]} clients)"
        if (
            "speedup" in row
            and row["n_aps"] >= SPEEDUP_FLOOR_MIN_APS
            and row["speedup"] < SPEEDUP_FLOOR
        ):
            failures.append(
                floor_failure_message(
                    label, "full/delta", row["speedup"], SPEEDUP_FLOOR
                )
            )
        if (
            row["n_aps"] >= COMPILED_SPEEDUP_FLOOR_MIN_APS
            and row["speedup_vs_delta"] < COMPILED_SPEEDUP_FLOOR
        ):
            failures.append(
                floor_failure_message(
                    label,
                    "compiled/delta",
                    row["speedup_vs_delta"],
                    COMPILED_SPEEDUP_FLOOR,
                )
            )
        if (
            row["n_aps"] >= BATCHED_SPEEDUP_FLOOR_MIN_APS
            and row["speedup_vs_compiled"] < BATCHED_SPEEDUP_FLOOR
        ):
            failures.append(
                floor_failure_message(
                    label,
                    "batched/compiled",
                    row["speedup_vs_compiled"],
                    BATCHED_SPEEDUP_FLOOR,
                )
            )
        old = old_by_size.get(key)
        if old is None:
            continue
        if row["evaluations"] > old["evaluations"] * (1 + REGRESSION_TOLERANCE):
            failures.append(
                f"{label}: evaluation count grew {old['evaluations']} -> "
                f"{row['evaluations']} (>20%)"
            )
        if "speedup" in row and row["n_aps"] >= SPEEDUP_FLOOR_MIN_APS:
            allowed = old.get("speedup", 0.0) * (1 - REGRESSION_TOLERANCE)
            if row["speedup"] < allowed:
                failures.append(
                    f"{label}: speedup regressed {old['speedup']:.1f}x -> "
                    f"{row['speedup']:.1f}x (>20%)"
                )
        if (
            row["n_aps"] >= COMPILED_SPEEDUP_FLOOR_MIN_APS
            and "speedup_vs_delta" in old
        ):
            allowed = old["speedup_vs_delta"] * (1 - REGRESSION_TOLERANCE)
            if row["speedup_vs_delta"] < allowed:
                failures.append(
                    f"{label}: compiled speedup regressed "
                    f"{old['speedup_vs_delta']:.1f}x -> "
                    f"{row['speedup_vs_delta']:.1f}x (>20%)"
                )
        if (
            row["n_aps"] >= BATCHED_SPEEDUP_FLOOR_MIN_APS
            and "speedup_vs_compiled" in old
        ):
            allowed = old["speedup_vs_compiled"] * (1 - REGRESSION_TOLERANCE)
            if row["speedup_vs_compiled"] < allowed:
                failures.append(
                    f"{label}: batched speedup regressed "
                    f"{old['speedup_vs_compiled']:.1f}x -> "
                    f"{row['speedup_vs_compiled']:.1f}x (>20%)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the checked-in baseline instead of refreshing it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"baseline path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.check:
        code = require_baseline(args.output)
        if code is not None:
            return code

    print(
        "allocator benchmark (full evaluation vs delta vs compiled "
        "vs batched engines)",
        flush=True,
    )
    report = run_benchmark()

    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check_against_baseline(report, baseline)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"ok: within {REGRESSION_TOLERANCE:.0%} of {args.output}")
        return 0

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
