"""Fig 4: uncoded PER for QPSK vs SNR (a) and vs transmit power (b).

Same experiment as Fig 3 at the packet level: PER is width-independent
at equal SNR but, at equal transmit power, "the PER with CB is much
higher as compared to that without the feature".
"""

import pytest

from repro.analysis.tables import render_table
from repro.phy.modulation import QPSK
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from repro.phy.per import per_from_ber
from repro.phy.ber import uncoded_ber
from repro.warp.bermac import BerMacHarness

SNR_POINTS_DB = [3.0, 5.0, 7.0, 9.0]
# At this loss the Tx sweep walks the uncoded PER waterfall: the 20 MHz
# PER drops first while the bonded channel (3 dB behind) still loses
# almost everything.
TX_POINTS_DBM = [3.0, 5.0, 7.0, 9.0, 11.0, 13.0]
PATH_LOSS_DB = 93.0
N_PACKETS = 50
PACKET_BYTES = 300


@pytest.fixture(scope="module")
def sweeps():
    h20 = BerMacHarness(OFDM_20MHZ, QPSK)
    h40 = BerMacHarness(OFDM_40MHZ, QPSK)
    vs_snr = {
        "20": h20.sweep_subcarrier_snr(
            SNR_POINTS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=21
        ),
        "40": h40.sweep_subcarrier_snr(
            SNR_POINTS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=22
        ),
    }
    vs_tx = {
        "20": [
            h20.measure_at_tx_power(
                tx, PATH_LOSS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=23
            )
            for tx in TX_POINTS_DBM
        ],
        "40": [
            h40.measure_at_tx_power(
                tx, PATH_LOSS_DB, n_packets=N_PACKETS, packet_bytes=PACKET_BYTES, rng=24
            )
            for tx in TX_POINTS_DBM
        ],
    }
    return vs_snr, vs_tx


def test_fig4a_per_vs_snr(benchmark, sweeps, emit):
    vs_snr, _ = sweeps
    theory = [
        float(per_from_ber(uncoded_ber(QPSK, snr), PACKET_BYTES))
        for snr in SNR_POINTS_DB
    ]
    rows = [
        [snr, m20.per, m40.per, th]
        for snr, m20, m40, th in zip(
            SNR_POINTS_DB, vs_snr["20"], vs_snr["40"], theory
        )
    ]
    table = render_table(
        ["SNR (dB)", "PER 20MHz", "PER 40MHz", "Eq.6 theory"],
        rows,
        float_format=".3f",
        title=(
            "Fig 4a — uncoded QPSK PER vs per-subcarrier SNR\n"
            "Paper: width-independent at equal SNR"
        ),
    )
    emit("fig04a_per_vs_snr", table)
    for m20, m40 in zip(vs_snr["20"], vs_snr["40"]):
        assert m20.per == pytest.approx(m40.per, abs=0.15)
    benchmark(
        lambda: [
            per_from_ber(uncoded_ber(QPSK, snr), PACKET_BYTES)
            for snr in SNR_POINTS_DB
        ]
    )


def test_fig4b_per_vs_tx(benchmark, sweeps, emit):
    _, vs_tx = sweeps
    rows = [
        [tx, m20.per, m40.per]
        for tx, m20, m40 in zip(TX_POINTS_DBM, vs_tx["20"], vs_tx["40"])
    ]
    table = render_table(
        ["Tx (dBm)", "PER 20MHz", "PER 40MHz"],
        rows,
        float_format=".3f",
        title=(
            "Fig 4b — uncoded QPSK PER vs transmit power (fixed link)\n"
            "Paper: PER with CB much higher at the same Tx"
        ),
    )
    emit("fig04b_per_vs_tx", table)
    # Wherever the 20 MHz PER has started dropping, CB must be worse.
    informative = [
        (m20, m40)
        for m20, m40 in zip(vs_tx["20"], vs_tx["40"])
        if 0.0 < m20.per < 1.0 or 0.0 < m40.per < 1.0
    ]
    assert informative
    assert all(m40.per >= m20.per for m20, m40 in informative)
    harness = BerMacHarness(OFDM_40MHZ, QPSK)
    benchmark.pedantic(
        lambda: harness.measure_at_tx_power(
            10.0, PATH_LOSS_DB, n_packets=5, packet_bytes=PACKET_BYTES, rng=9
        ),
        rounds=3,
        iterations=1,
    )
