"""Forward-looking study: does ACORN's width logic survive A-MPDU?

The paper's testbed predates wide A-MPDU deployment; one could wonder
whether frame aggregation — which removes most per-packet overhead —
also removes the need for CB-aware configuration. It does not: the
bonding penalty is a 3 dB *PHY* effect, so poor links still collapse on
40 MHz no matter how efficient the MAC is. Aggregation actually widens
the absolute gap between the right and wrong width decision.
"""

import pytest

from repro.analysis.tables import render_table
from repro.link.budget import LinkBudget
from repro.mac.aggregation import AmpduModel
from repro.mac.airtime import client_delay_s
from repro.mcs.selection import optimal_mcs
from repro.phy.ofdm import OFDM_20MHZ, OFDM_40MHZ

SNR_POINTS = [1.0, 4.0, 10.0, 18.0, 26.0, 34.0]


def throughput(snr20_db: float, params, aggregated: bool) -> float:
    """Single-client cell throughput with or without A-MPDU."""
    budget = LinkBudget.from_snr20(snr20_db)
    decision = optimal_mcs(budget.subcarrier_snr_db(params), params)
    if decision.per >= 1.0:
        return 0.0
    if aggregated:
        delay = AmpduModel().client_delay_s(decision.nominal_rate_mbps, decision.per)
    else:
        delay = client_delay_s(decision.nominal_rate_mbps, decision.per)
    return 8 * 1500 / delay / 1e6


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for snr in SNR_POINTS:
        rows.append(
            [
                snr,
                throughput(snr, OFDM_20MHZ, False),
                throughput(snr, OFDM_40MHZ, False),
                throughput(snr, OFDM_20MHZ, True),
                throughput(snr, OFDM_40MHZ, True),
            ]
        )
    return rows


def test_aggregation_study(benchmark, sweep, emit):
    table = render_table(
        [
            "SNR20 (dB)",
            "T20 plain",
            "T40 plain",
            "T20 A-MPDU",
            "T40 A-MPDU",
        ],
        sweep,
        float_format=".1f",
        title=(
            "Extension — channel bonding under A-MPDU aggregation\n"
            "The width crossover survives: bonding is a PHY penalty"
        ),
    )
    emit("aggregation_study", table)

    for snr, t20, t40, t20_agg, t40_agg in sweep:
        # Aggregation lifts whatever delivers at all.
        if t20 > 0:
            assert t20_agg > t20
        # The poor-link width inversion survives aggregation.
        if t20 > t40:
            assert t20_agg > t40_agg
    # Strong links gain much more from bonding once overhead is gone:
    # plain DCF caps the 40 MHz advantage, A-MPDU unleashes it.
    _, t20, t40, t20_agg, t40_agg = sweep[-1]
    assert t40_agg / t20_agg > t40 / t20
    # And at the poor end, 40 MHz stays dead under both MACs.
    _, t20_poor, t40_poor, t20_agg_poor, t40_agg_poor = sweep[0]
    assert t40_poor == 0.0 and t40_agg_poor == 0.0
    assert t20_poor > 0 and t20_agg_poor > 0

    benchmark(throughput, 18.0, OFDM_40MHZ, True)
