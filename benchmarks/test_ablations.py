"""Ablations of ACORN's design choices (DESIGN.md §5).

1. ε stopping threshold — allocation quality vs evaluation cost.
2. Joint vs independent association/allocation — the paper's thesis
   that the two are tightly coupled under CB.
3. Eq. 4 (network-aware) vs selfish association under CB.
4. SNR calibration off — why the 3 dB width correction matters for
   the allocator's decisions.
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines.kauffmann import kauffmann_choose_ap
from repro.core import allocate_channels
from repro.errors import AssociationError
from repro.net import ThroughputModel, build_interference_graph
from repro.net.throughput import ThroughputModel as _TM
from repro.sim.scenario import dense_triangle, random_enterprise, topology2


class UncalibratedModel(ThroughputModel):
    """A throughput estimator with the SNR-calibration module removed.

    It believes every width sees the 20 MHz SNR — i.e. it ignores the
    3 dB per-subcarrier penalty of bonding, the way a legacy
    single-width estimator would.
    """

    def link_decision(self, network, ap_id, client_id, channel):
        budget = network.link_budget(ap_id, client_id)
        snr = budget.snr20_db  # wrong for bonded channels, on purpose
        key = (round(snr, 3), channel.params.name)
        decision = self._decision_cache.get(key)
        if decision is None:
            decision = self.controller.decide_from_snr(snr, channel.params)
            self._decision_cache[key] = decision
        return decision


@pytest.fixture(scope="module")
def epsilon_sweep():
    model = ThroughputModel()
    results = {}
    for epsilon in (1.0, 1.05, 1.25):
        scenario = random_enterprise(n_aps=5, n_clients=12, seed=21)
        acorn = Acorn(
            scenario.network, scenario.plan, model, epsilon=epsilon, seed=4
        )
        acorn.assign_initial_channels()
        acorn.admit_clients(scenario.client_order)
        allocation = acorn.allocate()
        results[epsilon] = (allocation.aggregate_mbps, allocation.evaluations)
    return results


def test_ablation_epsilon(benchmark, epsilon_sweep, emit):
    rows = [
        [epsilon, value, evaluations]
        for epsilon, (value, evaluations) in sorted(epsilon_sweep.items())
    ]
    table = render_table(
        ["epsilon", "aggregate (Mbps)", "evaluations"],
        rows,
        title=(
            "Ablation 1 — the epsilon stopping rule\n"
            "Paper default 1.05: near-exhaustive quality at lower cost"
        ),
    )
    emit("ablation_epsilon", table)
    exhaustive_value, exhaustive_cost = epsilon_sweep[1.0]
    paper_value, paper_cost = epsilon_sweep[1.05]
    loose_value, _ = epsilon_sweep[1.25]
    # Looser epsilon can only stop earlier, never do better.
    assert loose_value <= paper_value + 1e-6 <= exhaustive_value + 2e-6
    # The paper's 1.05 keeps nearly all of the exhaustive quality.
    assert paper_value >= 0.9 * exhaustive_value
    assert paper_cost <= exhaustive_cost
    benchmark.pedantic(
        lambda: dict(epsilon_sweep), rounds=1, iterations=1
    )


@pytest.fixture(scope="module")
def coupling_results():
    """Joint (ACORN) vs independent (selfish assoc + Algorithm 2)."""
    model = ThroughputModel()
    joint_scenario = topology2()
    joint = Acorn(joint_scenario.network, joint_scenario.plan, model, seed=7)
    joint_total = joint.configure(joint_scenario.client_order).total_mbps

    independent_scenario = topology2()
    network = independent_scenario.network
    acorn = Acorn(network, independent_scenario.plan, model, seed=7)
    acorn.assign_initial_channels()
    graph = acorn.graph
    for client_id in independent_scenario.client_order:
        try:
            ap_id, _ = kauffmann_choose_ap(network, graph, model, client_id)
        except AssociationError:
            continue
        network.associate(client_id, ap_id)
    allocation = acorn.allocate()
    independent_total = model.aggregate_mbps(
        network, acorn.graph, assignment=allocation.assignment
    )
    return joint_total, independent_total


def test_ablation_joint_vs_independent(benchmark, coupling_results, emit):
    joint_total, independent_total = coupling_results
    table = render_table(
        ["configuration pipeline", "total (Mbps)"],
        [
            ["joint (Eq. 4 association + Algorithm 2)", joint_total],
            ["independent (selfish association + Algorithm 2)", independent_total],
        ],
        title=(
            "Ablation 2 — joint vs independent association/allocation\n"
            "The paper's thesis: the two are coupled under CB"
        ),
    )
    emit("ablation_joint", table)
    assert joint_total >= independent_total - 1e-6
    benchmark.pedantic(lambda: coupling_results, rounds=1, iterations=1)


def test_ablation_snr_calibration(benchmark, emit):
    """Remove the estimator's 3 dB width calibration and let it drive
    Algorithm 2's decisions; score the result with the true model.

    Topology 2 is the sensitive case: its poor cells are
    interference-free, so the *only* thing keeping them off 40 MHz is
    the estimator knowing that bonding costs 3 dB of SNR.
    """
    scenario = topology2()
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=7)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph

    calibrated = allocate_channels(
        scenario.network, graph, scenario.plan, model, rng=2
    )
    uncalibrated = allocate_channels(
        scenario.network,
        graph,
        scenario.plan,
        model,
        rng=2,
        decision_model=UncalibratedModel(),
    )
    table = render_table(
        ["estimator", "true aggregate (Mbps)"],
        [
            ["with 3 dB width calibration", calibrated.aggregate_mbps],
            ["calibration removed", uncalibrated.aggregate_mbps],
        ],
        title=(
            "Ablation 3 — the SNR calibration module\n"
            "Without the 3 dB correction the allocator over-bonds poor cells"
        ),
    )
    emit("ablation_calibration", table)
    # The calibrated estimator must not lose to the broken one, and on
    # this topology (poor cells tempted to bond) it wins outright.
    assert calibrated.aggregate_mbps > uncalibrated.aggregate_mbps
    benchmark.pedantic(
        lambda: allocate_channels(
            scenario.network, graph, scenario.plan, model, rng=2
        ),
        rounds=2,
        iterations=1,
    )
