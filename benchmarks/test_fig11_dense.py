"""Fig 11: dense deployment — who gets to bond when channels are scarce.

Three mutually contending APs, four 20 MHz channels. Only one AP can
bond and stay isolated. AP1 serves a good client, APs 2/3 poor clients.
The paper tabulates total throughput per width combination (X, Y, Z) and
finds ACORN's 40/20/20 best — almost 2x the all-40 configuration.
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.net import Channel, ThroughputModel, build_interference_graph
from repro.sim.scenario import dense_triangle

PAPER_ROWS = {
    "40,40,40": 42.3,
    "40,20,20": 79.98,  # ACORN's pick
    "20,40,20": 54.15,
    "20,20,40": 52.38,
}


def width_combo_assignment(combo):
    """Channels for a (w1, w2, w3) width combo on the 4-channel plan.

    Bonded cells take a 40 MHz pair; narrow cells take 20 MHz channels
    chosen to avoid conflicts with everything already placed (reusing
    spectrum only when unavoidable) — the sensible manual layout an
    operator would pick for each Fig 11 row.
    """
    bonded = [Channel(36, 40), Channel(44, 48)]
    narrow = [Channel(36), Channel(40), Channel(44), Channel(48)]
    assignment = {}
    bonded_iter = iter(bonded)
    for ap_index, width in enumerate(combo, start=1):
        ap_id = f"AP{ap_index}"
        if width == 40:
            assignment[ap_id] = next(bonded_iter)
            continue
        conflict_free = [
            channel
            for channel in narrow
            if not any(
                channel.conflicts_with(existing)
                for existing in assignment.values()
            )
        ]
        assignment[ap_id] = conflict_free[0] if conflict_free else narrow[0]
    return assignment


@pytest.fixture(scope="module")
def experiment():
    scenario = dense_triangle()
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=7)
    acorn_result = acorn.configure(scenario.client_order)
    graph = acorn.graph
    combos = {}
    for combo in ((40, 40, 40), (40, 20, 20), (20, 40, 20), (20, 20, 40)):
        # The all-40 combo cannot use two disjoint pairs for three APs;
        # reuse the pairs cyclically as an aggressive scheme would.
        if combo == (40, 40, 40):
            assignment = {
                "AP1": Channel(36, 40),
                "AP2": Channel(44, 48),
                "AP3": Channel(36, 40),
            }
        else:
            assignment = width_combo_assignment(combo)
        combos[combo] = model.aggregate_mbps(
            scenario.network,
            graph,
            assignment=assignment,
            associations=scenario.network.associations,
        )
    return acorn_result, combos


def test_fig11_dense_deployment(benchmark, experiment, emit):
    acorn_result, combos = experiment
    rows = [
        [
            ",".join(str(w) for w in combo),
            value,
            PAPER_ROWS[",".join(str(w) for w in combo)],
        ]
        for combo, value in combos.items()
    ]
    rows.append(["ACORN", acorn_result.total_mbps, PAPER_ROWS["40,20,20"]])
    table = render_table(
        ["widths X,Y,Z (MHz)", "total (Mbps)", "paper (Mbps)"],
        rows,
        float_format=".1f",
        title=(
            "Fig 11 — 3 contending APs, 4 channels\n"
            "Paper: ACORN's 40/20/20 wins; ~2x over aggressive all-40"
        ),
    )
    emit("fig11_dense", table)

    # ACORN bonds exactly the good-client AP.
    assignment = acorn_result.report.assignment
    assert assignment["AP1"].is_bonded
    assert not assignment["AP2"].is_bonded
    assert not assignment["AP3"].is_bonded
    # 40/20/20 is the best manual combo, and ACORN matches it.
    best_combo = max(combos, key=combos.get)
    assert best_combo == (40, 20, 20)
    assert acorn_result.total_mbps >= combos[best_combo] * 0.95
    # ~2x over the aggressive all-40 configuration.
    assert acorn_result.total_mbps > 1.5 * combos[(40, 40, 40)]

    scenario = dense_triangle()
    model = ThroughputModel()

    def kernel():
        acorn = Acorn(scenario.fresh_network(), scenario.plan, model, seed=7)
        return acorn.configure(scenario.client_order).total_mbps

    benchmark.pedantic(kernel, rounds=2, iterations=1)
