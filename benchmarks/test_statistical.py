"""Statistical robustness: ACORN vs "[17]" over many random deployments.

The paper evaluates on hand-picked topologies plus one random one
(Table 3); an open-source release should show the comparison holds *in
distribution*. This bench sweeps 12 independent random enterprise
WLANs and reports win rate and gain statistics, with and without the
association-refinement extension.
"""

import statistics

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines import KauffmannController
from repro.sim.scenario import random_enterprise

SEEDS = [100 + i for i in range(12)]
SHAPE = dict(n_aps=5, n_clients=12)


def run_seed(seed: int):
    acorn_scenario = random_enterprise(seed=seed, **SHAPE)
    acorn = Acorn(acorn_scenario.network, acorn_scenario.plan, seed=7)
    plain = acorn.configure(acorn_scenario.client_order).total_mbps

    refined_scenario = random_enterprise(seed=seed, **SHAPE)
    refined_acorn = Acorn(refined_scenario.network, refined_scenario.plan, seed=7)
    refined = refined_acorn.configure(
        refined_scenario.client_order, refine=True
    ).total_mbps

    baseline_scenario = random_enterprise(seed=seed, **SHAPE)
    baseline = (
        KauffmannController(baseline_scenario.network, baseline_scenario.plan)
        .configure(baseline_scenario.client_order)
        .total_mbps
    )
    return plain, refined, baseline


@pytest.fixture(scope="module")
def sweep():
    return {seed: run_seed(seed) for seed in SEEDS}


def test_statistical_robustness(benchmark, sweep, emit):
    rows = []
    for seed, (plain, refined, baseline) in sorted(sweep.items()):
        rows.append(
            [seed, plain, refined, baseline, plain / baseline, refined / baseline]
        )
    plain_gains = [plain / baseline for plain, _, baseline in sweep.values()]
    refined_gains = [
        refined / baseline for _, refined, baseline in sweep.values()
    ]
    rows.append(
        [
            "mean",
            statistics.mean(p for p, _, _ in sweep.values()),
            statistics.mean(r for _, r, _ in sweep.values()),
            statistics.mean(b for _, _, b in sweep.values()),
            statistics.mean(plain_gains),
            statistics.mean(refined_gains),
        ]
    )
    table = render_table(
        [
            "seed",
            "ACORN (Mbps)",
            "ACORN+refine",
            "[17] (Mbps)",
            "gain",
            "gain+refine",
        ],
        rows,
        float_format=".2f",
        title=(
            f"ACORN vs [17] over {len(SEEDS)} random enterprise WLANs "
            f"({SHAPE['n_aps']} APs, {SHAPE['n_clients']} clients)"
        ),
    )
    emit("statistical", table)

    plain_wins = sum(1 for gain in plain_gains if gain > 1.0)
    refined_wins = sum(1 for gain in refined_gains if gain > 1.0)
    # Paper-faithful ACORN wins a clear majority of deployments...
    assert plain_wins >= len(SEEDS) * 2 // 3
    # ...with a positive mean gain...
    assert statistics.mean(plain_gains) > 1.02
    # ...and the refinement extension never does worse than plain.
    for (plain, refined, _) in sweep.values():
        assert refined >= plain - 1e-6
    assert refined_wins >= plain_wins

    benchmark.pedantic(lambda: run_seed(SEEDS[0]), rounds=1, iterations=1)
