"""Fig 14: how close to optimal is ACORN's allocation in practice?

Nine sets of three mutually contending APs (Δ = 2). For each, the
isolation bound Y* = Σ max(T20_isol, T40_isol) is computed, then the
allocator runs with 2, 4 and 6 orthogonal channels. The paper's
findings: with 2 channels T ≈ Y*/3 (no worse than the 1/(Δ+1) bound),
with 6 channels T = Y* (full isolation), and with 4 channels ACORN
sometimes already reaches the optimum by giving a 20 MHz-preferring AP
a narrow channel.
"""

import pytest

from repro import Acorn
from repro.analysis.tables import render_table
from repro.baselines import isolation_upper_bound_mbps
from repro.core import allocate_channels
from repro.graph.coloring import worst_case_ratio
from repro.net import ThroughputModel
from repro.sim.scenario import ap_triple

N_TRIPLES = 9
CHANNEL_COUNTS = (2, 4, 6)


def run_triple(seed: int):
    scenario = ap_triple(seed)
    model = ThroughputModel()
    acorn = Acorn(scenario.network, scenario.plan, model, seed=seed)
    acorn.assign_initial_channels()
    acorn.admit_clients(scenario.client_order)
    graph = acorn.graph
    y_star = isolation_upper_bound_mbps(
        scenario.network, scenario.plan, model, scenario.network.associations
    )
    values = {}
    for n_channels in CHANNEL_COUNTS:
        plan = scenario.plan.subset(n_channels)
        result = allocate_channels(
            scenario.network, graph, plan, model, rng=seed
        )
        values[n_channels] = result.aggregate_mbps
    return y_star, values, worst_case_ratio(graph)


@pytest.fixture(scope="module")
def triples():
    return {seed: run_triple(seed) for seed in range(N_TRIPLES)}


def test_fig14_approximation_ratio(benchmark, triples, emit):
    rows = []
    for seed, (y_star, values, bound) in sorted(triples.items()):
        rows.append(
            [
                seed,
                y_star,
                values[2],
                values[4],
                values[6],
                values[6] / y_star if y_star else 0.0,
            ]
        )
    table = render_table(
        ["set", "Y*", "T (2 ch)", "T (4 ch)", "T (6 ch)", "T6/Y*"],
        rows,
        float_format=".1f",
        title=(
            "Fig 14 — ACORN allocation vs the isolation bound Y*\n"
            "Paper: 2 ch stays above Y*/3 (=Y* x 1/(delta+1)); 6 ch reaches Y*"
        ),
    )
    emit("fig14_approximation", table)

    reached_optimum_with_4 = 0
    for seed, (y_star, values, bound) in triples.items():
        # Never below the worst-case bound (delta = 2 -> Y*/3).
        assert values[2] >= bound * y_star - 1e-6
        # Monotone in the channel budget.
        assert values[2] <= values[4] + 1e-9 <= values[6] + 2e-9
        # Six channels isolate all three APs: T = Y*.
        assert values[6] == pytest.approx(y_star, rel=0.02)
        if values[4] >= 0.98 * values[6]:
            reached_optimum_with_4 += 1
    # "We observe some cases where ACORN performs very close to the
    # optimal even with only 4 channels" — at least one of nine sets.
    assert reached_optimum_with_4 >= 1

    benchmark.pedantic(lambda: run_triple(0), rounds=2, iterations=1)
