#!/usr/bin/env python
"""Lint wall-clock benchmark: full-tree ``repro lint`` under a budget.

Times repeated full runs of the static-analysis pass over ``src/repro``
(the exact work the CI lint gate performs), reports per-run wall clock,
per-file latency and findings count, and persists ``BENCH_lint.json``
at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py           # measure only
    PYTHONPATH=src python benchmarks/bench_lint.py --check   # gate the budget

``--check`` fails (exit 1) when the best-of-N full-tree run exceeds the
wall-clock budget (default 5 s) or when the tree is not clean — the
lint is only useful as a pre-commit/CI gate while it stays effectively
free to run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

from repro.analysis.tables import render_table
from repro.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_lint.json"
BUDGET_S = 5.0  # acceptance: best full-tree run under 5 s wall clock


def measure(target: pathlib.Path, repeats: int) -> dict:
    """Run the full lint ``repeats`` times and collect timings."""
    runs = []
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = lint_paths([target])
        runs.append(time.perf_counter() - start)
    best = min(runs)
    try:
        shown = str(target.relative_to(REPO_ROOT))
    except ValueError:
        shown = str(target)
    return {
        "target": shown,
        "repeats": repeats,
        "files_checked": report.files_checked,
        "findings": len(report.findings),
        "waivers": report.waivers,
        "wall_s_best": round(best, 4),
        "wall_s_median": round(statistics.median(runs), 4),
        "ms_per_file_best": round(1000.0 * best / max(report.files_checked, 1), 3),
    }


def check_budget(report: dict) -> list:
    """The acceptance gate: clean tree, best run under the budget."""
    failures = []
    if report["wall_s_best"] > BUDGET_S:
        failures.append(
            f"best full-tree run {report['wall_s_best']:.2f} s over the "
            f"{BUDGET_S:.1f} s budget"
        )
    if report["findings"]:
        failures.append(f"tree is not lint-clean: {report['findings']} finding(s)")
    return failures


def main(argv=None) -> int:
    """Benchmark entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", type=pathlib.Path, default=DEFAULT_TARGET,
        help="tree to lint (default src/repro)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="full runs to time (default 3)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when the best run exceeds the {BUDGET_S:.0f} s budget "
        "or the tree has findings",
    )
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    print(f"lint benchmark ({args.target}, {args.repeats} repeats)", flush=True)
    row = measure(args.target, max(1, args.repeats))
    report = {
        "benchmark": "lint",
        "generated_by": "benchmarks/bench_lint.py",
        "budget_s": BUDGET_S,
        **row,
    }
    print(
        render_table(
            ["files", "findings", "waivers", "best (s)", "median (s)", "ms/file"],
            [[
                row["files_checked"], row["findings"], row["waivers"],
                row["wall_s_best"], row["wall_s_median"], row["ms_per_file_best"],
            ]],
            float_format=".3f",
            title=f"Full-tree repro lint (budget {BUDGET_S:.1f} s)",
        )
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = check_budget(report)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("ok: lint budget satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
