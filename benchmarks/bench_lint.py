#!/usr/bin/env python
"""Lint wall-clock benchmark: cold vs warm full-tree ``repro lint``.

Times the two-phase flow-aware lint over ``src/repro`` (the exact work
the CI lint gate performs) in both cache states: *cold* runs start from
an empty ``.reprolint-cache.json`` in a scratch directory (full phase-1
extraction plus phase-2 flow analysis for every module), *warm* runs
replay the populated cache (content hashes and dependency fingerprints
all match, so no module is re-analysed). Persists ``BENCH_lint.json``
at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py           # measure only
    PYTHONPATH=src python benchmarks/bench_lint.py --check   # gate the budgets

``--check`` fails (exit 1) when the best cold run exceeds the wall-clock
budget (default 10 s), when the warm replay is under the 5x speedup
floor, or when the tree is not lint-clean — the lint is only useful as
a pre-commit/CI gate while the incremental path stays effectively free.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import statistics
import sys
import tempfile
import time

from repro.analysis.tables import render_table
from repro.lint import lint_paths

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from _shared import floor_failure_message  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_lint.json"
COLD_BUDGET_S = 10.0  # acceptance: best cold full-tree run under 10 s
WARM_SPEEDUP_FLOOR = 5.0  # acceptance: warm replay >= 5x faster than cold


def measure(target: pathlib.Path, repeats: int) -> dict:
    """Time cold and warm full-tree runs against a scratch cache dir."""
    cold_runs, warm_runs = [], []
    cold_report = warm_report = None
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="reprolint-bench-"))
    try:
        for _ in range(repeats):
            cache_file = scratch / ".reprolint-cache.json"
            if cache_file.exists():
                cache_file.unlink()
            start = time.perf_counter()
            cold_report = lint_paths([target], cache_dir=scratch)
            cold_runs.append(time.perf_counter() - start)
            start = time.perf_counter()
            warm_report = lint_paths([target], cache_dir=scratch)
            warm_runs.append(time.perf_counter() - start)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    cold_best, warm_best = min(cold_runs), min(warm_runs)
    try:
        shown = str(target.relative_to(REPO_ROOT))
    except ValueError:
        shown = str(target)
    return {
        "target": shown,
        "repeats": repeats,
        "files_checked": cold_report.files_checked,
        "findings": len(cold_report.findings),
        "waivers": cold_report.waivers,
        "cold_wall_s_best": round(cold_best, 4),
        "cold_wall_s_median": round(statistics.median(cold_runs), 4),
        "warm_wall_s_best": round(warm_best, 4),
        "warm_wall_s_median": round(statistics.median(warm_runs), 4),
        "warm_speedup_best": round(cold_best / warm_best, 2),
        "warm_files_from_cache": warm_report.files_from_cache,
        "warm_flow_reanalyzed": warm_report.flow_reanalyzed,
        "ms_per_file_cold_best": round(
            1000.0 * cold_best / max(cold_report.files_checked, 1), 3
        ),
    }


def check_budget(report: dict) -> list:
    """The acceptance gate: clean tree, cold budget, warm speedup floor."""
    failures = []
    if report["cold_wall_s_best"] > COLD_BUDGET_S:
        failures.append(
            f"best cold full-tree run {report['cold_wall_s_best']:.2f} s "
            f"over the {COLD_BUDGET_S:.1f} s budget"
        )
    if report["warm_speedup_best"] < WARM_SPEEDUP_FLOOR:
        failures.append(
            floor_failure_message(
                "lint", "warm/cold", report["warm_speedup_best"],
                WARM_SPEEDUP_FLOOR,
            )
        )
    if report["warm_files_from_cache"] != report["files_checked"]:
        failures.append(
            f"warm replay re-extracted "
            f"{report['files_checked'] - report['warm_files_from_cache']} "
            f"module(s); cache is not sticky"
        )
    if report["findings"]:
        failures.append(f"tree is not lint-clean: {report['findings']} finding(s)")
    return failures


def main(argv=None) -> int:
    """Benchmark entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", type=pathlib.Path, default=DEFAULT_TARGET,
        help="tree to lint (default src/repro)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold/warm run pairs to time (default 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when the best cold run exceeds the {COLD_BUDGET_S:.0f} s "
        f"budget, warm is under the {WARM_SPEEDUP_FLOOR:.0f}x floor, or the "
        "tree has findings",
    )
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    print(f"lint benchmark ({args.target}, {args.repeats} repeats)", flush=True)
    row = measure(args.target, max(1, args.repeats))
    report = {
        "benchmark": "lint",
        "generated_by": "benchmarks/bench_lint.py",
        "cold_budget_s": COLD_BUDGET_S,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        **row,
    }
    print(
        render_table(
            ["files", "findings", "cold (s)", "warm (s)", "speedup", "ms/file"],
            [[
                row["files_checked"], row["findings"],
                row["cold_wall_s_best"], row["warm_wall_s_best"],
                row["warm_speedup_best"], row["ms_per_file_cold_best"],
            ]],
            float_format=".3f",
            title=(
                f"Full-tree repro lint (cold budget {COLD_BUDGET_S:.1f} s, "
                f"warm floor {WARM_SPEEDUP_FLOOR:.0f}x)"
            ),
        )
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = check_budget(report)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("ok: lint budgets satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
