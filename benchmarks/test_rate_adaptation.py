"""Validation of the auto-rate substitution (DESIGN.md §2).

The paper's cards run a proprietary Ralink auto-rate; our network model
substitutes a goodput-optimal oracle. This bench drives a *learning*
controller (Minstrel-style sampling, the open-source standard) against
the same channels and shows it converges to within a few percent of the
oracle — so conclusions drawn with the oracle transfer to realistic
closed-loop rate control.
"""

import pytest

from repro.analysis.tables import render_table
from repro.link.minstrel import MinstrelController
from repro.mcs.selection import optimal_mcs
from repro.phy.ber import coded_ber
from repro.phy.mimo import MimoMode, effective_snr_db
from repro.phy.ofdm import OFDM_20MHZ
from repro.phy.per import per_from_ber

SNR_POINTS_DB = [2.0, 6.0, 12.0, 18.0, 24.0, 30.0, 36.0]
TRAIN_PACKETS = 3000


def success_probability_factory(snr_db: float):
    def success_probability(entry) -> float:
        mode = MimoMode.STBC if entry.n_streams == 1 else MimoMode.SDM
        stream_snr = effective_snr_db(snr_db, mode)
        ber = coded_ber(entry.modulation, entry.code_rate, stream_snr)
        return 1.0 - float(per_from_ber(ber))

    return success_probability


def run_point(snr_db: float):
    oracle = optimal_mcs(snr_db, OFDM_20MHZ)
    controller = MinstrelController(OFDM_20MHZ)
    channel = success_probability_factory(snr_db)
    best = controller.train(channel, n_packets=TRAIN_PACKETS, rng=int(snr_db))
    learned_goodput = best.rate_mbps(OFDM_20MHZ) * channel(best)
    return oracle, best, learned_goodput


@pytest.fixture(scope="module")
def sweep():
    return {snr: run_point(snr) for snr in SNR_POINTS_DB}


def test_minstrel_tracks_oracle(benchmark, sweep, emit):
    rows = []
    for snr, (oracle, best, learned_goodput) in sorted(sweep.items()):
        efficiency = (
            learned_goodput / oracle.goodput_mbps
            if oracle.goodput_mbps > 0
            else 1.0
        )
        rows.append(
            [
                snr,
                oracle.mcs.label,
                oracle.goodput_mbps,
                best.label,
                learned_goodput,
                efficiency,
            ]
        )
    table = render_table(
        [
            "SNR (dB)",
            "oracle MCS",
            "oracle goodput",
            "Minstrel MCS",
            "Minstrel goodput",
            "efficiency",
        ],
        rows,
        float_format=".2f",
        title=(
            "Auto-rate substitution check: sampling rate control vs the "
            "goodput oracle (HT20)"
        ),
    )
    emit("rate_adaptation", table)

    for snr, (oracle, _, learned_goodput) in sweep.items():
        if oracle.goodput_mbps > 1.0:
            assert learned_goodput >= 0.8 * oracle.goodput_mbps
    # Averaged over the sweep, the learner is within 10 % of the oracle.
    efficiencies = [
        learned / oracle.goodput_mbps
        for oracle, _, learned in sweep.values()
        if oracle.goodput_mbps > 1.0
    ]
    assert sum(efficiencies) / len(efficiencies) > 0.9

    benchmark.pedantic(lambda: run_point(18.0), rounds=2, iterations=1)
