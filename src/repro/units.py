"""Unit conversions used throughout the ACORN reproduction.

Radio engineering mixes logarithmic (dB, dBm) and linear (mW, W, plain
ratios) quantities freely; keeping the conversions in one tested module
avoids the classic factor-of-10 and log-base bugs. ``repro lint``
(rule RL002) enforces this centralisation: inline ``10*log10`` /
``10**(x/10)`` arithmetic outside this module is a lint finding unless
the file carries an explicit waiver.

Conventions
-----------
* ``dBm`` is absolute power referenced to 1 milliwatt.
* ``dB`` is a dimensionless power *ratio* on a logarithmic scale.
* SNR values are power ratios: ``snr_db = 10 * log10(snr_linear)``.
* :func:`linear_to_db` and :func:`db_to_linear` are array-aware: given
  a numpy array (or any sequence) they convert element-wise and return
  an ``ndarray``; given a plain scalar they return a ``float``.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from .errors import UnitsError

__all__ = [
    "THERMAL_NOISE_DBM_PER_HZ",
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "db_to_amplitude",
    "amplitude_to_db",
    "add_powers_dbm",
    "noise_floor_dbm",
    "mhz_to_hz",
    "hz_to_mhz",
    "mbps_to_bps",
    "bps_to_mbps",
]

# Johnson-Nyquist thermal noise density at ~290 K (dBm per Hz of
# bandwidth) — the "-174" of the paper's Eq. 1.
THERMAL_NOISE_DBM_PER_HZ = -174.0

# Smallest power we will express in dBm; avoids ``log10(0)`` blowing up
# when a simulated signal is entirely absent.
_MIN_POWER_MW = 1e-30

# Scalar in, float out; array-like in, ndarray out.
ArrayLike = Union[float, "np.ndarray"]


def dbm_to_mw(power_dbm: float) -> float:
    """Convert an absolute power from dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert an absolute power from milliwatts to dBm.

    Raises
    ------
    UnitsError
        If ``power_mw`` is negative; physical powers cannot be negative.
    """
    if power_mw < 0:
        raise UnitsError(f"power must be non-negative, got {power_mw} mW")
    return 10.0 * math.log10(max(power_mw, _MIN_POWER_MW))


def dbm_to_watts(power_dbm: float) -> float:
    """Convert an absolute power from dBm to watts."""
    return dbm_to_mw(power_dbm) / 1e3


def watts_to_dbm(power_w: float) -> float:
    """Convert an absolute power from watts to dBm."""
    if power_w < 0:
        raise UnitsError(f"power must be non-negative, got {power_w} W")
    return mw_to_dbm(power_w * 1e3)


def db_to_linear(ratio_db: ArrayLike) -> ArrayLike:
    """Convert power ratio(s) from decibels to linear ratio(s).

    Scalars convert through :mod:`math` and return ``float``; anything
    array-like converts element-wise and returns an ``ndarray``.
    """
    if isinstance(ratio_db, (int, float)):
        return 10.0 ** (float(ratio_db) / 10.0)
    values = np.asarray(ratio_db, dtype=float)
    return np.power(10.0, values / 10.0)


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert linear power ratio(s) to decibels (element-wise on arrays).

    Ratios below :data:`_MIN_POWER_MW` are clamped rather than allowed
    to produce ``-inf``.

    Raises
    ------
    UnitsError
        If any ratio is negative.
    """
    if isinstance(ratio, (int, float)):
        if ratio < 0:
            raise UnitsError(f"ratio must be non-negative, got {ratio}")
        return 10.0 * math.log10(max(float(ratio), _MIN_POWER_MW))
    values = np.asarray(ratio, dtype=float)
    if np.any(values < 0):
        raise UnitsError("ratios must be non-negative")
    return 10.0 * np.log10(np.maximum(values, _MIN_POWER_MW))


def db_to_amplitude(gain_db: ArrayLike) -> ArrayLike:
    """Convert amplitude (voltage) gain(s) from decibels to linear.

    Amplitude quantities use the factor-of-20 convention:
    ``amplitude = 10 ** (gain_db / 20)``. IQ gain imbalance and field
    strengths are amplitudes; SNR and powers are not — use
    :func:`db_to_linear` for those.
    """
    if isinstance(gain_db, (int, float)):
        return 10.0 ** (float(gain_db) / 20.0)
    values = np.asarray(gain_db, dtype=float)
    return np.power(10.0, values / 20.0)


def amplitude_to_db(amplitude: ArrayLike) -> ArrayLike:
    """Convert linear amplitude (voltage) gain(s) to decibels.

    Raises
    ------
    UnitsError
        If any amplitude is negative.
    """
    if isinstance(amplitude, (int, float)):
        if amplitude < 0:
            raise UnitsError(f"amplitude must be non-negative, got {amplitude}")
        return 20.0 * math.log10(max(float(amplitude), _MIN_POWER_MW))
    values = np.asarray(amplitude, dtype=float)
    if np.any(values < 0):
        raise UnitsError("amplitudes must be non-negative")
    return 20.0 * np.log10(np.maximum(values, _MIN_POWER_MW))


def add_powers_dbm(*powers_dbm: float) -> float:
    """Sum absolute powers expressed in dBm (linear-domain addition).

    Useful for accumulating interference from several transmitters:
    ``add_powers_dbm(-90, -90)`` is ``-87`` (3 dB up), not ``-180``.
    """
    if not powers_dbm:
        raise UnitsError("at least one power value is required")
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


def noise_floor_dbm(bandwidth_hz: float) -> float:
    """Thermal noise power in dBm over ``bandwidth_hz`` — the paper's Eq. 1.

    ``N (dBm) = -174 + 10 * log10(B)``: doubling the bandwidth (20 →
    40 MHz channel bonding) raises the floor by ~3 dB. Receiver noise
    figure is *not* included; :func:`repro.phy.noise.noise_floor_dbm`
    layers it on top.

    Raises
    ------
    UnitsError
        If ``bandwidth_hz`` is not positive.
    """
    if bandwidth_hz <= 0:
        raise UnitsError(
            f"bandwidth must be positive, got {bandwidth_hz} Hz"
        )
    return THERMAL_NOISE_DBM_PER_HZ + linear_to_db(bandwidth_hz)


def mhz_to_hz(freq_mhz: float) -> float:
    """Convert megahertz to hertz."""
    return freq_mhz * 1e6


def hz_to_mhz(freq_hz: float) -> float:
    """Convert hertz to megahertz."""
    return freq_hz / 1e6


def mbps_to_bps(rate_mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return rate_mbps * 1e6


def bps_to_mbps(rate_bps: float) -> float:
    """Convert bits per second to megabits per second."""
    return rate_bps / 1e6
