"""Unit conversions used throughout the ACORN reproduction.

Radio engineering mixes logarithmic (dB, dBm) and linear (mW, W, plain
ratios) quantities freely; keeping the conversions in one tested module
avoids the classic factor-of-10 and log-base bugs.

Conventions
-----------
* ``dBm`` is absolute power referenced to 1 milliwatt.
* ``dB`` is a dimensionless power *ratio* on a logarithmic scale.
* SNR values are power ratios: ``snr_db = 10 * log10(snr_linear)``.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "add_powers_dbm",
    "mhz_to_hz",
    "hz_to_mhz",
    "mbps_to_bps",
    "bps_to_mbps",
]

# Smallest power we will express in dBm; avoids ``log10(0)`` blowing up
# when a simulated signal is entirely absent.
_MIN_POWER_MW = 1e-30


def dbm_to_mw(power_dbm: float) -> float:
    """Convert an absolute power from dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert an absolute power from milliwatts to dBm.

    Raises
    ------
    ValueError
        If ``power_mw`` is negative; physical powers cannot be negative.
    """
    if power_mw < 0:
        raise ValueError(f"power must be non-negative, got {power_mw} mW")
    return 10.0 * math.log10(max(power_mw, _MIN_POWER_MW))


def dbm_to_watts(power_dbm: float) -> float:
    """Convert an absolute power from dBm to watts."""
    return dbm_to_mw(power_dbm) / 1e3


def watts_to_dbm(power_w: float) -> float:
    """Convert an absolute power from watts to dBm."""
    if power_w < 0:
        raise ValueError(f"power must be non-negative, got {power_w} W")
    return mw_to_dbm(power_w * 1e3)


def db_to_linear(ratio_db: float) -> float:
    """Convert a power ratio from decibels to a linear ratio."""
    return 10.0 ** (ratio_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises
    ------
    ValueError
        If ``ratio`` is negative.
    """
    if ratio < 0:
        raise ValueError(f"ratio must be non-negative, got {ratio}")
    return 10.0 * math.log10(max(ratio, _MIN_POWER_MW))


def add_powers_dbm(*powers_dbm: float) -> float:
    """Sum absolute powers expressed in dBm (linear-domain addition).

    Useful for accumulating interference from several transmitters:
    ``add_powers_dbm(-90, -90)`` is ``-87`` (3 dB up), not ``-180``.
    """
    if not powers_dbm:
        raise ValueError("at least one power value is required")
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


def mhz_to_hz(freq_mhz: float) -> float:
    """Convert megahertz to hertz."""
    return freq_mhz * 1e6


def hz_to_mhz(freq_hz: float) -> float:
    """Convert hertz to megahertz."""
    return freq_hz / 1e6


def mbps_to_bps(rate_mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return rate_mbps * 1e6


def bps_to_mbps(rate_bps: float) -> float:
    """Convert bits per second to megabits per second."""
    return rate_bps / 1e6
