"""Reproduction of "Auto-configuration of 802.11n WLANs" (ACORN, CoNEXT 2010).

The package layers bottom-up:

* :mod:`repro.phy` — OFDM numerologies, modulation, coding, noise, BER/PER
* :mod:`repro.warp` — the sample-level OFDM testbed chain (Section 3.1)
* :mod:`repro.mcs` — 802.11n MCS tables and goodput-optimal selection
* :mod:`repro.link` — link budgets, ACORN's quality estimator, σ, rate control
* :mod:`repro.mac` — DCF airtime, the performance anomaly, X = M/ATD
* :mod:`repro.net` — channels-as-colours, topology, interference graph, Y(F)
* :mod:`repro.core` — ACORN: Algorithms 1 and 2 plus the controller
* :mod:`repro.baselines` — "[17]", RSSI, fixed widths, random, brute force
* :mod:`repro.sim` — paper scenarios, traffic models, mobility
* :mod:`repro.traces` — synthetic association-duration workload (Fig 9)
* :mod:`repro.analysis` — ECDF, R², report tables

Quickstart::

    from repro import Acorn, ChannelPlan
    from repro.sim import topology1

    scenario = topology1()
    acorn = Acorn(scenario.network, scenario.plan)
    result = acorn.configure(scenario.client_order)
    print(result.report.per_ap_mbps, result.total_mbps)
"""

from .config import (
    ACORN_EPSILON,
    ACORN_PERIOD_SECONDS,
    MAX_TX_POWER_DBM,
    PathLossModel,
    SimulationConfig,
)
from .core import Acorn, AcornResult, allocate_channels, choose_ap
from .link import LinkBudget, LinkQualityEstimator, RateController
from .net import (
    AccessPoint,
    Channel,
    ChannelPlan,
    Client,
    Network,
    NetworkReport,
    ThroughputModel,
    build_interference_graph,
)

__version__ = "1.0.0"

__all__ = [
    "ACORN_EPSILON",
    "ACORN_PERIOD_SECONDS",
    "MAX_TX_POWER_DBM",
    "PathLossModel",
    "SimulationConfig",
    "Acorn",
    "AcornResult",
    "allocate_channels",
    "choose_ap",
    "LinkBudget",
    "LinkQualityEstimator",
    "RateController",
    "AccessPoint",
    "Channel",
    "ChannelPlan",
    "Client",
    "Network",
    "NetworkReport",
    "ThroughputModel",
    "build_interference_graph",
    "__version__",
]
