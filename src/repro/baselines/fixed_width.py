"""Fixed-width baselines: everyone on 20 MHz, or everyone on 40 MHz.

Legacy configuration systems employ "bands of a single width"; these
helpers produce orthogonal-as-possible single-width plans for comparison
and for the mobility experiment's fixed-width references.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ChannelError
from ..net.channels import Channel, ChannelPlan
from ..net.topology import Network

__all__ = ["assign_orthogonal"]


def assign_orthogonal(
    network: Network, plan: ChannelPlan, width_mhz: int
) -> Dict[str, Channel]:
    """Round-robin single-width assignment over the plan's channels.

    With enough channels every AP is orthogonal; otherwise channels are
    reused cyclically (the dense-deployment regime of Fig 11).
    """
    if width_mhz == 20:
        palette = plan.channels_20()
    elif width_mhz == 40:
        palette = plan.channels_40()
    else:
        raise ChannelError(f"width must be 20 or 40 MHz, got {width_mhz}")
    if not palette:
        raise ChannelError(f"the plan offers no {width_mhz} MHz channels")
    assignment = {
        ap_id: palette[index % len(palette)]
        for index, ap_id in enumerate(network.ap_ids)
    }
    for ap_id, channel in assignment.items():
        network.set_channel(ap_id, channel)
    return assignment
