"""Random manual configurations (the Table 3 comparison set).

The paper configures "APs with random channels (both 20 and 40 MHz) and
let[s] each client associate with one of the APs in range with equal
probability", repeats 50 times, and compares ACORN against the 10 best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from ..config import make_rng
from ..errors import ConfigurationError
from ..net.channels import Channel, ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network

__all__ = ["RandomConfiguration", "RandomConfigurator"]


@dataclass(frozen=True)
class RandomConfiguration:
    """One random channel/association draw with its evaluated throughput."""

    assignment: Dict[str, Channel]
    associations: Dict[str, str]
    total_mbps: float


class RandomConfigurator:
    """Draws and evaluates random manual configurations."""

    def __init__(
        self,
        network: Network,
        graph: nx.Graph,
        plan: ChannelPlan,
        model: Optional[ThroughputModel] = None,
        min_snr20_db: "float | None" = None,
    ) -> None:
        self.network = network
        self.graph = graph
        self.plan = plan
        self.model = model if model is not None else ThroughputModel()
        if min_snr20_db is None:
            from ..link.adaptation import serviceability_floor_db

            min_snr20_db = serviceability_floor_db(self.model.packet_bytes)
        self.min_snr20_db = min_snr20_db

    def draw(self, rng: "np.random.Generator | int | None" = None) -> RandomConfiguration:
        """One random configuration: uniform channels, uniform association."""
        rng = make_rng(rng)
        palette = self.plan.all_channels()
        assignment = {
            ap_id: palette[int(rng.integers(0, len(palette)))]
            for ap_id in self.network.ap_ids
        }
        associations: Dict[str, str] = {}
        for client_id in self.network.client_ids:
            candidates = self.network.candidate_aps(client_id, self.min_snr20_db)
            if not candidates:
                continue
            associations[client_id] = candidates[
                int(rng.integers(0, len(candidates)))
            ]
        total = self.model.aggregate_mbps(
            self.network,
            self.graph,
            assignment=assignment,
            associations=associations,
        )
        return RandomConfiguration(
            assignment=assignment, associations=associations, total_mbps=total
        )

    def sample(
        self,
        n_configurations: int = 50,
        rng: "np.random.Generator | int | None" = None,
    ) -> List[RandomConfiguration]:
        """Draw many configurations (Table 3 uses 50)."""
        if n_configurations <= 0:
            raise ConfigurationError(
                f"need a positive sample size, got {n_configurations}"
            )
        rng = make_rng(rng)
        return [self.draw(rng) for _ in range(n_configurations)]

    def best(
        self,
        n_configurations: int = 50,
        keep: int = 10,
        rng: "np.random.Generator | int | None" = None,
    ) -> List[RandomConfiguration]:
        """The ``keep`` best of ``n_configurations`` draws, descending."""
        if keep <= 0:
            raise ConfigurationError(f"keep must be positive, got {keep}")
        configurations = self.sample(n_configurations, rng)
        configurations.sort(key=lambda c: c.total_mbps, reverse=True)
        return configurations[:keep]
