"""Exact references: brute-force optimal allocation and the Y* bound.

The channel allocation problem is NP-complete (Section 4.2), but for the
small instances used in Fig 14 (three APs) exhaustive search over the
colour palette is feasible and gives the true optimum. The looser
isolation bound Y* = Σ_i max(X_i^isol-20, X_i^isol-40) is the paper's
reference line.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Mapping, Optional, Tuple

import networkx as nx

from ..errors import AllocationError
from ..net.channels import Channel, ChannelPlan
from ..net.evaluator import DeltaEvaluator
from ..net.state import CompiledEvaluator, CompiledNetwork, supports_compiled
from ..net.throughput import ThroughputModel
from ..net.topology import Network

__all__ = ["brute_force_allocation", "isolation_upper_bound_mbps"]

# Refuse exhaustive searches beyond this many assignments.
_MAX_SEARCH_SIZE = 500_000


def brute_force_allocation(
    network: Network,
    graph: nx.Graph,
    plan: ChannelPlan,
    model: ThroughputModel,
    associations: Optional[Mapping[str, str]] = None,
) -> Tuple[Dict[str, Channel], float]:
    """The throughput-optimal assignment by exhaustive search.

    Returns ``(assignment, aggregate_mbps)``. Raises for instances whose
    search space exceeds a safety bound — the point of ACORN's greedy
    algorithm is precisely that this search does not scale.
    """
    ap_ids = network.ap_ids
    palette = plan.all_channels()
    if not ap_ids:
        raise AllocationError("no APs to allocate")
    search_size = len(palette) ** len(ap_ids)
    if search_size > _MAX_SEARCH_SIZE:
        raise AllocationError(
            f"search space {search_size} exceeds {_MAX_SEARCH_SIZE}; "
            "use the greedy allocator for instances this large"
        )
    engine: "DeltaEvaluator | CompiledEvaluator"
    if supports_compiled(model):
        engine = CompiledEvaluator(
            CompiledNetwork.compile(network, graph, plan),
            model=model,
            assignment={},
            associations=(
                associations if associations is not None
                else network.associations
            ),
        )
    else:
        engine = DeltaEvaluator(
            network, graph, model=model, assignment={}, associations=associations
        )
    best_assignment: Optional[Dict[str, Channel]] = None
    best_value = float("-inf")
    value = float("-inf")
    previous: Optional[Tuple[Channel, ...]] = None
    # itertools.product varies the last position fastest, so consecutive
    # combinations almost always differ in a short suffix: committing
    # only the changed positions turns each step into O(deg) work.
    for combination in product(palette, repeat=len(ap_ids)):
        if previous is None:
            value = engine.reset(dict(zip(ap_ids, combination)))
        else:
            for index, channel in enumerate(combination):
                if channel != previous[index]:
                    value = engine.commit(ap_ids[index], channel)
        previous = combination
        if value > best_value:
            best_value = value
            best_assignment = dict(zip(ap_ids, combination))
    assert best_assignment is not None
    return best_assignment, best_value


def isolation_upper_bound_mbps(
    network: Network,
    plan: ChannelPlan,
    model: ThroughputModel,
    associations: Optional[Mapping[str, str]] = None,
) -> float:
    """Y*: every AP alone on its best width — Eq. 5's loose upper bound.

    "Note that Y* computed as above is a loose upper bound, since
    complete isolation of the APs is not always possible" with few
    channels.
    """
    palette = plan.all_channels()
    return sum(
        model.best_isolated_throughput_mbps(network, ap_id, palette, associations)
        for ap_id in network.ap_ids
    )
