"""Comparison schemes: the paper's "[17]" baseline, RSSI association,
fixed widths, random manual configurations, and brute-force optimal."""

from .kauffmann import KauffmannController, kauffmann_allocate, kauffmann_choose_ap
from .rssi import rssi_choose_ap
from .fixed_width import assign_orthogonal
from .random_config import RandomConfiguration, RandomConfigurator
from .optimal import brute_force_allocation, isolation_upper_bound_mbps

__all__ = [
    "KauffmannController",
    "kauffmann_allocate",
    "kauffmann_choose_ap",
    "rssi_choose_ap",
    "assign_orthogonal",
    "RandomConfiguration",
    "RandomConfigurator",
    "brute_force_allocation",
    "isolation_upper_bound_mbps",
]
