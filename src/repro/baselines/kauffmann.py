"""The paper's main baseline, referred to as "[17]".

Kauffmann et al. (INFOCOM 2007) self-organise legacy WLANs with
delay-based association and interference-minimising frequency selection
— designed for a *single* channel width. The paper evaluates it
"modified ... to implement a greedy strategy where APs aggressively use
the (single width) 40 MHz channels: they scan 40 MHz channels and select
the one that minimizes the total noise and interference".

Association is the X_w,u maximisation from [17] (each client picks the
AP giving *itself* the best per-client throughput) — selfish, unlike
ACORN's Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.beacon import gather_beacon
from ..core.association import throughput_with_mbps
from ..errors import AssociationError, ChannelError
from ..net.batch import BatchedEvaluator
from ..net.channels import Channel, ChannelPlan
from ..net.evaluator import DeltaEvaluator
from ..net.interference import build_interference_graph
from ..net.state import CompiledEvaluator, CompiledNetwork
from ..net.throughput import NetworkReport, ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer

__all__ = [
    "kauffmann_choose_ap",
    "kauffmann_allocate",
    "KauffmannController",
    "KauffmannResult",
]


def kauffmann_choose_ap(
    network: Network,
    graph: nx.Graph,
    model: ThroughputModel,
    client_id: str,
    candidates: Optional[Sequence[str]] = None,
    min_snr20_db: "float | None" = None,
    compiled: Optional[CompiledNetwork] = None,
) -> Tuple[str, Dict[str, float]]:
    """Delay-based *selfish* association: maximise own X_w,u.

    Equivalent to minimising the client's own expected transmission
    delay share, the criterion of [17]. ``compiled`` serves candidate
    scans and beacon delays from frozen arrays (same floats).
    """
    if min_snr20_db is None:
        from ..link.adaptation import serviceability_floor_db

        min_snr20_db = serviceability_floor_db(model.packet_bytes)
    if candidates is None:
        source = network if compiled is None else compiled
        candidates = tuple(source.candidate_aps(client_id, min_snr20_db))
    else:
        candidates = tuple(candidates)
    if not candidates:
        raise AssociationError(f"client {client_id!r} has no candidate APs")
    scores = {}
    for ap_id in candidates:
        beacon = gather_beacon(
            network, graph, model, ap_id, client_id, compiled=compiled
        )
        scores[ap_id] = throughput_with_mbps(beacon, model)
    best = max(candidates, key=lambda ap_id: (scores[ap_id],))
    return best, scores


def kauffmann_allocate(
    network: Network,
    graph: nx.Graph,
    plan: ChannelPlan,
    passes: int = 2,
    engine: "Optional[DeltaEvaluator | CompiledEvaluator]" = None,
    compiled: Optional[CompiledNetwork] = None,
) -> Dict[str, Channel]:
    """Greedy interference-minimising allocation of 40 MHz channels only.

    Each AP in turn picks the bonded channel conflicting with the fewest
    already-assigned interference-graph neighbours (the "total noise and
    interference" proxy at equal transmit powers). A second pass lets
    early APs react to later choices, mirroring the iterative scanning
    of [17]. Conflict counting goes through the evaluation engine's
    stateless ``contention_load`` oracle — by default the compiled
    array-backed engine (:class:`~repro.net.state.CompiledEvaluator`),
    whose counts are bit-identical to the dict engine's — so the binary
    conflict test and cached neighbour lists are shared with every
    other allocator.
    """
    palette = plan.channels_40()
    if not palette:
        raise ChannelError(
            "the plan offers no 40 MHz channels; [17]-greedy needs them"
        )
    if engine is None:
        if compiled is None:
            compiled = CompiledNetwork.compile(network, graph, plan)
        engine = CompiledEvaluator(compiled, assignment={})
    batch = (
        BatchedEvaluator(engine)
        if isinstance(engine, CompiledEvaluator)
        else None
    )
    tracer = active_tracer()
    observe = tracer.enabled
    if observe:
        tracer.start("kauffmann.allocate")
    scans = 0
    assignment: Dict[str, Channel] = {}
    for _ in range(max(1, passes)):
        for ap_id in network.ap_ids:
            if batch is not None:
                # One vectorized scan per AP; the loads are bit-identical
                # to the scalar oracle's, and ``argmin`` returns the
                # first minimum — the same channel the strict-< ratchet
                # below would keep.
                loads = batch.contention_loads(
                    ap_id, palette, assignment=assignment
                )
                scans += len(palette)
                assignment[ap_id] = palette[int(np.argmin(loads))]
                continue
            best_channel = None
            best_conflicts = None
            for channel in palette:
                conflicts = engine.contention_load(
                    ap_id, channel, assignment=assignment
                )
                scans += 1
                if best_conflicts is None or conflicts < best_conflicts:
                    best_conflicts = conflicts
                    best_channel = channel
            assert best_channel is not None
            assignment[ap_id] = best_channel
    if observe:
        tracer.end("kauffmann.allocate")
        tracer.metrics.counter("kauffmann.contention_scans").inc(scans)
    return assignment


@dataclass
class KauffmannResult:
    """Outcome of a full [17] configuration pass."""

    report: NetworkReport
    assignment: Dict[str, Channel]
    association_order: List[str] = field(default_factory=list)

    @property
    def total_mbps(self) -> float:
        """Aggregate network throughput of the final configuration."""
        return self.report.total_mbps


class KauffmannController:
    """Drop-in counterpart to :class:`repro.core.controller.Acorn`.

    Runs selfish association plus aggressive 40 MHz allocation, so
    benchmark code can configure the same network both ways.
    """

    def __init__(
        self,
        network: Network,
        plan: ChannelPlan,
        model: Optional[ThroughputModel] = None,
        min_snr20_db: "float | None" = None,
    ) -> None:
        self.network = network
        self.plan = plan
        self.model = model if model is not None else ThroughputModel()
        if min_snr20_db is None:
            from ..link.adaptation import serviceability_floor_db

            min_snr20_db = serviceability_floor_db(self.model.packet_bytes)
        self.min_snr20_db = min_snr20_db
        self._graph: Optional[nx.Graph] = None

    @property
    def graph(self) -> nx.Graph:
        """The current interference graph (rebuilt on demand)."""
        if self._graph is None:
            self._graph = build_interference_graph(self.network)
        return self._graph

    def invalidate_graph(self) -> None:
        """Force an interference-graph rebuild after topology changes."""
        self._graph = None

    def configure(
        self, client_order: Optional[Sequence[str]] = None
    ) -> KauffmannResult:
        """Allocate aggressively, then admit clients selfishly."""
        tracer = active_tracer()
        if not tracer.enabled:
            return self._configure(client_order)
        with tracer.span("kauffmann.configure"):
            return self._configure(client_order)

    def _configure(
        self, client_order: Optional[Sequence[str]] = None
    ) -> KauffmannResult:
        """The :meth:`configure` body, free of tracing scaffolding."""
        assignment = kauffmann_allocate(self.network, self.graph, self.plan)
        for ap_id, channel in assignment.items():
            self.network.set_channel(ap_id, channel)
        order = list(
            client_order if client_order is not None else self.network.client_ids
        )
        for client_id in order:
            try:
                ap_id, _ = kauffmann_choose_ap(
                    self.network,
                    self.graph,
                    self.model,
                    client_id,
                    min_snr20_db=self.min_snr20_db,
                )
            except AssociationError:
                continue
            self.network.associate(client_id, ap_id)
            self.invalidate_graph()
        # Re-run allocation once with clients in place (the scan in [17]
        # is measurement driven, hence association-aware).
        assignment = kauffmann_allocate(self.network, self.graph, self.plan)
        for ap_id, channel in assignment.items():
            self.network.set_channel(ap_id, channel)
        report = self.model.evaluate(self.network, self.graph)
        return KauffmannResult(
            report=report, assignment=assignment, association_order=order
        )
