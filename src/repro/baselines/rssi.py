"""RSSI-based association: the simplest legacy baseline.

"Affiliation decisions that are based on the received signal strength
(RSS) of the beacons do not require each user to associate with the APs
in range first" — but ignore load entirely and can pile users onto a few
overloaded APs (Section 4.1's critique, after [29]).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..errors import AssociationError
from ..net.topology import Network

__all__ = ["rssi_choose_ap"]


def rssi_choose_ap(
    network: Network,
    client_id: str,
    candidates: Optional[Sequence[str]] = None,
    min_snr20_db: float = -5.0,
) -> Tuple[str, Dict[str, float]]:
    """Associate with the strongest-signal AP.

    SNR orders identically to RSS here (same noise floor at every
    client), so the 20 MHz link SNR serves as the beacon RSS.
    """
    if candidates is None:
        candidates = network.candidate_aps(client_id, min_snr20_db)
    else:
        candidates = tuple(candidates)
    if not candidates:
        raise AssociationError(f"client {client_id!r} has no candidate APs")
    strengths = {
        ap_id: network.link_budget(ap_id, client_id).snr20_db
        for ap_id in candidates
    }
    best = max(candidates, key=lambda ap_id: (strengths[ap_id],))
    return best, strengths
