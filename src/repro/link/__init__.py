"""Link-level models: budgets, the ACORN quality estimator, σ, rate control."""

from .budget import LinkBudget
from .estimator import LinkQualityEstimator, WidthEstimate
from .quality import sigma, sigma_from_snr, transition_snr_db, cb_is_beneficial
from .adaptation import RateController
from .minstrel import MinstrelController, RateStats

__all__ = [
    "LinkBudget",
    "LinkQualityEstimator",
    "WidthEstimate",
    "sigma",
    "sigma_from_snr",
    "transition_snr_db",
    "cb_is_beneficial",
    "RateController",
    "MinstrelController",
    "RateStats",
]
