"""The σ metric (Eq. 3) and the width-transition analysis behind Table 1.

``σ = (1 - PER20) / (1 - PER40)`` compares packet delivery probability
without and with channel bonding at the *same transmit power*. Since the
40 MHz nominal rate is roughly double (R40/R20 = 108/52 ≈ 2.08), bonding
yields a net throughput *loss* whenever σ exceeds that rate ratio — the
paper's inequality 3, with the threshold rounded to 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from ..phy.modulation import Modulation
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ
from .estimator import LinkQualityEstimator

__all__ = [
    "RATE_RATIO_40_TO_20",
    "sigma",
    "sigma_from_snr",
    "cb_is_beneficial",
    "transition_snr_db",
    "sigma_cap",
]

# Nominal rate ratio between widths for the same modulation-and-coding:
# 108 vs 52 data subcarriers.
RATE_RATIO_40_TO_20 = OFDM_40MHZ.n_data / OFDM_20MHZ.n_data

# Visualisation cap used by the paper's Fig 5 ("when σ > 10, we cap it").
SIGMA_CAP = 10.0


def sigma(per20: float, per40: float) -> float:
    """σ from measured PERs (Eq. 3).

    Returns ``inf`` when the 40 MHz link delivers nothing while the
    20 MHz link still does.
    """
    for name, value in (("per20", per20), ("per40", per40)):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    delivered20 = 1.0 - per20
    delivered40 = 1.0 - per40
    if delivered40 == 0.0:
        return float("inf") if delivered20 > 0 else 1.0
    return delivered20 / delivered40


def sigma_cap(value: float, cap: float = SIGMA_CAP) -> float:
    """Cap σ for plotting, as done in Fig 5."""
    return min(value, cap)


def sigma_from_snr(
    snr20_db: float,
    modulation: Modulation,
    code_rate: float,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    estimator: Optional[LinkQualityEstimator] = None,
) -> float:
    """σ predicted by the estimator pipeline at a given 20 MHz SNR."""
    estimator = estimator or LinkQualityEstimator(packet_bytes=packet_bytes)
    est20, est40 = estimator.estimate_both_widths(snr20_db, modulation, code_rate)
    return sigma(est20.per, est40.per)


def cb_is_beneficial(
    snr20_db: float,
    modulation: Modulation,
    code_rate: float,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    estimator: Optional[LinkQualityEstimator] = None,
) -> bool:
    """True when bonding raises this link's goodput (inequality 3).

    Bonding wins iff ``σ < R40/R20``.
    """
    value = sigma_from_snr(
        snr20_db, modulation, code_rate, packet_bytes, estimator
    )
    return value < RATE_RATIO_40_TO_20


def transition_snr_db(
    modulation: Modulation,
    code_rate: float,
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
    snr_range_db: Tuple[float, float] = (-10.0, 40.0),
    resolution_db: float = 0.1,
    estimator: Optional[LinkQualityEstimator] = None,
) -> Optional[float]:
    """Highest SNR at which σ still reaches 2 — the Table 1 boundary γ.

    Scans downward from high SNR; returns the first (largest) SNR where
    σ ≥ 2, i.e. the boundary between the "CB helps" and "CB hurts"
    regimes for this modulation-and-coding. ``None`` if σ never
    reaches 2 in the scanned range.
    """
    if resolution_db <= 0:
        raise ConfigurationError(
            f"resolution must be positive, got {resolution_db}"
        )
    low, high = snr_range_db
    if low >= high:
        raise ConfigurationError(f"invalid SNR range {snr_range_db}")
    estimator = estimator or LinkQualityEstimator(packet_bytes=packet_bytes)
    for snr in np.arange(high, low - resolution_db / 2, -resolution_db):
        value = sigma_from_snr(
            float(snr), modulation, code_rate, packet_bytes, estimator
        )
        if value >= 2.0:
            return float(snr)
    return None
