"""Link budget: transmit power and path loss to per-subcarrier SNR.

A :class:`LinkBudget` captures everything static about an AP↔client
radio path. The width-dependent per-subcarrier SNR (with its ~3 dB
bonding penalty) falls out of :func:`repro.phy.noise.snr_per_subcarrier_db`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import (
    DEFAULT_NOISE_FIGURE_DB,
    MAX_TX_POWER_DBM,
    PathLossModel,
)
from ..errors import ConfigurationError
from ..phy.noise import snr_per_subcarrier_db
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ, OfdmParams

__all__ = ["LinkBudget", "snr20_from_path_loss"]


def snr20_from_path_loss(
    path_loss_db: float,
    tx_power_dbm: float = MAX_TX_POWER_DBM,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """Canonical loss → 20 MHz per-subcarrier SNR conversion.

    Every layer that turns a path loss into the canonical 20 MHz link
    quality (scenario builders, the mobility trace, the compiled-state
    SNR matrices) routes through this single function, so the geometry
    and compiled paths cannot drift apart.
    """
    return snr_per_subcarrier_db(
        tx_power_dbm, path_loss_db, OFDM_20MHZ, noise_figure_db
    )


@dataclass(frozen=True)
class LinkBudget:
    """Static radio budget of one link.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power (the 802.11n maximum is the same for both widths).
    path_loss_db:
        Total propagation loss including antennas.
    noise_figure_db:
        Receiver noise figure.
    """

    tx_power_dbm: float = MAX_TX_POWER_DBM
    path_loss_db: float = 95.0
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB

    def __post_init__(self) -> None:
        if self.path_loss_db < 0:
            raise ConfigurationError(
                f"path loss must be non-negative, got {self.path_loss_db}"
            )

    @classmethod
    def from_distance(
        cls,
        distance_m: float,
        model: "PathLossModel | None" = None,
        tx_power_dbm: float = MAX_TX_POWER_DBM,
        noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
        rng: "np.random.Generator | None" = None,
    ) -> "LinkBudget":
        """Budget from geometry via a log-distance path-loss model."""
        model = model if model is not None else PathLossModel()
        return cls(
            tx_power_dbm=tx_power_dbm,
            path_loss_db=model.loss_db(distance_m, rng=rng),
            noise_figure_db=noise_figure_db,
        )

    @classmethod
    def from_snr20(
        cls,
        snr20_db: float,
        tx_power_dbm: float = MAX_TX_POWER_DBM,
        noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
    ) -> "LinkBudget":
        """Budget that yields a given per-subcarrier SNR on a 20 MHz channel.

        Handy for building the paper's scenario topologies directly in
        SNR terms ("a poor client at −2 dB") without inventing geometry.
        """
        # Solve for path loss: snr = tx - PL - 10log10(n_used) - N_subcarrier.
        reference = snr_per_subcarrier_db(
            tx_power_dbm, 0.0, OFDM_20MHZ, noise_figure_db
        )
        return cls(
            tx_power_dbm=tx_power_dbm,
            path_loss_db=reference - snr20_db,
            noise_figure_db=noise_figure_db,
        )

    # ------------------------------------------------------------------
    def subcarrier_snr_db(self, params: OfdmParams) -> float:
        """Per-subcarrier Es/N0 when operating on numerology ``params``."""
        return snr_per_subcarrier_db(
            self.tx_power_dbm, self.path_loss_db, params, self.noise_figure_db
        )

    @property
    def snr20_db(self) -> float:
        """Per-subcarrier SNR on a 20 MHz channel (the canonical quality)."""
        return self.subcarrier_snr_db(OFDM_20MHZ)

    @property
    def snr40_db(self) -> float:
        """Per-subcarrier SNR with channel bonding (~3 dB below 20 MHz)."""
        return self.subcarrier_snr_db(OFDM_40MHZ)

    def with_tx_power(self, tx_power_dbm: float) -> "LinkBudget":
        """A copy at a different transmit power (for power sweeps)."""
        return LinkBudget(
            tx_power_dbm=tx_power_dbm,
            path_loss_db=self.path_loss_db,
            noise_figure_db=self.noise_figure_db,
        )
