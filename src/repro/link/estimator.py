"""ACORN's link-quality estimator (Section 4.2, "Estimating throughput").

The estimator answers: *what would this link's PER be on a channel of the
other width?* Pipeline exactly as the paper describes:

1. **SNR calibration module** — the input SNR was measured at the current
   width; moving 20→40 MHz subtracts ~3 dB, 40→20 MHz adds it back.
2. **BER estimation module** — theoretical coded BER from Rappaport's
   formulas (validated against the WARP chain in Fig 3).
3. **PER estimation** — Eq. 6, ``PER = 1 - (1 - BER)^L``.

ACORN "does not require the exact BER or PER values; it only needs a
coarse estimate ... a reasonable classification of good and poor links",
so the estimator also exposes a good/poor classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from ..phy.ber import coded_ber
from ..phy.modulation import Modulation
from ..phy.noise import cb_snr_penalty_db
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ, OfdmParams
from ..phy.per import per_from_ber

__all__ = ["WidthEstimate", "LinkQualityEstimator"]


@dataclass(frozen=True)
class WidthEstimate:
    """Estimated link quality on a target channel width."""

    params: OfdmParams
    snr_db: float
    ber: float
    per: float


@dataclass(frozen=True)
class LinkQualityEstimator:
    """Maps a measured SNR at one width to BER/PER at any width.

    Parameters
    ----------
    packet_bytes:
        Packet length used in the Eq. 6 PER computation.
    good_per_threshold:
        Links whose estimated PER is below this are "good" — safe to
        serve under channel bonding.
    calibration_db:
        The SNR shift applied per width change. Defaults to the
        first-principles bonding penalty (~3.1 dB); the paper rounds to
        3 dB. Setting this to 0 ablates the calibration module.
    """

    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    good_per_threshold: float = 0.1
    calibration_db: float = cb_snr_penalty_db()

    def __post_init__(self) -> None:
        if self.packet_bytes <= 0:
            raise ConfigurationError(
                f"packet size must be positive, got {self.packet_bytes}"
            )
        if not 0 < self.good_per_threshold < 1:
            raise ConfigurationError(
                f"PER threshold must be in (0, 1), got {self.good_per_threshold}"
            )

    # ------------------------------------------------------------------
    def calibrate_snr(
        self,
        measured_snr_db: float,
        measured_at: OfdmParams,
        target: OfdmParams,
    ) -> float:
        """SNR calibration module: translate an SNR between widths.

        Same-width channels are assumed equivalent (validated by the
        paper's Fig 8 experiment), so only the 20↔40 transition shifts
        the value.
        """
        if measured_at.bandwidth_mhz == target.bandwidth_mhz:
            return measured_snr_db
        if measured_at.bandwidth_mhz < target.bandwidth_mhz:
            return measured_snr_db - self.calibration_db
        return measured_snr_db + self.calibration_db

    def estimate(
        self,
        measured_snr_db: float,
        measured_at: OfdmParams,
        target: OfdmParams,
        modulation: Modulation,
        code_rate: float,
    ) -> WidthEstimate:
        """Full pipeline: calibrated SNR -> coded BER -> PER."""
        snr = self.calibrate_snr(measured_snr_db, measured_at, target)
        ber = float(coded_ber(modulation, code_rate, snr))
        per = float(per_from_ber(ber, self.packet_bytes))
        return WidthEstimate(params=target, snr_db=snr, ber=ber, per=per)

    def estimate_both_widths(
        self,
        snr20_db: float,
        modulation: Modulation,
        code_rate: float,
    ) -> "tuple[WidthEstimate, WidthEstimate]":
        """Estimates for 20 and 40 MHz from the canonical 20 MHz SNR."""
        est20 = self.estimate(snr20_db, OFDM_20MHZ, OFDM_20MHZ, modulation, code_rate)
        est40 = self.estimate(snr20_db, OFDM_20MHZ, OFDM_40MHZ, modulation, code_rate)
        return est20, est40

    # ------------------------------------------------------------------
    def is_good_link(
        self,
        snr20_db: float,
        modulation: Modulation,
        code_rate: float,
        params: OfdmParams = OFDM_40MHZ,
    ) -> bool:
        """Coarse good/poor classification at a target width.

        "Good" means the link could sustain this modulation-and-coding
        on ``params`` with PER below the threshold — i.e. bonding will
        not strand it.
        """
        estimate = self.estimate(
            snr20_db, OFDM_20MHZ, params, modulation, code_rate
        )
        return estimate.per < self.good_per_threshold
