"""Rate control for the simulated testbed cards.

Wraps the exhaustive MCS/mode search (:mod:`repro.mcs.selection`) with
the width-aware SNR handling: a :class:`~repro.link.budget.LinkBudget`
carries the link's geometry, the controller produces the goodput-optimal
decision per channel width, and the MAC layer converts goodput to
airtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_PACKET_SIZE_BYTES
from ..errors import ConfigurationError
from ..phy.mimo import MimoMode
from ..phy.ofdm import OFDM_20MHZ, OFDM_40MHZ, OfdmParams
from ..mcs.selection import RateDecision, optimal_mcs
from .budget import LinkBudget

__all__ = ["RateController", "serviceability_floor_db"]

# Cache for the serviceability floor per packet size.
_FLOOR_CACHE: "dict[int, float]" = {}


def serviceability_floor_db(
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES,
) -> float:
    """Lowest 20 MHz SNR at which a client can be served at all.

    Below this, even MCS 0 has PER = 1 — an associated client would
    have infinite transmission delay and zero out its entire cell
    (the performance anomaly's degenerate limit). Association logic
    uses this as the admission floor; the value follows from the PHY
    model rather than being hand-tuned.
    """
    cached = _FLOOR_CACHE.get(packet_bytes)
    if cached is not None:
        return cached
    snr = -8.0
    while snr < 10.0:
        decision = optimal_mcs(snr, OFDM_20MHZ, packet_bytes=packet_bytes)
        if decision.per < 1.0:
            break
        snr += 0.25
    _FLOOR_CACHE[packet_bytes] = snr
    return snr


@dataclass(frozen=True)
class RateController:
    """Goodput-optimal rate/mode selection for links.

    Parameters
    ----------
    packet_bytes:
        Packet length for the PER part of the goodput estimate.
    short_gi:
        Use the 400 ns short guard interval rates.
    modes:
        MIMO modes the (simulated) card may choose between; defaults to
        both SDM and STBC as on the paper's 2x3 Ralink cards.
    """

    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    short_gi: bool = False
    modes: "tuple[MimoMode, ...]" = (MimoMode.STBC, MimoMode.SDM)

    def __post_init__(self) -> None:
        if self.packet_bytes <= 0:
            raise ConfigurationError(
                f"packet size must be positive, got {self.packet_bytes}"
            )
        if not self.modes:
            raise ConfigurationError("at least one MIMO mode is required")

    def decide(self, budget: LinkBudget, params: OfdmParams) -> RateDecision:
        """Best MCS/mode for ``budget`` on numerology ``params``.

        The width-specific per-subcarrier SNR (including the bonding
        penalty) comes straight from the budget.
        """
        snr = budget.subcarrier_snr_db(params)
        return optimal_mcs(
            snr,
            params,
            packet_bytes=self.packet_bytes,
            short_gi=self.short_gi,
            modes=self.modes,
        )

    def decide_from_snr(
        self, snr_db: float, params: OfdmParams
    ) -> RateDecision:
        """Best MCS/mode when the width-specific SNR is already known."""
        return optimal_mcs(
            snr_db,
            params,
            packet_bytes=self.packet_bytes,
            short_gi=self.short_gi,
            modes=self.modes,
        )

    def decide_both_widths(
        self, budget: LinkBudget
    ) -> "tuple[RateDecision, RateDecision]":
        """Decisions for 20 and 40 MHz, in that order."""
        return self.decide(budget, OFDM_20MHZ), self.decide(budget, OFDM_40MHZ)
