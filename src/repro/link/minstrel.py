"""Closed-loop rate adaptation: a Minstrel-style sampling controller.

The oracle controller (:mod:`repro.link.adaptation`) knows the SNR and
picks the goodput-optimal MCS analytically — the clean stand-in for the
vendor algorithm. Real cards cannot see the SNR-to-PER map; they learn
it from packet outcomes. This module implements the Minstrel idea that
most open-source drivers use: keep an EWMA success probability per
rate, spend a small fraction of packets probing other rates, and send
the rest at the current best expected-throughput rate.

Tests drive it against the statistical truth of the analytical model
and check it converges to (near) the oracle's choice — closing the loop
between the two rate-control layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..config import DEFAULT_PACKET_SIZE_BYTES, make_rng
from ..errors import ConfigurationError
from ..mcs.tables import MCS_TABLE, McsEntry
from ..phy.mimo import MimoMode
from ..phy.ofdm import OfdmParams

__all__ = ["RateStats", "MinstrelController"]


@dataclass
class RateStats:
    """EWMA outcome statistics for one candidate rate."""

    attempts: int = 0
    successes: int = 0
    ewma_success: float = 1.0  # optimistic start, as Minstrel does

    def record(self, ok: bool, weight: float) -> None:
        """Fold one packet outcome into the EWMA."""
        self.attempts += 1
        if ok:
            self.successes += 1
        sample = 1.0 if ok else 0.0
        self.ewma_success = (1.0 - weight) * self.ewma_success + weight * sample


@dataclass
class MinstrelController:
    """Sampling rate control over the 802.11n MCS table.

    Parameters
    ----------
    params:
        Channel numerology (sets the nominal rates).
    probe_fraction:
        Share of transmissions spent probing non-best rates (~10 % in
        the real Minstrel).
    ewma_weight:
        Weight of each new observation in the success EWMA.
    modes:
        MIMO modes whose MCS rows are candidates.
    """

    params: OfdmParams
    probe_fraction: float = 0.1
    ewma_weight: float = 0.15
    packet_bytes: int = DEFAULT_PACKET_SIZE_BYTES
    modes: "tuple[MimoMode, ...]" = (MimoMode.STBC, MimoMode.SDM)
    stats: Dict[int, RateStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probe_fraction < 1.0:
            raise ConfigurationError(
                f"probe fraction must be in [0, 1), got {self.probe_fraction}"
            )
        if not 0.0 < self.ewma_weight <= 1.0:
            raise ConfigurationError(
                f"ewma weight must be in (0, 1], got {self.ewma_weight}"
            )
        if not self.modes:
            raise ConfigurationError("at least one MIMO mode is required")
        stream_counts = {mode.n_streams for mode in self.modes}
        self._candidates: List[McsEntry] = [
            entry
            for entry in MCS_TABLE.values()
            if entry.n_streams in stream_counts
        ]
        for entry in self._candidates:
            self.stats.setdefault(entry.index, RateStats())

    # ------------------------------------------------------------------
    def expected_throughput_mbps(self, entry: McsEntry) -> float:
        """EWMA-estimated goodput of one rate."""
        stats = self.stats[entry.index]
        return entry.rate_mbps(self.params) * stats.ewma_success

    @property
    def best_entry(self) -> McsEntry:
        """The current max-expected-throughput rate."""
        return max(
            self._candidates,
            key=lambda entry: (self.expected_throughput_mbps(entry), -entry.index),
        )

    def choose(self, rng: "np.random.Generator | int | None" = None) -> McsEntry:
        """Pick the rate for the next packet (probe or exploit)."""
        rng = make_rng(rng)
        if float(rng.random()) < self.probe_fraction:
            index = int(rng.integers(0, len(self._candidates)))
            return self._candidates[index]
        return self.best_entry

    def record(self, entry: McsEntry, ok: bool) -> None:
        """Feed one packet outcome back."""
        if entry.index not in self.stats:
            raise ConfigurationError(
                f"MCS {entry.index} is not a candidate of this controller"
            )
        self.stats[entry.index].record(ok, self.ewma_weight)

    # ------------------------------------------------------------------
    def train(
        self,
        success_probability,
        n_packets: int = 2000,
        rng: "np.random.Generator | int | None" = None,
    ) -> McsEntry:
        """Drive the controller against a channel for ``n_packets``.

        ``success_probability(entry) -> float`` is the channel's true
        per-rate delivery probability (e.g. derived from the analytical
        PER model). Returns the post-training best rate.
        """
        if n_packets <= 0:
            raise ConfigurationError(f"n_packets must be positive, got {n_packets}")
        rng = make_rng(rng)
        for _ in range(n_packets):
            entry = self.choose(rng)
            ok = float(rng.random()) < success_probability(entry)
            self.record(entry, ok)
        return self.best_entry
