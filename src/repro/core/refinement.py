"""Association refinement: local search over client moves.

The paper's Algorithm 1 admits clients one at a time and never revisits
a decision; EXPERIMENTS.md documents a topology class (clients poor to
one AP but good to another) where that sequential greedy lands in a bad
basin. The paper leaves this to "future investigations"; this module
supplies the natural fix: after configuration, hill-climb on single
client re-associations, accepting any move that raises the aggregate
throughput, optionally re-running Algorithm 2 when associations
changed. The result can only improve on the Eq. 4 outcome (moves are
accepted only on strict improvement) and converges because the
aggregate is bounded.
"""

from __future__ import annotations

# reprolint: ok RL103 hill-climb scan: trial_move() is side-effect-free by
# the engine contract; only the best improving move is committed per round

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import AssociationError
from ..net.batch import BatchedEvaluator
from ..net.channels import Channel
from ..net.evaluator import DeltaEvaluator
from ..net.state import CompiledEvaluator, CompiledNetwork, supports_compiled
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer

__all__ = ["RefinementResult", "refine_associations"]


@dataclass
class RefinementResult:
    """Outcome of one refinement pass."""

    associations: Dict[str, str]
    aggregate_mbps: float
    moves: List[Tuple[str, str, str]] = field(default_factory=list)
    evaluations: int = 0

    @property
    def n_moves(self) -> int:
        """Accepted re-associations."""
        return len(self.moves)


def refine_associations(
    network: Network,
    graph: nx.Graph,
    model: ThroughputModel,
    min_snr20_db: Optional[float] = None,
    max_rounds: int = 10,
    improvement_epsilon: float = 1e-6,
    apply: bool = True,
    engine_mode: str = "auto",
    compiled: Optional[CompiledNetwork] = None,
    scope: Optional[Sequence[str]] = None,
) -> RefinementResult:
    """Hill-climb on single-client moves until no move improves Y.

    Each round scans every associated client against every alternative
    candidate AP (the same serving set Algorithm 1 used) and performs
    the best strictly improving move. Rounds repeat until a full scan
    finds nothing, or ``max_rounds`` is hit.

    Parameters
    ----------
    min_snr20_db:
        Candidate-AP floor; defaults to the serviceability floor.
    apply:
        Write the refined associations back into ``network`` (default);
        pass ``False`` for a what-if evaluation.
    engine_mode:
        ``"auto"`` (default) scores each round's move set in one batch
        on the compiled array-backed engine when the model supports it,
        else falls back to the dict-keyed delta engine;
        ``"batched"``/``"compiled"``/``"delta"`` force one path.
        Bit-equivalent every way.
    compiled:
        Pre-built :class:`~repro.net.state.CompiledNetwork` to reuse;
        must reflect the current associations and graph.
    scope:
        Restrict refinement to clients currently served by these APs,
        and to candidate moves that stay within the set (a shard). APs
        in different interference components never share candidate
        clients, so per-shard refinement equals the global pass
        restricted to that shard.
    """
    if max_rounds < 1:
        raise AssociationError(f"max_rounds must be >= 1, got {max_rounds}")
    scope_set = frozenset(scope) if scope is not None else None
    if scope_set is not None:
        unknown = sorted(scope_set - set(network.ap_ids))
        if unknown:
            raise AssociationError(f"scope names unknown APs {unknown}")
    if engine_mode not in ("auto", "batched", "compiled", "delta"):
        raise AssociationError(
            f"engine_mode must be 'auto', 'batched', 'compiled' or "
            f"'delta', got {engine_mode!r}"
        )
    if min_snr20_db is None:
        from ..link.adaptation import serviceability_floor_db

        min_snr20_db = serviceability_floor_db(model.packet_bytes)

    assignment: Dict[str, Channel] = dict(network.channel_assignment)
    use_batched = engine_mode == "batched" or (
        engine_mode == "auto" and supports_compiled(model)
    )
    use_compiled = use_batched or engine_mode == "compiled"
    engine: "DeltaEvaluator | CompiledEvaluator"
    if use_compiled:
        if compiled is None:
            compiled = CompiledNetwork.compile(network, graph)
        engine = CompiledEvaluator(
            compiled,
            model=model,
            assignment=assignment,
            associations=network.associations,
        )
        candidate_source = compiled
    else:
        engine = DeltaEvaluator(
            network, graph, model=model, assignment=assignment
        )
        candidate_source = network
    aggregate = engine.aggregate_mbps
    result = RefinementResult(
        associations=engine.associations, aggregate_mbps=aggregate, evaluations=1
    )

    batch: Optional[BatchedEvaluator] = None
    if use_batched and isinstance(engine, CompiledEvaluator):
        batch = BatchedEvaluator(engine)
    batch_evaluations = 0

    tracer = active_tracer()
    observe = tracer.enabled
    if observe:
        tracer.start("refine")
    candidate_cache: Dict[str, Tuple[str, ...]] = {}
    for _ in range(max_rounds):
        best_move: Optional[Tuple[float, str, str, str]] = None
        if batch is not None:
            # Gather the round's move set in scan order, score it in one
            # batch, then replay the gain ratchet over the exact totals.
            moves: List[Tuple[str, str]] = []
            sources: List[str] = []
            for client_id, current_ap in engine.associations.items():
                if scope_set is not None and current_ap not in scope_set:
                    continue
                candidates = candidate_cache.get(client_id)
                if candidates is None:
                    candidates = tuple(
                        candidate_source.candidate_aps(client_id, min_snr20_db)
                    )
                    candidate_cache[client_id] = candidates
                for target_ap in candidates:
                    if target_ap == current_ap:
                        continue
                    if target_ap not in assignment:
                        continue  # unconfigured AP cannot serve traffic
                    if scope_set is not None and target_ap not in scope_set:
                        continue  # a move may not leave the shard
                    moves.append((client_id, target_ap))
                    sources.append(current_ap)
            if moves:
                totals = batch.move_totals(moves)
                result.evaluations += len(moves)
                batch_evaluations += len(moves)
                for k, value in enumerate(totals.tolist()):
                    gain = value - aggregate
                    if gain > improvement_epsilon and (
                        best_move is None or gain > best_move[0]
                    ):
                        client_id, target_ap = moves[k]
                        best_move = (gain, client_id, sources[k], target_ap)
        else:
            for client_id, current_ap in engine.associations.items():
                if scope_set is not None and current_ap not in scope_set:
                    continue
                candidates = candidate_cache.get(client_id)
                if candidates is None:
                    candidates = tuple(
                        candidate_source.candidate_aps(client_id, min_snr20_db)
                    )
                    candidate_cache[client_id] = candidates
                for target_ap in candidates:
                    if target_ap == current_ap:
                        continue
                    if target_ap not in assignment:
                        continue  # unconfigured AP cannot serve traffic
                    if scope_set is not None and target_ap not in scope_set:
                        continue  # a move may not leave the shard
                    value = engine.trial_move(client_id, target_ap)
                    result.evaluations += 1
                    gain = value - aggregate
                    if gain > improvement_epsilon and (
                        best_move is None or gain > best_move[0]
                    ):
                        best_move = (gain, client_id, current_ap, target_ap)
        if best_move is None:
            break
        _, client_id, from_ap, to_ap = best_move
        # Committed aggregates are exact (no incremental-gain drift).
        aggregate = engine.commit_move(client_id, to_ap)
        result.moves.append((client_id, from_ap, to_ap))
    result.aggregate_mbps = aggregate
    result.associations = engine.associations
    if observe:
        tracer.end("refine")
        tracer.metrics.counter("refine.evaluations").inc(result.evaluations)
        tracer.metrics.counter("refine.moves").inc(result.n_moves)
        if batch_evaluations:
            tracer.metrics.counter("refine.batch_evaluations").inc(
                batch_evaluations
            )
    if apply:
        for client_id, ap_id in result.associations.items():
            network.associate(client_id, ap_id)
    return result
