"""The ACORN controller: joint association + allocation orchestration.

Ties Algorithms 1 and 2 together the way the paper's Click-based
implementation does: APs start on random channels, arriving clients run
the Eq. 4 association, and the channel allocator runs (with periodicity
T = 30 min chosen from the CRAWDAD association-duration analysis). The
controller also implements the *opportunistic width* mode used in the
mobility experiment: an AP holding a bonded allocation may fall back to
its primary 20 MHz channel whenever its current clients are better
served narrow — without changing the interference it projects on
neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from ..config import ACORN_EPSILON, ACORN_PERIOD_SECONDS, make_rng
from ..errors import AllocationError, AssociationError
from ..graph.components import ComponentDecomposition, ShardDelta
from ..net.channels import Channel, ChannelPlan
from ..net.evaluator import DeltaEvaluator
from ..net.interference import build_interference_graph
from ..net.state import CompiledNetwork, ShardView, supports_compiled
from ..net.throughput import NetworkReport, ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer
from .allocation import AllocationResult, allocate_channels, random_assignment
from .association import choose_ap

__all__ = ["Acorn", "AcornResult"]


@dataclass
class _DerivedState:
    """Every cache derived from the live network, dropped as one unit.

    The controller used to hold a loose ``(_graph, _compiled)`` pair;
    the shard layer adds the component decomposition and per-shard
    warm-start assignments on top, and a partial invalidation (clearing
    some fields but not others) would let the allocator score against a
    graph that no longer matches its shards. Binding them in one holder
    makes :meth:`Acorn.invalidate_graph` atomic by construction — the
    old holder is replaced wholesale, never edited field by field.
    """

    graph: Optional[nx.Graph] = None
    compiled: Optional[CompiledNetwork] = None
    decomposition: Optional[ComponentDecomposition] = None
    # Per-shard last-committed assignment: the warm start a shard-scoped
    # reconfiguration resumes from. Invalidation is per shard id — churn
    # in one component never cools another component's start.
    shard_assignments: Dict[int, Dict[str, Channel]] = field(
        default_factory=dict
    )


@dataclass
class AcornResult:
    """Outcome of one full ACORN configuration pass."""

    report: NetworkReport
    allocation: AllocationResult
    association_order: List[str] = field(default_factory=list)

    @property
    def total_mbps(self) -> float:
        """Aggregate network throughput of the final configuration."""
        return self.report.total_mbps


class Acorn:
    """Auto-configuration controller for one enterprise WLAN.

    Parameters
    ----------
    network:
        The WLAN to configure (mutated in place).
    plan:
        Available channels.
    model:
        Throughput model (ground truth *and* estimator, as in the paper).
    epsilon:
        Algorithm 2 stopping factor.
    period_s:
        Re-allocation periodicity (informational; driven externally by
        the mobility/long-run simulations).
    seed:
        Seed for the random initial channel draw.
    engine_mode:
        Evaluation engine for allocation and refinement passes:
        ``"auto"`` (default) batches candidate evaluation on the
        compiled core when the model supports it; ``"batched"``,
        ``"compiled"`` and ``"delta"`` force one path. All modes are
        bit-identical.
    """

    def __init__(
        self,
        network: Network,
        plan: ChannelPlan,
        model: Optional[ThroughputModel] = None,
        epsilon: float = ACORN_EPSILON,
        period_s: float = ACORN_PERIOD_SECONDS,
        seed: "int | np.random.Generator | None" = 2010,
        min_snr20_db: "float | None" = None,
        engine_mode: str = "auto",
    ) -> None:
        self.network = network
        self.plan = plan
        self.model = model if model is not None else ThroughputModel()
        self.epsilon = epsilon
        self.period_s = period_s
        self.engine_mode = engine_mode
        if min_snr20_db is None:
            # Admission floor: below this even MCS 0 cannot deliver
            # and an associated client would zero out its cell.
            from ..link.adaptation import serviceability_floor_db

            min_snr20_db = serviceability_floor_db(self.model.packet_bytes)
        self.min_snr20_db = min_snr20_db
        self._rng = make_rng(seed)
        self._derived = _DerivedState()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The current interference graph (rebuilt on demand)."""
        tracer = active_tracer()
        derived = self._derived
        if derived.graph is None:
            if tracer.enabled:
                tracer.metrics.counter("controller.graph_builds").inc()
            derived.graph = build_interference_graph(self.network)
        elif tracer.enabled:
            tracer.metrics.counter("controller.graph_cache_hits").inc()
        return derived.graph

    @property
    def compiled(self) -> CompiledNetwork:
        """The current network frozen into compiled arrays (on demand).

        Shares the graph cache's lifetime: any change that invalidates
        the interference graph (association churn moves footnote-5
        edges) also drops the compiled snapshot, so the arrays can never
        go stale relative to the graph the allocator scores against.
        """
        tracer = active_tracer()
        derived = self._derived
        if derived.compiled is None:
            if tracer.enabled:
                tracer.metrics.counter("controller.compile_builds").inc()
            derived.compiled = CompiledNetwork.compile(
                self.network, self.graph, self.plan
            )
        elif tracer.enabled:
            tracer.metrics.counter("controller.compile_cache_hits").inc()
        return derived.compiled

    @property
    def decomposition(self) -> ComponentDecomposition:
        """Interference components of the current graph, with stable ids.

        Built lazily from the cached graph; across client churn the
        instance is *updated* (:meth:`ComponentDecomposition.update`)
        rather than rebuilt, so shard ids survive merges and splits and
        the per-shard warm-start caches stay addressable. A full
        :meth:`invalidate_graph` resets the id space along with every
        other derived cache.
        """
        tracer = active_tracer()
        derived = self._derived
        if derived.decomposition is None:
            if tracer.enabled:
                tracer.metrics.counter("controller.shard_builds").inc()
            derived.decomposition = ComponentDecomposition.from_graph(
                self.graph, ap_ids=self.network.ap_ids
            )
        elif tracer.enabled:
            tracer.metrics.counter("controller.shard_cache_hits").inc()
        return derived.decomposition

    def shard_of(self, ap_id: str) -> int:
        """The shard id of one AP (see :attr:`decomposition`)."""
        return self.decomposition.shard_of(ap_id)

    def shard_view(self, sid: int) -> ShardView:
        """A compiled per-shard view (cached on the compiled snapshot)."""
        return self.compiled.shard_view(sid, decomposition=self.decomposition)

    def shard_assignment(self, sid: int) -> Optional[Dict[str, Channel]]:
        """The warm-start assignment cached for one shard, if still valid."""
        cached = self._derived.shard_assignments.get(sid)
        return dict(cached) if cached is not None else None

    def invalidate_graph(self) -> None:
        """Force an interference-graph rebuild (topology/assoc changed).

        Atomic over *every* derived cache: the graph, the compiled
        snapshot, the component decomposition and the per-shard
        warm-start assignments are replaced as one holder, so no code
        path can observe a fresh graph next to stale shards (pinned by
        ``tests/test_core_controller.py``).
        """
        derived = self._derived
        if (
            derived.graph is not None
            or derived.compiled is not None
            or derived.decomposition is not None
            or derived.shard_assignments
        ):
            tracer = active_tracer()
            if tracer.enabled:
                tracer.metrics.counter("controller.cache_invalidations").inc()
        self._derived = _DerivedState()

    def apply_churn(
        self,
        added_clients: Sequence[str] = (),
        removed_clients: Sequence[str] = (),
    ) -> Optional[ShardDelta]:
        """Patch cached state after client churn instead of dropping it.

        The incremental counterpart of :meth:`invalidate_graph`: when a
        compiled snapshot is live, it is patched in place via
        :meth:`CompiledNetwork.apply_churn` (bit-identical to a fresh
        compile of the mutated network) and the graph cache is replaced
        by the incrementally rebuilt graph — per-event cost near
        ``compiled_ms`` instead of ``compile_ms``. Without a live
        snapshot there is nothing to patch, so this degrades to plain
        invalidation.

        When a decomposition is live it is merged/split against the new
        graph and the returned :class:`~repro.graph.components.ShardDelta`
        says which shards changed; their warm-start assignments are
        dropped (per-shard invalidation — untouched components keep
        theirs). Returns ``None`` when no decomposition was live.
        """
        derived = self._derived
        if derived.compiled is None:
            self.invalidate_graph()
            return None
        tracer = active_tracer()
        if tracer.enabled:
            tracer.metrics.counter("controller.churn_patches").inc()
        derived.graph = derived.compiled.apply_churn(
            self.network,
            added_clients=added_clients,
            removed_clients=removed_clients,
        )
        if derived.decomposition is None:
            return None
        delta = derived.decomposition.update(
            derived.graph, ap_ids=self.network.ap_ids
        )
        stale = set(delta.invalidated) | set(delta.retired)
        if stale:
            if tracer.enabled:
                tracer.metrics.counter("controller.shard_invalidations").inc(
                    len(stale)
                )
            for sid in stale:
                derived.shard_assignments.pop(sid, None)
        return delta

    def engine(
        self,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> DeltaEvaluator:
        """An incremental evaluator over the controller's current state.

        The returned :class:`~repro.net.evaluator.DeltaEvaluator`
        snapshots the network's assignment and associations (or the
        overrides given) and answers channel/association what-ifs by
        recomputing only the touched interference neighbourhood —
        ``allocate_channels`` and ``refine_associations`` build the same
        engine internally.
        """
        return DeltaEvaluator(
            self.network,
            self.graph,
            model=self.model,
            assignment=assignment,
            associations=associations,
        )

    # ------------------------------------------------------------------
    def assign_initial_channels(
        self, initial: Optional[Mapping[str, Channel]] = None
    ) -> Dict[str, Channel]:
        """Give every AP a starting colour (random unless provided)."""
        if initial is None:
            initial = random_assignment(self.network.ap_ids, self.plan, self._rng)
        for ap_id, channel in initial.items():
            self.network.set_channel(ap_id, channel)
        return dict(initial)

    def admit_client(self, client_id: str, incremental: bool = False) -> str:
        """Algorithm 1 for one arriving client; associates and returns the AP.

        With ``incremental=True`` the cached compiled snapshot is
        patched via :meth:`apply_churn` instead of being invalidated —
        the timeline simulator's per-event path. The arrival is patched
        *in* before the Eq. 4 scan so beacons read the client's delays
        from the (just-extended) rate tables instead of re-deriving the
        PHY mathematics per candidate; the association itself is then
        resynced with a second, cheaper patch. If the scan rejects the
        client, the caller owns the cleanup: remove it from the network
        and call ``apply_churn(removed_clients=...)``.
        """
        compiled = None
        if incremental:
            self.apply_churn(added_clients=(client_id,))
            if self._derived.compiled is not None and supports_compiled(
                self.model
            ):
                compiled = self._derived.compiled
        ap_id, _ = choose_ap(
            self.network,
            self.graph,
            self.model,
            client_id,
            min_snr20_db=self.min_snr20_db,
            compiled=compiled,
        )
        self.network.associate(client_id, ap_id)
        if incremental:
            self.apply_churn()
        else:
            self.invalidate_graph()
        return ap_id

    def admit_clients(self, order: Optional[Sequence[str]] = None) -> List[str]:
        """Admit clients one by one (the paper activates them randomly).

        Returns the arrival order used. Clients with no candidate AP are
        skipped (they stay unassociated), mirroring a client that hears
        no beacon.
        """
        if order is None:
            order = list(self.network.client_ids)
            self._rng.shuffle(order)
        admitted = []
        for client_id in order:
            try:
                self.admit_client(client_id)
            except AssociationError:
                continue
            admitted.append(client_id)
        return list(order)

    def allocate(
        self,
        initial: Optional[Mapping[str, Channel]] = None,
        shard: Optional[int] = None,
        warm_start: bool = False,
        sharded: bool = False,
        restarts: int = 1,
    ) -> AllocationResult:
        """Algorithm 2 over the current associations; applies the result.

        Parameters
        ----------
        shard:
            Reallocate only this interference component (a shard id from
            :attr:`decomposition`); every AP outside it keeps its
            committed channel but still contributes to the scored
            aggregate. The service front-end's per-request path.
        warm_start:
            Resume from the previous allocation (the shard's cached
            assignment when scoped and still valid, else the network's
            current channels) as the single start — no random draws, no
            multi-start. Requires ``restarts == 1``.
        sharded:
            Run the full allocation shard-major over the decomposition:
            the same commits as the monolithic scan (assignment and
            aggregate bit-identical) at a fraction of the evaluations.
        restarts:
            Forwarded to :func:`allocate_channels`.
        """
        if shard is not None and sharded:
            raise AllocationError(
                "shard= reallocates one component; sharded=True scans "
                "them all — pick one"
            )
        scope: Optional[Sequence[str]] = None
        warm: Optional[Dict[str, Channel]] = None
        if shard is not None:
            scope = self.decomposition.members(shard)
        if warm_start:
            warm = None if shard is None else self.shard_assignment(shard)
            if warm is None:
                warm = dict(self.network.channel_assignment)
            missing = [
                ap
                for ap in (scope if scope is not None else self.network.ap_ids)
                if ap not in warm
            ]
            if missing:
                raise AllocationError(
                    f"warm start requires committed channels; APs {missing} "
                    "have none — allocate cold first"
                )
        result = allocate_channels(
            self.network,
            self.graph,
            self.plan,
            self.model,
            initial=(
                initial
                if initial is not None or warm is not None
                else self.network.channel_assignment
            ),
            epsilon=self.epsilon,
            rng=self._rng,
            restarts=restarts,
            engine_mode=self.engine_mode,
            compiled=self.compiled if supports_compiled(self.model) else None,
            scope=scope,
            warm_start=warm,
            decomposition=self.decomposition if sharded else None,
        )
        for ap_id, channel in result.assignment.items():
            self.network.set_channel(ap_id, channel)
        self._cache_shard_assignments(result.assignment, shard=shard)
        return result

    def _cache_shard_assignments(
        self,
        assignment: Mapping[str, Channel],
        shard: Optional[int] = None,
    ) -> None:
        """Record the committed allocation as per-shard warm starts."""
        decomposition = self._derived.decomposition
        if decomposition is None:
            return
        sids = (shard,) if shard is not None else decomposition.shard_ids
        for sid in sids:
            members = decomposition.members(sid)
            if all(ap in assignment for ap in members):
                self._derived.shard_assignments[sid] = {
                    ap: assignment[ap] for ap in members
                }

    def configure(
        self,
        client_order: Optional[Sequence[str]] = None,
        joint_rounds: int = 2,
        initial: Optional[Mapping[str, Channel]] = None,
        refine: bool = False,
    ) -> AcornResult:
        """One full auto-configuration pass.

        1. Random initial channels.
        2. Clients arrive one by one and associate (Algorithm 1).
        3. Channel allocation (Algorithm 2).
        4. Because association and allocation are coupled under CB,
           steps 2-3 repeat up to ``joint_rounds`` times or until the
           associations stabilise — this is the periodic re-run the
           paper schedules every T = 30 min, compressed in time.

        ``refine=True`` adds the post-pass association local search
        (:func:`repro.core.refinement.refine_associations`) followed by
        one more allocation — an extension beyond the paper that
        escapes the sequential-greedy basins documented in
        EXPERIMENTS.md. The default keeps the paper-faithful pipeline.
        """
        tracer = active_tracer()
        if not tracer.enabled:
            return self._configure(client_order, joint_rounds, initial, refine)
        with tracer.span("controller.configure"):
            return self._configure(client_order, joint_rounds, initial, refine)

    def _configure(
        self,
        client_order: Optional[Sequence[str]] = None,
        joint_rounds: int = 2,
        initial: Optional[Mapping[str, Channel]] = None,
        refine: bool = False,
    ) -> AcornResult:
        """The :meth:`configure` body, free of tracing scaffolding."""
        self.assign_initial_channels(initial)
        order = self.admit_clients(client_order)
        allocation = self.allocate()
        for _ in range(max(0, joint_rounds - 1)):
            previous = dict(self.network.associations)
            self.network.associations.clear()
            self.invalidate_graph()
            self.admit_clients(order)
            allocation = self.allocate()
            if self.network.associations == previous:
                break
        if refine:
            from .refinement import refine_associations

            refinement = refine_associations(
                self.network,
                self.graph,
                self.model,
                min_snr20_db=self.min_snr20_db,
                engine_mode=self.engine_mode,
                compiled=(
                    self.compiled if supports_compiled(self.model) else None
                ),
            )
            if refinement.n_moves:
                self.invalidate_graph()
                allocation = self.allocate()
        report = self.model.evaluate(self.network, self.graph)
        return AcornResult(
            report=report,
            allocation=allocation,
            association_order=list(order),
        )

    # ------------------------------------------------------------------
    def opportunistic_width(
        self,
        ap_id: str,
        current: Optional[Channel] = None,
        hysteresis: float = 0.0,
    ) -> Channel:
        """The mobility-mode width decision for one AP.

        If the AP holds a bonded colour, compare its isolated cell
        throughput using the full 40 MHz against the primary 20 MHz
        alone and return the better channel. Neighbours are unaffected:
        both options occupy (a subset of) the same allocated spectrum.

        Parameters
        ----------
        current:
            The width currently in use (must be the allocation or its
            primary). With ``hysteresis > 0``, switching away from it
            requires the alternative to win by that relative margin —
            suppressing width flapping when the link quality hovers at
            the crossover.
        """
        if hysteresis < 0:
            raise AssociationError(
                f"hysteresis must be non-negative, got {hysteresis}"
            )
        assigned = self.network.channel_assignment.get(ap_id)
        if assigned is None:
            raise AssociationError(f"AP {ap_id!r} has no channel to adapt")
        if not assigned.is_bonded:
            return assigned
        narrow_channel = assigned.primary_only()
        if current is not None and current not in (assigned, narrow_channel):
            raise AssociationError(
                f"current channel {current} is not part of AP {ap_id!r}'s "
                f"allocation {assigned}"
            )
        wide = self.model.isolated_ap_throughput_mbps(self.network, ap_id, assigned)
        narrow = self.model.isolated_ap_throughput_mbps(
            self.network, ap_id, narrow_channel
        )
        if current is not None and hysteresis > 0:
            staying_wide = current == assigned
            if staying_wide:
                return narrow_channel if narrow > wide * (1 + hysteresis) else assigned
            return assigned if wide > narrow * (1 + hysteresis) else narrow_channel
        return assigned if wide >= narrow else narrow_channel
