"""The ACORN controller: joint association + allocation orchestration.

Ties Algorithms 1 and 2 together the way the paper's Click-based
implementation does: APs start on random channels, arriving clients run
the Eq. 4 association, and the channel allocator runs (with periodicity
T = 30 min chosen from the CRAWDAD association-duration analysis). The
controller also implements the *opportunistic width* mode used in the
mobility experiment: an AP holding a bonded allocation may fall back to
its primary 20 MHz channel whenever its current clients are better
served narrow — without changing the interference it projects on
neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from ..config import ACORN_EPSILON, ACORN_PERIOD_SECONDS, make_rng
from ..errors import AssociationError
from ..net.channels import Channel, ChannelPlan
from ..net.evaluator import DeltaEvaluator
from ..net.interference import build_interference_graph
from ..net.state import CompiledNetwork, supports_compiled
from ..net.throughput import NetworkReport, ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer
from .allocation import AllocationResult, allocate_channels, random_assignment
from .association import choose_ap

__all__ = ["Acorn", "AcornResult"]


@dataclass
class AcornResult:
    """Outcome of one full ACORN configuration pass."""

    report: NetworkReport
    allocation: AllocationResult
    association_order: List[str] = field(default_factory=list)

    @property
    def total_mbps(self) -> float:
        """Aggregate network throughput of the final configuration."""
        return self.report.total_mbps


class Acorn:
    """Auto-configuration controller for one enterprise WLAN.

    Parameters
    ----------
    network:
        The WLAN to configure (mutated in place).
    plan:
        Available channels.
    model:
        Throughput model (ground truth *and* estimator, as in the paper).
    epsilon:
        Algorithm 2 stopping factor.
    period_s:
        Re-allocation periodicity (informational; driven externally by
        the mobility/long-run simulations).
    seed:
        Seed for the random initial channel draw.
    engine_mode:
        Evaluation engine for allocation and refinement passes:
        ``"auto"`` (default) batches candidate evaluation on the
        compiled core when the model supports it; ``"batched"``,
        ``"compiled"`` and ``"delta"`` force one path. All modes are
        bit-identical.
    """

    def __init__(
        self,
        network: Network,
        plan: ChannelPlan,
        model: Optional[ThroughputModel] = None,
        epsilon: float = ACORN_EPSILON,
        period_s: float = ACORN_PERIOD_SECONDS,
        seed: "int | np.random.Generator | None" = 2010,
        min_snr20_db: "float | None" = None,
        engine_mode: str = "auto",
    ) -> None:
        self.network = network
        self.plan = plan
        self.model = model if model is not None else ThroughputModel()
        self.epsilon = epsilon
        self.period_s = period_s
        self.engine_mode = engine_mode
        if min_snr20_db is None:
            # Admission floor: below this even MCS 0 cannot deliver
            # and an associated client would zero out its cell.
            from ..link.adaptation import serviceability_floor_db

            min_snr20_db = serviceability_floor_db(self.model.packet_bytes)
        self.min_snr20_db = min_snr20_db
        self._rng = make_rng(seed)
        self._graph: Optional[nx.Graph] = None
        self._compiled: Optional[CompiledNetwork] = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The current interference graph (rebuilt on demand)."""
        tracer = active_tracer()
        if self._graph is None:
            if tracer.enabled:
                tracer.metrics.counter("controller.graph_builds").inc()
            self._graph = build_interference_graph(self.network)
        elif tracer.enabled:
            tracer.metrics.counter("controller.graph_cache_hits").inc()
        return self._graph

    @property
    def compiled(self) -> CompiledNetwork:
        """The current network frozen into compiled arrays (on demand).

        Shares the graph cache's lifetime: any change that invalidates
        the interference graph (association churn moves footnote-5
        edges) also drops the compiled snapshot, so the arrays can never
        go stale relative to the graph the allocator scores against.
        """
        tracer = active_tracer()
        if self._compiled is None:
            if tracer.enabled:
                tracer.metrics.counter("controller.compile_builds").inc()
            self._compiled = CompiledNetwork.compile(
                self.network, self.graph, self.plan
            )
        elif tracer.enabled:
            tracer.metrics.counter("controller.compile_cache_hits").inc()
        return self._compiled

    def invalidate_graph(self) -> None:
        """Force an interference-graph rebuild (topology/assoc changed)."""
        if self._graph is not None or self._compiled is not None:
            tracer = active_tracer()
            if tracer.enabled:
                tracer.metrics.counter("controller.cache_invalidations").inc()
        self._graph = None
        self._compiled = None

    def apply_churn(
        self,
        added_clients: Sequence[str] = (),
        removed_clients: Sequence[str] = (),
    ) -> None:
        """Patch cached state after client churn instead of dropping it.

        The incremental counterpart of :meth:`invalidate_graph`: when a
        compiled snapshot is live, it is patched in place via
        :meth:`CompiledNetwork.apply_churn` (bit-identical to a fresh
        compile of the mutated network) and the graph cache is replaced
        by the incrementally rebuilt graph — per-event cost near
        ``compiled_ms`` instead of ``compile_ms``. Without a live
        snapshot there is nothing to patch, so this degrades to plain
        invalidation.
        """
        if self._compiled is None:
            self.invalidate_graph()
            return
        tracer = active_tracer()
        if tracer.enabled:
            tracer.metrics.counter("controller.churn_patches").inc()
        self._graph = self._compiled.apply_churn(
            self.network,
            added_clients=added_clients,
            removed_clients=removed_clients,
        )

    def engine(
        self,
        assignment: Optional[Mapping[str, Channel]] = None,
        associations: Optional[Mapping[str, str]] = None,
    ) -> DeltaEvaluator:
        """An incremental evaluator over the controller's current state.

        The returned :class:`~repro.net.evaluator.DeltaEvaluator`
        snapshots the network's assignment and associations (or the
        overrides given) and answers channel/association what-ifs by
        recomputing only the touched interference neighbourhood —
        ``allocate_channels`` and ``refine_associations`` build the same
        engine internally.
        """
        return DeltaEvaluator(
            self.network,
            self.graph,
            model=self.model,
            assignment=assignment,
            associations=associations,
        )

    # ------------------------------------------------------------------
    def assign_initial_channels(
        self, initial: Optional[Mapping[str, Channel]] = None
    ) -> Dict[str, Channel]:
        """Give every AP a starting colour (random unless provided)."""
        if initial is None:
            initial = random_assignment(self.network.ap_ids, self.plan, self._rng)
        for ap_id, channel in initial.items():
            self.network.set_channel(ap_id, channel)
        return dict(initial)

    def admit_client(self, client_id: str, incremental: bool = False) -> str:
        """Algorithm 1 for one arriving client; associates and returns the AP.

        With ``incremental=True`` the cached compiled snapshot is
        patched via :meth:`apply_churn` instead of being invalidated —
        the timeline simulator's per-event path. The arrival is patched
        *in* before the Eq. 4 scan so beacons read the client's delays
        from the (just-extended) rate tables instead of re-deriving the
        PHY mathematics per candidate; the association itself is then
        resynced with a second, cheaper patch. If the scan rejects the
        client, the caller owns the cleanup: remove it from the network
        and call ``apply_churn(removed_clients=...)``.
        """
        compiled = None
        if incremental:
            self.apply_churn(added_clients=(client_id,))
            if self._compiled is not None and supports_compiled(self.model):
                compiled = self._compiled
        ap_id, _ = choose_ap(
            self.network,
            self.graph,
            self.model,
            client_id,
            min_snr20_db=self.min_snr20_db,
            compiled=compiled,
        )
        self.network.associate(client_id, ap_id)
        if incremental:
            self.apply_churn()
        else:
            self.invalidate_graph()
        return ap_id

    def admit_clients(self, order: Optional[Sequence[str]] = None) -> List[str]:
        """Admit clients one by one (the paper activates them randomly).

        Returns the arrival order used. Clients with no candidate AP are
        skipped (they stay unassociated), mirroring a client that hears
        no beacon.
        """
        if order is None:
            order = list(self.network.client_ids)
            self._rng.shuffle(order)
        admitted = []
        for client_id in order:
            try:
                self.admit_client(client_id)
            except AssociationError:
                continue
            admitted.append(client_id)
        return list(order)

    def allocate(
        self, initial: Optional[Mapping[str, Channel]] = None
    ) -> AllocationResult:
        """Algorithm 2 over the current associations; applies the result."""
        result = allocate_channels(
            self.network,
            self.graph,
            self.plan,
            self.model,
            initial=initial if initial is not None else self.network.channel_assignment,
            epsilon=self.epsilon,
            rng=self._rng,
            engine_mode=self.engine_mode,
            compiled=self.compiled if supports_compiled(self.model) else None,
        )
        for ap_id, channel in result.assignment.items():
            self.network.set_channel(ap_id, channel)
        return result

    def configure(
        self,
        client_order: Optional[Sequence[str]] = None,
        joint_rounds: int = 2,
        initial: Optional[Mapping[str, Channel]] = None,
        refine: bool = False,
    ) -> AcornResult:
        """One full auto-configuration pass.

        1. Random initial channels.
        2. Clients arrive one by one and associate (Algorithm 1).
        3. Channel allocation (Algorithm 2).
        4. Because association and allocation are coupled under CB,
           steps 2-3 repeat up to ``joint_rounds`` times or until the
           associations stabilise — this is the periodic re-run the
           paper schedules every T = 30 min, compressed in time.

        ``refine=True`` adds the post-pass association local search
        (:func:`repro.core.refinement.refine_associations`) followed by
        one more allocation — an extension beyond the paper that
        escapes the sequential-greedy basins documented in
        EXPERIMENTS.md. The default keeps the paper-faithful pipeline.
        """
        tracer = active_tracer()
        if not tracer.enabled:
            return self._configure(client_order, joint_rounds, initial, refine)
        with tracer.span("controller.configure"):
            return self._configure(client_order, joint_rounds, initial, refine)

    def _configure(
        self,
        client_order: Optional[Sequence[str]] = None,
        joint_rounds: int = 2,
        initial: Optional[Mapping[str, Channel]] = None,
        refine: bool = False,
    ) -> AcornResult:
        """The :meth:`configure` body, free of tracing scaffolding."""
        self.assign_initial_channels(initial)
        order = self.admit_clients(client_order)
        allocation = self.allocate()
        for _ in range(max(0, joint_rounds - 1)):
            previous = dict(self.network.associations)
            self.network.associations.clear()
            self.invalidate_graph()
            self.admit_clients(order)
            allocation = self.allocate()
            if self.network.associations == previous:
                break
        if refine:
            from .refinement import refine_associations

            refinement = refine_associations(
                self.network,
                self.graph,
                self.model,
                min_snr20_db=self.min_snr20_db,
                engine_mode=self.engine_mode,
                compiled=(
                    self.compiled if supports_compiled(self.model) else None
                ),
            )
            if refinement.n_moves:
                self.invalidate_graph()
                allocation = self.allocate()
        report = self.model.evaluate(self.network, self.graph)
        return AcornResult(
            report=report,
            allocation=allocation,
            association_order=list(order),
        )

    # ------------------------------------------------------------------
    def opportunistic_width(
        self,
        ap_id: str,
        current: Optional[Channel] = None,
        hysteresis: float = 0.0,
    ) -> Channel:
        """The mobility-mode width decision for one AP.

        If the AP holds a bonded colour, compare its isolated cell
        throughput using the full 40 MHz against the primary 20 MHz
        alone and return the better channel. Neighbours are unaffected:
        both options occupy (a subset of) the same allocated spectrum.

        Parameters
        ----------
        current:
            The width currently in use (must be the allocation or its
            primary). With ``hysteresis > 0``, switching away from it
            requires the alternative to win by that relative margin —
            suppressing width flapping when the link quality hovers at
            the crossover.
        """
        if hysteresis < 0:
            raise AssociationError(
                f"hysteresis must be non-negative, got {hysteresis}"
            )
        assigned = self.network.channel_assignment.get(ap_id)
        if assigned is None:
            raise AssociationError(f"AP {ap_id!r} has no channel to adapt")
        if not assigned.is_bonded:
            return assigned
        narrow_channel = assigned.primary_only()
        if current is not None and current not in (assigned, narrow_channel):
            raise AssociationError(
                f"current channel {current} is not part of AP {ap_id!r}'s "
                f"allocation {assigned}"
            )
        wide = self.model.isolated_ap_throughput_mbps(self.network, ap_id, assigned)
        narrow = self.model.isolated_ap_throughput_mbps(
            self.network, ap_id, narrow_channel
        )
        if current is not None and hysteresis > 0:
            staying_wide = current == assigned
            if staying_wide:
                return narrow_channel if narrow > wide * (1 + hysteresis) else assigned
            return assigned if wide > narrow * (1 + hysteresis) else narrow_channel
        return assigned if wide >= narrow else narrow_channel
