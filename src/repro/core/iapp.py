"""IAPP-style inter-AP coordination (IEEE 802.11F).

Section 4.2: to estimate throughput on a candidate channel an AP must
know "the number of APs already residing on this new channel", which
"is possible either with help from an administrative authority or the
Inter Access Point Protocol (IAPP)". This module provides that
substrate: a registry APs announce their state to and query neighbour
occupancy from, with a message log so coordination overhead can be
inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import AllocationError, TopologyError
from ..net.channels import Channel

__all__ = ["ApAnnouncement", "IappRegistry"]


@dataclass(frozen=True)
class ApAnnouncement:
    """One AP's advertised state."""

    ap_id: str
    channel: Channel
    client_ids: Tuple[str, ...]
    sequence: int


@dataclass
class IappRegistry:
    """The coordination bus: announcements in, occupancy queries out."""

    _state: Dict[str, ApAnnouncement] = field(default_factory=dict)
    _log: List[ApAnnouncement] = field(default_factory=list)
    _sequence: int = 0

    # ------------------------------------------------------------------
    # Announcements
    # ------------------------------------------------------------------
    def announce(
        self,
        ap_id: str,
        channel: Channel,
        client_ids: "Tuple[str, ...] | List[str]" = (),
    ) -> ApAnnouncement:
        """Publish (or refresh) an AP's channel and client set."""
        if not isinstance(channel, Channel):
            raise TopologyError(f"expected a Channel, got {channel!r}")
        self._sequence += 1
        announcement = ApAnnouncement(
            ap_id=ap_id,
            channel=channel,
            client_ids=tuple(client_ids),
            sequence=self._sequence,
        )
        self._state[ap_id] = announcement
        self._log.append(announcement)
        return announcement

    def withdraw(self, ap_id: str) -> None:
        """Remove an AP (power-down); unknown APs raise."""
        if ap_id not in self._state:
            raise AllocationError(f"AP {ap_id!r} never announced")
        del self._state[ap_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def known_aps(self) -> Tuple[str, ...]:
        """APs with a live announcement."""
        return tuple(self._state)

    def announcement(self, ap_id: str) -> ApAnnouncement:
        """The latest announcement of one AP."""
        try:
            return self._state[ap_id]
        except KeyError:
            raise AllocationError(f"AP {ap_id!r} never announced") from None

    def occupants_of(
        self, channel: Channel, exclude: Optional[str] = None
    ) -> Set[str]:
        """APs whose advertised channel conflicts with ``channel``.

        This is exactly the occupancy count Algorithm 2's estimator
        needs when probing a candidate colour.
        """
        if not isinstance(channel, Channel):
            raise TopologyError(f"expected a Channel, got {channel!r}")
        return {
            ap_id
            for ap_id, announcement in self._state.items()
            if ap_id != exclude and channel.conflicts_with(announcement.channel)
        }

    def co_channel_count(self, ap_id: str, channel: Channel) -> int:
        """|con| for AP ``ap_id`` if it moved to ``channel``."""
        return len(self.occupants_of(channel, exclude=ap_id))

    def channel_map(self) -> Dict[str, Channel]:
        """A snapshot of every AP's advertised channel."""
        return {
            ap_id: announcement.channel
            for ap_id, announcement in self._state.items()
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def message_count(self) -> int:
        """Total announcements ever published (coordination overhead)."""
        return len(self._log)

    def history(self, ap_id: Optional[str] = None) -> List[ApAnnouncement]:
        """The announcement log, optionally filtered to one AP."""
        if ap_id is None:
            return list(self._log)
        return [a for a in self._log if a.ap_id == ap_id]
