"""Per-channel scanning — the extension the paper sketches in §4.2.

"ACORN can easily be modified, such that each AP scans (one at a time)
all the available channels and gets more accurate information regarding
the link quality to its clients. However, this would add more
complexity and increase the convergence time of the system."

This module implements that trade-off so it can be measured. A
:class:`ChannelScanner` models per-channel link-quality deviations from
the canonical measurement (zero by default — Fig 8 found same-width
channels equivalent on MIMO hardware; a positive sigma models SISO-like
frequency selectivity). :class:`ScanningThroughputModel` consumes the
scanned values instead of the single calibrated measurement, and the
scanner accounts for the airtime each scan burns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..mcs.selection import RateDecision
from ..net.channels import Channel, ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network

__all__ = ["ChannelScanner", "ScanningThroughputModel"]

# Dwell time to probe the links on one channel: a beacon interval's
# worth of probing per channel is a realistic lower bound.
DEFAULT_DWELL_S = 0.1


def _channel_offset_db(
    ap_id: str, client_id: str, channel: Channel, sigma_db: float, seed: int
) -> float:
    """Deterministic per-(link, channel) quality deviation.

    Hashing keeps the deviation stable across calls and independent of
    evaluation order — the "true" per-channel quality of this link.
    """
    if sigma_db == 0.0:
        return 0.0
    key = f"{seed}:{ap_id}:{client_id}:{min(channel.constituents)}"
    digest = hashlib.sha256(key.encode()).digest()
    # Sum of 12 uniforms (Irwin-Hall) — the classic lightweight
    # standard-normal approximation, here driven by hash bytes.
    total = 0.0
    for index in range(12):
        chunk = digest[index * 2 : index * 2 + 2]
        total += int.from_bytes(chunk, "big") / 65535.0
    gaussian = total - 6.0
    return float(sigma_db * gaussian)


@dataclass
class ChannelScanner:
    """Measures per-channel link SNRs, at an airtime cost.

    Parameters
    ----------
    variation_sigma_db:
        Standard deviation of the per-channel deviation from the
        canonical (width-calibrated) SNR. 0 models the paper's MIMO
        finding (Fig 8); a few dB models single-antenna hardware.
    dwell_s:
        Time spent probing each channel.
    seed:
        Fixes the hidden per-channel truth.
    """

    variation_sigma_db: float = 0.0
    dwell_s: float = DEFAULT_DWELL_S
    seed: int = 0
    scan_time_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.variation_sigma_db < 0:
            raise ConfigurationError(
                f"sigma must be non-negative, got {self.variation_sigma_db}"
            )
        if self.dwell_s <= 0:
            raise ConfigurationError(f"dwell must be positive, got {self.dwell_s}")

    def link_snr_db(
        self, network: Network, ap_id: str, client_id: str, channel: Channel
    ) -> float:
        """The link's true per-subcarrier SNR on one specific channel."""
        budget = network.link_budget(ap_id, client_id)
        base = budget.subcarrier_snr_db(channel.params)
        return base + _channel_offset_db(
            ap_id, client_id, channel, self.variation_sigma_db, self.seed
        )

    def scan(
        self, network: Network, ap_id: str, plan: ChannelPlan
    ) -> Dict[Channel, Dict[str, float]]:
        """Probe every channel in the plan; returns per-channel SNR maps.

        Accumulates ``scan_time_s`` — the convergence cost the paper
        warns about.
        """
        results: Dict[Channel, Dict[str, float]] = {}
        for channel in plan.all_channels():
            self.scan_time_s += self.dwell_s
            results[channel] = {
                client_id: self.link_snr_db(network, ap_id, client_id, channel)
                for client_id in network.clients_of(ap_id)
            }
        return results


@dataclass
class ScanningThroughputModel(ThroughputModel):
    """A throughput model fed by scanned per-channel measurements.

    Rate decisions use the exact per-channel SNR instead of the single
    width-calibrated measurement; with ``variation_sigma_db = 0`` it
    reduces to the base model (the MIMO regime), with larger sigma it
    exploits per-channel differences the base model cannot see.
    """

    scanner: ChannelScanner = field(default_factory=ChannelScanner)

    def link_decision(
        self, network: Network, ap_id: str, client_id: str, channel: Channel
    ) -> RateDecision:
        """Rate decision driven by the scanned per-channel SNR."""
        snr = self.scanner.link_snr_db(network, ap_id, client_id, channel)
        key: Tuple[float, str] = (
            round(snr, 3),
            f"{channel.params.name}:{min(channel.constituents)}",
        )
        decision = self._decision_cache.get(key)
        if decision is None:
            decision = self.controller.decide_from_snr(snr, channel.params)
            self._decision_cache[key] = decision
        return decision
