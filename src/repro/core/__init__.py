"""ACORN: the paper's primary contribution.

Joint user association (Algorithm 1) and CB-aware channel allocation
(Algorithm 2), orchestrated by the :class:`~repro.core.controller.Acorn`
controller with the paper's ε = 1.05 stopping rule and 30-minute
periodicity.
"""

from .beacon import Beacon, gather_beacon
from .association import (
    association_utility,
    choose_ap,
    throughput_with_mbps,
    throughput_without_mbps,
)
from .allocation import AllocationResult, allocate_channels, random_assignment
from .controller import Acorn, AcornResult
from .iapp import ApAnnouncement, IappRegistry
from .refinement import RefinementResult, refine_associations
from .scanner import ChannelScanner, ScanningThroughputModel

__all__ = [
    "Beacon",
    "gather_beacon",
    "association_utility",
    "choose_ap",
    "throughput_with_mbps",
    "throughput_without_mbps",
    "AllocationResult",
    "allocate_channels",
    "random_assignment",
    "Acorn",
    "AcornResult",
    "ApAnnouncement",
    "IappRegistry",
    "ChannelScanner",
    "ScanningThroughputModel",
    "RefinementResult",
    "refine_associations",
]
