"""Algorithm 2: ACORN's channel bonding selection.

Iterative max-rank greedy over the colour palette: starting from a
random assignment, every AP that has not yet switched this round
estimates the aggregate throughput it could reach on each colour (other
APs held fixed); the AP offering the largest improvement ("rank") wins
the switch. Rounds repeat until no AP improves, or the aggregate grows
by less than the ε = 1.05 factor between rounds. The paper proves the
worst-case approximation ratio is O(1/(Δ+1)) — and Fig 14 (reproduced in
``benchmarks/test_fig14_approximation.py``) shows practice is far
better.
"""

from __future__ import annotations

# reprolint: ok RL103 greedy scan loop: trial() is side-effect-free by the
# engine contract (tests/test_delta_evaluator.py); only the winning candidate
# is committed, losers need no rollback

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..config import ACORN_EPSILON, make_rng
from ..errors import AllocationError
from ..graph.components import ComponentDecomposition
from ..net.batch import BatchTables, BatchedEvaluator, accumulate_totals
from ..net.channels import Channel, ChannelPlan
from ..net.evaluator import DeltaEvaluator, FullEvaluationEngine
from ..net.state import CompiledEvaluator, CompiledNetwork, supports_compiled
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer

__all__ = [
    "SwitchEvent",
    "AllocationResult",
    "random_assignment",
    "greedy_allocate",
    "allocate_channels",
]

EvaluateFn = Callable[[Mapping[str, Channel]], float]

# Per-start evaluation-count histogram buckets (counts, not seconds).
_EVALS_PER_START_BOUNDS = (10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)

# Per-superstep batch-width histogram buckets (candidate counts).
_BATCH_SIZE_BOUNDS = (16.0, 64.0, 256.0, 1_024.0, 4_096.0)


def _record_start(tracer, engine, stats_before, result, skips) -> None:
    """Bridge one greedy start's counters into the active tracer.

    Engine operation counts (trials/commits/rollbacks/...) are taken as
    deltas of the engine's own :class:`~repro.net.evaluator.EngineStats`
    — both the dict-keyed and the compiled engine maintain them — so the
    observability layer never touches the evaluators' hot paths.
    """
    metrics = tracer.metrics
    metrics.counter("alloc.starts").inc()
    metrics.counter("alloc.evaluations").inc(result.evaluations)
    metrics.counter("alloc.skips").inc(skips)
    metrics.counter("alloc.rounds").inc(result.rounds)
    metrics.counter("alloc.switches").inc(len(result.history))
    metrics.histogram(
        "alloc.evaluations_per_start", _EVALS_PER_START_BOUNDS
    ).observe(result.evaluations)
    if stats_before is not None:
        after = engine.stats.as_dict()
        for key in ("trials", "commits", "rollbacks", "resets",
                    "full_evaluations"):
            metrics.counter(f"engine.{key}").inc(after[key] - stats_before[key])


def _engine_stats_snapshot(engine):
    """The engine's counter dict, or None for stat-less adapters."""
    stats = getattr(engine, "stats", None)
    return stats.as_dict() if stats is not None else None


@dataclass(frozen=True)
class SwitchEvent:
    """One channel switch performed by the allocator."""

    ap_id: str
    channel: Channel
    aggregate_mbps: float
    round_index: int


@dataclass
class AllocationResult:
    """Final assignment plus the optimisation trace.

    ``evaluations`` counts the throughput evaluations spent by the
    *winning* start only; ``total_evaluations`` sums them over every
    restart (equal to ``evaluations`` for a single-start run) and
    ``evaluations_per_start`` itemises the same per start, in start
    order.
    """

    assignment: Dict[str, Channel]
    aggregate_mbps: float
    rounds: int
    evaluations: int
    history: List[SwitchEvent] = field(default_factory=list)
    total_evaluations: int = 0
    evaluations_per_start: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.total_evaluations:
            self.total_evaluations = self.evaluations
        if not self.evaluations_per_start:
            self.evaluations_per_start = [self.evaluations]

    def channel_of(self, ap_id: str) -> Channel:
        """The colour assigned to an AP."""
        try:
            return self.assignment[ap_id]
        except KeyError:
            raise AllocationError(f"AP {ap_id!r} not in the assignment") from None


def random_assignment(
    ap_ids: Sequence[str],
    plan: ChannelPlan,
    rng: "np.random.Generator | int | None" = None,
) -> Dict[str, Channel]:
    """The paper's initialisation: each AP draws a random 20/40 colour."""
    rng = make_rng(rng)
    palette = plan.all_channels()
    if not palette:
        raise AllocationError("the channel plan is empty")
    return {
        ap_id: palette[int(rng.integers(0, len(palette)))]
        for ap_id in ap_ids
    }


def _reset_mapping(
    ap_ids: Sequence[str],
    initial: Mapping[str, Channel],
    frozen: Optional[Mapping[str, Channel]],
) -> Dict[str, Channel]:
    """The engine-reset assignment: scanned APs plus frozen bystanders.

    ``reset`` wipes any AP missing from its mapping to *unassigned*, so
    a scoped run must carry the out-of-scope APs' committed channels
    along — otherwise the scoped trial values would score against a
    silent network instead of the live one. Scanned APs always win over
    ``frozen`` on overlap.
    """
    mapping = {ap: initial[ap] for ap in ap_ids}
    if frozen:
        for ap_id, channel in frozen.items():
            mapping.setdefault(ap_id, channel)
    return mapping


def _shard_lists(
    ap_ids: Sequence[str],
    shards: Optional[Sequence[Sequence[int]]],
) -> List[List[int]]:
    """Validated shard position lists (one all-covering shard when None)."""
    if shards is None:
        return [list(range(len(ap_ids)))]
    lists = [list(shard) for shard in shards]
    covered: List[int] = sorted(p for shard in lists for p in shard)
    if covered != list(range(len(ap_ids))):
        raise AllocationError(
            "shards must partition the allocation positions "
            f"0..{len(ap_ids) - 1}; got {covered}"
        )
    if any(not shard for shard in lists):
        raise AllocationError("shards must be non-empty")
    return lists


def greedy_allocate(
    ap_ids: Sequence[str],
    palette: Sequence[Channel],
    evaluate: Optional[EvaluateFn] = None,
    initial: Optional[Mapping[str, Channel]] = None,
    epsilon: float = ACORN_EPSILON,
    max_rounds: int = 20,
    engine: Optional[DeltaEvaluator] = None,
    frozen: Optional[Mapping[str, Channel]] = None,
    shards: Optional[Sequence[Sequence[int]]] = None,
) -> AllocationResult:
    """The core of Algorithm 2, decoupled from the network model.

    Candidate switches are scored through an incremental evaluation
    engine: pass ``engine`` (a :class:`~repro.net.evaluator.DeltaEvaluator`,
    which recomputes only the switching AP's interference neighbourhood
    per trial) or ``evaluate``, a plain assignment→throughput callable
    that gets wrapped in a :class:`~repro.net.evaluator.FullEvaluationEngine`
    adapter. The callable form is the ablation hook: substituting a
    *distorted* estimator (e.g. the no-SNR-calibration ablation) while
    measuring the truth separately still works unchanged.

    The AP's current channel is skipped as a candidate — it is a no-op
    whose rank is identically 0, below the switch threshold.

    ``frozen`` carries channels for APs that are *not* scanned but must
    stay configured during the run (a scoped/shard allocation); scanned
    APs take their channel from ``initial``. ``shards`` partitions the
    scan positions into interference components: each round runs the
    inner max-rank loop shard by shard (shard-major, round-lockstep)
    while every trial still scores the **global** aggregate — the
    execution order changes, the arithmetic does not, which is why the
    sharded result is bit-identical to the monolithic scan (enforced by
    ``tests/test_sharded_equivalence.py``).
    """
    if epsilon < 1.0:
        raise AllocationError(f"epsilon is a growth factor >= 1, got {epsilon}")
    if not ap_ids:
        raise AllocationError("no APs to allocate")
    if engine is None:
        if evaluate is None:
            raise AllocationError("need an engine or an evaluate callable")
        engine = FullEvaluationEngine(evaluate)
    if initial is None:
        raise AllocationError("greedy_allocate needs an initial assignment")
    missing = [ap for ap in ap_ids if ap not in initial]
    if missing:
        raise AllocationError(f"initial assignment misses APs {missing}")
    if isinstance(engine, BatchedEvaluator):
        return _greedy_allocate_batched(
            ap_ids, palette, initial, epsilon, max_rounds, engine,
            frozen=frozen, shards=shards,
        )
    if isinstance(engine, CompiledEvaluator):
        return _greedy_allocate_compiled(
            ap_ids, palette, initial, epsilon, max_rounds, engine,
            frozen=frozen, shards=shards,
        )
    shard_ids = [
        [ap_ids[position] for position in shard]
        for shard in _shard_lists(ap_ids, shards)
    ]
    tracer = active_tracer()
    observe = tracer.enabled
    stats_before = _engine_stats_snapshot(engine) if observe else None
    skips = 0
    aggregate = engine.reset(_reset_mapping(ap_ids, initial, frozen))
    evaluations = 1
    history: List[SwitchEvent] = []
    rounds = 0
    for round_index in range(max_rounds):
        rounds = round_index + 1
        round_start = aggregate
        improved_this_round = False
        for shard in shard_ids:
            remaining = list(shard)
            while remaining:
                best: Optional[Tuple[float, str, Channel, float]] = None
                for ap_id in remaining:
                    current = engine.channel_of(ap_id)
                    for channel in palette:
                        if channel == current:
                            if observe:
                                skips += 1
                            continue  # a no-op switch can never win
                        candidate_aggregate = engine.trial(ap_id, channel)
                        evaluations += 1
                        rank = candidate_aggregate - aggregate
                        if best is None or rank > best[0] + 1e-12:
                            best = (rank, ap_id, channel, candidate_aggregate)
                if best is None:
                    break  # palette offers nothing but no-ops
                rank, winner, channel, _ = best
                if rank <= 1e-9:
                    # No remaining AP can improve the aggregate: this
                    # shard is done for the round.
                    break
                aggregate = engine.commit(winner, channel)
                remaining.remove(winner)
                improved_this_round = True
                history.append(
                    SwitchEvent(
                        ap_id=winner,
                        channel=channel,
                        aggregate_mbps=aggregate,
                        round_index=round_index,
                    )
                )
        if not improved_this_round:
            break
        if round_start > 0 and aggregate < epsilon * round_start:
            # Less than (epsilon - 1) relative growth this round: stop.
            break
    result = AllocationResult(
        assignment=engine.assignment,
        aggregate_mbps=aggregate,
        rounds=rounds,
        evaluations=evaluations,
        history=history,
    )
    if observe:
        _record_start(tracer, engine, stats_before, result, skips)
    return result


def _greedy_allocate_compiled(
    ap_ids: Sequence[str],
    palette: Sequence[Channel],
    initial: Mapping[str, Channel],
    epsilon: float,
    max_rounds: int,
    engine: CompiledEvaluator,
    frozen: Optional[Mapping[str, Channel]] = None,
    shards: Optional[Sequence[Sequence[int]]] = None,
) -> AllocationResult:
    """Algorithm 2 on integer indices — the compiled-engine hot loop.

    Control flow, scan order, tie-breaking and stop thresholds are
    copied verbatim from the string loop above; only the id space
    changes (AP/channel indices into the compiled arrays). Channel
    interning is injective on :class:`Channel` equality, so the
    index comparison ``candidate == current`` skips exactly the
    candidates the string loop skips and every trial value is the
    identical float — the two loops make the same decisions bit for
    bit. ``frozen``/``shards`` mirror :func:`greedy_allocate`.
    """
    ap_index = engine.compiled.ap_index
    positions: List[int] = []
    for ap_id in ap_ids:
        index = ap_index.get(ap_id)
        if index is None:
            raise AllocationError(f"unknown AP {ap_id!r}")
        positions.append(index)
    shard_lists = _shard_lists(ap_ids, shards)
    palette_indices = [engine.intern(channel) for channel in palette]
    tracer = active_tracer()
    observe = tracer.enabled
    stats_before = engine.stats.as_dict() if observe else None
    skips = 0
    aggregate = engine.reset(_reset_mapping(ap_ids, initial, frozen))
    evaluations = 1
    history: List[SwitchEvent] = []
    rounds = 0
    trial_index = engine.trial_index
    channel_index_of = engine.channel_index_of
    for round_index in range(max_rounds):
        rounds = round_index + 1
        round_start = aggregate
        improved_this_round = False
        for shard in shard_lists:
            remaining = list(shard)
            while remaining:
                best: Optional[Tuple[float, int, int, float]] = None
                best_rank_floor = None
                for position in remaining:
                    ap = positions[position]
                    current = channel_index_of(ap)
                    for candidate_position, candidate in enumerate(
                        palette_indices
                    ):
                        if candidate == current:
                            if observe:
                                skips += 1
                            continue  # a no-op switch can never win
                        candidate_aggregate = trial_index(ap, candidate)
                        evaluations += 1
                        rank = candidate_aggregate - aggregate
                        if best_rank_floor is None or rank > best_rank_floor:
                            best = (
                                rank,
                                position,
                                candidate_position,
                                candidate,
                            )
                            best_rank_floor = rank + 1e-12
                if best is None:
                    break  # palette offers nothing but no-ops
                rank, winner_position, channel_position, channel_index = best
                if rank <= 1e-9:
                    # No remaining AP can improve the aggregate: this
                    # shard is done for the round.
                    break
                winner = ap_ids[winner_position]
                channel = palette[channel_position]
                aggregate = engine.commit_index(
                    positions[winner_position], channel_index
                )
                remaining.remove(winner_position)
                improved_this_round = True
                history.append(
                    SwitchEvent(
                        ap_id=winner,
                        channel=channel,
                        aggregate_mbps=aggregate,
                        round_index=round_index,
                    )
                )
        if not improved_this_round:
            break
        if round_start > 0 and aggregate < epsilon * round_start:
            # Less than (epsilon - 1) relative growth this round: stop.
            break
    result = AllocationResult(
        assignment=engine.assignment,
        aggregate_mbps=aggregate,
        rounds=rounds,
        evaluations=evaluations,
        history=history,
    )
    if observe:
        _record_start(tracer, engine, stats_before, result, skips)
    return result


class _BatchedGreedyRun:
    """One replica's greedy state machine over the batched engine.

    Replays ``_greedy_allocate_compiled``'s control flow — scan order,
    the ``1e-12`` ratchet floor, the ``1e-9`` switch threshold, the
    epsilon round stop — as an explicit state machine so a lockstep
    driver can advance many replicas one *superstep* (one inner
    while-iteration) at a time, scoring all their candidate sets in a
    single stacked batch. Candidate totals are bit-identical to
    ``trial_index``, the replayed scan compares them in the identical
    order, and commits go through ``commit_index`` — so the finished
    run equals the scalar loops bit for bit.
    """

    def __init__(
        self,
        ap_ids,
        positions,
        palette,
        palette_indices,
        initial,
        epsilon,
        max_rounds,
        batch,
        observe,
        frozen=None,
        shards=None,
    ) -> None:
        self.ap_ids = ap_ids
        self.positions = positions
        self.palette = palette
        self.palette_indices = palette_indices
        self.epsilon = epsilon
        self.max_rounds = max_rounds
        self.batch = batch
        self.engine = batch.engine
        self.observe = observe
        self.skips = 0
        self.stats_before = self.engine.stats.as_dict() if observe else None
        self.aggregate = self.engine.reset(
            _reset_mapping(ap_ids, initial, frozen)
        )
        self.evaluations = 1
        self.history: List[SwitchEvent] = []
        self.round_index = 0
        self.done = max_rounds < 1
        self.rounds = 0 if self.done else 1
        self.round_start = self.aggregate
        self.shards = _shard_lists(ap_ids, shards)
        self.shard_cursor = 0
        self.remaining = list(self.shards[0])
        self.improved = False
        # How many palette entries equal a given interned index — the
        # per-row skip count for rows pruned without a candidate scan.
        self._skip_counts: Dict[int, int] = {}
        for index in palette_indices:
            self._skip_counts[index] = self._skip_counts.get(index, 0) + 1

    def propose(self):
        """The next superstep's candidate block (None when finished)."""
        if self.done:
            return None
        return self.batch.step_block(
            self.positions, self.remaining, self.palette_indices
        )

    def absorb(self, block, totals) -> None:
        """Replay the sequential candidate scan; commit the winner."""
        engine = self.engine
        aggregate = self.aggregate
        width = block.width
        palette_indices = self.palette_indices
        chan = engine._chan
        observe = self.observe
        best: Optional[Tuple[float, int, int]] = None
        best_rank_floor = None
        evaluations = self.evaluations
        skips = self.skips
        skip_counts = self._skip_counts
        # Rows whose best value cannot beat the running ratchet floor are
        # pruned whole: subtraction by a common float is monotone, so
        # ``max(row) - aggregate <= floor`` implies every rank in the row
        # fails ``rank > floor`` — identical outcome, no per-candidate
        # scan. (A NaN row max — the scalar-fallback sentinel — compares
        # False and simply falls through to the exact scan.)
        row_maxes = (
            totals.reshape(len(self.remaining), width).max(axis=1).tolist()
            if width and len(self.remaining)
            else None
        )
        values: Optional[List[float]] = None
        base = 0
        for i, position in enumerate(self.remaining):
            current = chan[self.positions[position]]
            if (
                best_rank_floor is not None
                and row_maxes is not None
                and row_maxes[i] - aggregate <= best_rank_floor
            ):
                n_skip = skip_counts.get(current, 0)
                evaluations += width - n_skip
                if observe:
                    skips += n_skip
                base += width
                continue
            if values is None:
                values = totals.tolist()
            for candidate_position in range(width):
                if palette_indices[candidate_position] == current:
                    if observe:
                        skips += 1
                    continue  # a no-op switch can never win
                evaluations += 1
                rank = values[base + candidate_position] - aggregate
                if best_rank_floor is None or rank > best_rank_floor:
                    best = (rank, position, candidate_position)
                    best_rank_floor = rank + 1e-12
            base += width
        self.evaluations = evaluations
        self.skips = skips
        if best is None:
            self._advance_shard()
            return
        rank, winner_position, channel_position = best
        if rank <= 1e-9:
            # No remaining AP can improve the aggregate: this shard is
            # done for the round.
            self._advance_shard()
            return
        winner_ap = self.positions[winner_position]
        new_index = self.palette_indices[channel_position]
        old_index = chan[winner_ap]
        self.aggregate = engine.commit_index(winner_ap, new_index)
        self.batch.note_commit(winner_ap, old_index, new_index)
        self.remaining.remove(winner_position)
        self.improved = True
        self.history.append(
            SwitchEvent(
                ap_id=self.ap_ids[winner_position],
                channel=self.palette[channel_position],
                aggregate_mbps=self.aggregate,
                round_index=self.round_index,
            )
        )
        if not self.remaining:
            self._advance_shard()

    def _advance_shard(self) -> None:
        """Move to the round's next shard; after the last, end the round."""
        if self.shard_cursor + 1 < len(self.shards):
            self.shard_cursor += 1
            self.remaining = list(self.shards[self.shard_cursor])
            return
        self._end_round()

    def _end_round(self) -> None:
        """Round bookkeeping: stop checks, then start the next round."""
        if not self.improved:
            self.done = True
            return
        if self.round_start > 0 and self.aggregate < (
            self.epsilon * self.round_start
        ):
            # Less than (epsilon - 1) relative growth this round: stop.
            self.done = True
            return
        self.round_index += 1
        if self.round_index >= self.max_rounds:
            self.done = True
            return
        self.rounds = self.round_index + 1
        self.round_start = self.aggregate
        self.shard_cursor = 0
        self.remaining = list(self.shards[0])
        self.improved = False

    def result(self) -> AllocationResult:
        """The finished run as an :class:`AllocationResult`."""
        return AllocationResult(
            assignment=self.engine.assignment,
            aggregate_mbps=self.aggregate,
            rounds=self.rounds,
            evaluations=self.evaluations,
            history=self.history,
        )


def _drive_batched(runs, tracer, observe) -> None:
    """Advance replicas in lockstep until every run finishes.

    Each iteration stacks all active replicas' candidate blocks along
    the candidate axis, accumulates their totals in one pass, and lets
    each run replay its own scan/commit. Batch instrumentation lands on
    the tracer only when observing (NullTracer transparency).
    """
    while True:
        active = [run for run in runs if not run.done]
        if not active:
            return
        blocks = [run.propose() for run in active]
        totals = accumulate_totals(blocks)
        if observe:
            evaluated = sum(block.evaluated() for block in blocks)
            metrics = tracer.metrics
            metrics.counter("alloc.batch_evaluations").inc(evaluated)
            metrics.counter("alloc.batch_steps").inc()
            metrics.histogram(
                "alloc.batch_size", _BATCH_SIZE_BOUNDS
            ).observe(evaluated)
        for run, block, block_totals in zip(active, blocks, totals):
            run.absorb(block, block_totals)


def _positions_of(ap_ids, compiled) -> List[int]:
    """Allocator-position → compiled-AP-index mapping (validated)."""
    ap_index = compiled.ap_index
    positions: List[int] = []
    for ap_id in ap_ids:
        index = ap_index.get(ap_id)
        if index is None:
            raise AllocationError(f"unknown AP {ap_id!r}")
        positions.append(index)
    return positions


def _greedy_allocate_batched(
    ap_ids: Sequence[str],
    palette: Sequence[Channel],
    initial: Mapping[str, Channel],
    epsilon: float,
    max_rounds: int,
    batch: BatchedEvaluator,
    frozen: Optional[Mapping[str, Channel]] = None,
    shards: Optional[Sequence[Sequence[int]]] = None,
) -> AllocationResult:
    """Single-start Algorithm 2 on a caller-supplied batched engine."""
    positions = _positions_of(ap_ids, batch.engine.compiled)
    palette_indices = [batch.engine.intern(channel) for channel in palette]
    tracer = active_tracer()
    observe = tracer.enabled
    run = _BatchedGreedyRun(
        ap_ids,
        positions,
        list(palette),
        palette_indices,
        initial,
        epsilon,
        max_rounds,
        batch,
        observe,
        frozen=frozen,
        shards=shards,
    )
    _drive_batched([run], tracer, observe)
    result = run.result()
    if observe:
        _record_start(tracer, run.engine, run.stats_before, result, run.skips)
    return result


def _allocate_batched_starts(
    ap_ids,
    palette,
    starts,
    epsilon,
    max_rounds,
    compiled,
    deciding,
    associations,
    tracer,
    observe,
    frozen=None,
    shards=None,
) -> List[AllocationResult]:
    """All multi-start replicas of one allocation, evaluated in lockstep.

    Each start gets its own :class:`~repro.net.state.CompiledEvaluator`
    (committed state is per-replica) wrapping shared
    :class:`~repro.net.batch.BatchTables` (cell values are not), with
    the palette interned first so every replica shares one channel-index
    space. Results come back in start order, each bit-identical to a
    sequential run from the same start.
    """
    if epsilon < 1.0:
        raise AllocationError(
            f"epsilon is a growth factor >= 1, got {epsilon}"
        )
    if not ap_ids:
        raise AllocationError("no APs to allocate")
    positions = _positions_of(ap_ids, compiled)
    tables = BatchTables()
    runs: List[_BatchedGreedyRun] = []
    for start in starts:
        missing = [ap for ap in ap_ids if ap not in start]
        if missing:
            raise AllocationError(f"initial assignment misses APs {missing}")
        engine = CompiledEvaluator(
            compiled,
            model=deciding,
            assignment={},
            associations=associations,
        )
        palette_indices = [engine.intern(channel) for channel in palette]
        batch = BatchedEvaluator(engine, tables=tables)
        runs.append(
            _BatchedGreedyRun(
                ap_ids,
                positions,
                list(palette),
                palette_indices,
                start,
                epsilon,
                max_rounds,
                batch,
                observe,
                frozen=frozen,
                shards=shards,
            )
        )
    _drive_batched(runs, tracer, observe)
    results = []
    for run in runs:
        result = run.result()
        if observe:
            _record_start(
                tracer, run.engine, run.stats_before, result, run.skips
            )
        results.append(result)
    return results


def allocate_channels(
    network: Network,
    graph: nx.Graph,
    plan: ChannelPlan,
    model: ThroughputModel,
    associations: Optional[Mapping[str, str]] = None,
    initial: Optional[Mapping[str, Channel]] = None,
    epsilon: float = ACORN_EPSILON,
    max_rounds: int = 20,
    rng: "np.random.Generator | int | None" = None,
    decision_model: Optional[ThroughputModel] = None,
    restarts: int = 1,
    engine_mode: str = "auto",
    compiled: Optional[CompiledNetwork] = None,
    scope: Optional[Sequence[str]] = None,
    warm_start: Optional[Mapping[str, Channel]] = None,
    decomposition: Optional[ComponentDecomposition] = None,
) -> AllocationResult:
    """Run Algorithm 2 against a network.

    Parameters
    ----------
    associations:
        Client→AP mapping to optimise for; defaults to the network's
        current associations.
    initial:
        Starting assignment; defaults to the paper's random draw.
    decision_model:
        Throughput model used for the *decisions* (ACORN's estimator);
        defaults to ``model``. The returned ``aggregate_mbps`` is always
        re-measured with ``model`` — so an ablated estimator can be
        scored against ground truth.
    restarts:
        Multi-start extension: run the greedy from this many independent
        random initial assignments (plus ``initial`` if given) and keep
        the best outcome. 1 reproduces the paper's single run; the
        gradient-descent analogy in §4.2 ("can be trapped in a local
        extremum") is exactly what extra starts hedge against.
    engine_mode:
        ``"auto"`` (default) scores switches on the batched vectorized
        engine (:class:`repro.net.batch.BatchedEvaluator` over the
        compiled arrays) whenever the deciding model supports it
        (:func:`repro.net.state.supports_compiled`), falling back to
        the dict-keyed delta engine otherwise; ``"batched"``,
        ``"compiled"`` and ``"delta"`` force one engine. All engines
        are bit-equivalent, so the mode changes speed, never the
        result.
    compiled:
        A pre-built :class:`~repro.net.state.CompiledNetwork` for this
        (network, graph, plan); avoids recompiling when the caller
        already holds one (e.g. the controller or a fleet worker).
    scope:
        Restrict the greedy scan to this subset of APs (a shard); every
        AP outside the scope keeps its committed channel and still
        contributes to every trial's aggregate. Mutually exclusive with
        ``decomposition``.
    warm_start:
        A previous assignment used as the *single* start, so a
        reconfiguration resumes from the last allocation instead of
        multi-starting from scratch. Requires ``restarts == 1``,
        mutually exclusive with ``initial``, and consumes no RNG draws
        — replaying the same churn with the same seed stream is
        bit-reproducible.
    decomposition:
        A :class:`~repro.graph.components.ComponentDecomposition` of the
        interference graph. Each round then scans shard by shard
        (shard-major, round-lockstep) over the same global engine —
        a pure re-ordering of an arithmetic that is already
        shard-separable, so the result is bit-identical to the
        monolithic scan. Mutually exclusive with ``scope``.

    All starts share one evaluation engine, so the expensive
    per-(AP, channel) link mathematics is paid once and every restart
    after the first runs on warm caches.
    """
    if restarts < 1:
        raise AllocationError(f"restarts must be >= 1, got {restarts}")
    if engine_mode not in ("auto", "batched", "compiled", "delta"):
        raise AllocationError(
            f"engine_mode must be 'auto', 'batched', 'compiled' or "
            f"'delta', got {engine_mode!r}"
        )
    if warm_start is not None:
        if initial is not None:
            raise AllocationError(
                "warm_start and initial are mutually exclusive; a warm "
                "start IS the initial assignment"
            )
        if restarts != 1:
            raise AllocationError(
                f"warm_start resumes a single run; got restarts={restarts}"
            )
    if scope is not None and decomposition is not None:
        raise AllocationError(
            "scope and decomposition are mutually exclusive: scope "
            "restricts to one shard, decomposition scans them all"
        )
    all_ap_ids = network.ap_ids
    frozen: Optional[Dict[str, Channel]] = None
    if scope is not None:
        scope_set = frozenset(scope)
        known = set(all_ap_ids)
        unknown = [ap for ap in scope if ap not in known]
        if unknown:
            raise AllocationError(f"scope names unknown APs {unknown}")
        ap_ids = tuple(ap for ap in all_ap_ids if ap in scope_set)
        if not ap_ids:
            raise AllocationError("scope selects no APs")
        # Out-of-scope APs stay configured: their channels come from the
        # warm start / initial when given, else the live network.
        baseline: Dict[str, Channel] = dict(network.channel_assignment)
        if initial is not None:
            baseline.update(initial)
        if warm_start is not None:
            baseline.update(warm_start)
        frozen = {
            ap: baseline[ap]
            for ap in all_ap_ids
            if ap not in scope_set and baseline.get(ap) is not None
        }
    else:
        ap_ids = all_ap_ids
    shards: Optional[List[List[int]]] = None
    if decomposition is not None:
        shards = decomposition.position_shards(ap_ids)
    generator = make_rng(rng)
    deciding = decision_model if decision_model is not None else model

    use_batched = engine_mode == "batched" or (
        engine_mode == "auto" and supports_compiled(deciding)
    )
    use_compiled = engine_mode == "compiled"
    engine: "DeltaEvaluator | CompiledEvaluator | None"
    if use_batched or use_compiled:
        if compiled is None:
            compiled = CompiledNetwork.compile(network, graph, plan)
    if use_compiled:
        engine = CompiledEvaluator(
            compiled,
            model=deciding,
            assignment={},
            associations=(
                associations if associations is not None
                else network.associations
            ),
        )
    elif use_batched:
        engine = None  # per-replica engines built by the batched driver
    else:
        engine = DeltaEvaluator(
            network,
            graph,
            model=deciding,
            assignment={},
            associations=associations,
        )

    starts: List[Mapping[str, Channel]] = []
    if warm_start is not None:
        # The warm path must not touch the generator: a replayed seed
        # stream then drives an identical reconfiguration.
        missing = [ap for ap in ap_ids if ap not in warm_start]
        if missing:
            raise AllocationError(f"warm_start misses APs {missing}")
        starts.append(warm_start)
    else:
        if initial is not None:
            starts.append(initial)
        while len(starts) < restarts:
            starts.append(random_assignment(ap_ids, plan, generator))

    tracer = active_tracer()
    observe = tracer.enabled
    if observe:
        tracer.start("allocate")
        tracer.metrics.counter("alloc.runs").inc()
        tracer.metrics.counter("alloc.restarts").inc(len(starts) - 1)
        if warm_start is not None:
            tracer.metrics.counter("alloc.warm_starts").inc()
        if shards is not None:
            tracer.metrics.counter("alloc.shards").inc(len(shards))
        if scope is not None:
            tracer.metrics.counter("alloc.scoped_runs").inc()
    best: Optional[AllocationResult] = None
    evaluations_per_start: List[int] = []
    if use_batched:
        if observe:
            tracer.start("allocate.batch")
        results = _allocate_batched_starts(
            ap_ids,
            plan.all_channels(),
            starts,
            epsilon,
            max_rounds,
            compiled,
            deciding,
            (
                associations if associations is not None
                else network.associations
            ),
            tracer,
            observe,
            frozen=frozen,
            shards=shards,
        )
        if observe:
            tracer.end("allocate.batch")
        for result in results:
            evaluations_per_start.append(result.evaluations)
            if best is None or result.aggregate_mbps > best.aggregate_mbps:
                best = result
    else:
        for start in starts:
            if observe:
                tracer.start("allocate.start")
            result = greedy_allocate(
                ap_ids,
                plan.all_channels(),
                initial=start,
                epsilon=epsilon,
                max_rounds=max_rounds,
                engine=engine,
                frozen=frozen,
                shards=shards,
            )
            if observe:
                tracer.end("allocate.start")
            evaluations_per_start.append(result.evaluations)
            if best is None or result.aggregate_mbps > best.aggregate_mbps:
                best = result
    if observe:
        tracer.end("allocate")
    assert best is not None
    best.total_evaluations = sum(evaluations_per_start)
    best.evaluations_per_start = evaluations_per_start
    if deciding is not model:
        best.aggregate_mbps = model.aggregate_mbps(
            network,
            graph,
            assignment=best.assignment,
            associations=associations,
        )
    return best
