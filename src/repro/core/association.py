"""Algorithm 1: ACORN user association.

A newly arriving client u evaluates, for every AP i in its serving set
A_u, the utility (Eq. 4)

``U(u, i) = K_i * X^i_w,u + Σ_{j ∈ A_u, j≠i} (K_j − 1) * X^j_wo,u``

— the total throughput of the chosen cell plus the total throughput the
*other* cells retain without u — and associates with the argmax. This is
deliberately non-selfish: a poor client ends up grouped with
similar-quality clients, where it minimises the network-wide damage from
the 802.11 performance anomaly.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import AssociationError
from ..net.channels import Channel
from ..net.state import CompiledNetwork
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from .beacon import Beacon, gather_beacon

__all__ = [
    "throughput_with_mbps",
    "throughput_without_mbps",
    "association_utility",
    "choose_ap",
]


def _packet_mbits(model: ThroughputModel) -> float:
    return 8 * model.packet_bytes / 1e6


def throughput_with_mbps(beacon: Beacon, model: ThroughputModel) -> float:
    """X^i_w,u = M_i / ATD_i — per-client throughput with u on board."""
    if not math.isfinite(beacon.atd_s) or beacon.atd_s <= 0:
        return 0.0
    return beacon.m_share / beacon.atd_s * _packet_mbits(model)


def throughput_without_mbps(beacon: Beacon, model: ThroughputModel) -> float:
    """X^i_wo,u = M_i / (ATD_i − d^i_u) — per-client throughput without u.

    Undefined (returned as 0) when u would be the only client, matching
    the (K_j − 1) = 0 weight it receives in Eq. 4.
    """
    remaining = beacon.atd_s - beacon.prospective_delay_s
    if not math.isfinite(remaining) or remaining <= 0:
        return 0.0
    return beacon.m_share / remaining * _packet_mbits(model)


def association_utility(
    candidate_ap: str,
    beacons: Mapping[str, Beacon],
    model: ThroughputModel,
) -> float:
    """Eq. 4 for one candidate AP, in Mbps.

    ``beacons`` holds one beacon per AP in the client's serving set A_u.
    """
    if candidate_ap not in beacons:
        raise AssociationError(
            f"no beacon for candidate AP {candidate_ap!r}"
        )
    own = beacons[candidate_ap]
    utility = own.n_clients * throughput_with_mbps(own, model)
    for ap_id, beacon in beacons.items():
        if ap_id == candidate_ap:
            continue
        others = beacon.n_clients - 1
        if others <= 0:
            continue
        utility += others * throughput_without_mbps(beacon, model)
    return utility


def choose_ap(
    network: Network,
    graph: nx.Graph,
    model: ThroughputModel,
    client_id: str,
    candidates: Optional[Sequence[str]] = None,
    assignment: Optional[Mapping[str, Channel]] = None,
    min_snr20_db: "float | None" = None,
    compiled: Optional[CompiledNetwork] = None,
) -> Tuple[str, Dict[str, float]]:
    """Run Algorithm 1 for one client.

    Returns the chosen AP and the per-candidate utilities (useful for
    reports). Raises :class:`AssociationError` when the client hears no
    AP at a workable SNR.

    ``compiled`` (a :class:`~repro.net.state.CompiledNetwork` of the
    same network) serves the candidate scan and the beacon delay
    lookups from frozen arrays — same floats, same choice.
    """
    if min_snr20_db is None:
        from ..link.adaptation import serviceability_floor_db

        min_snr20_db = serviceability_floor_db(model.packet_bytes)
    if candidates is None:
        source = network if compiled is None else compiled
        candidates = tuple(source.candidate_aps(client_id, min_snr20_db))
    else:
        candidates = tuple(candidates)
    if not candidates:
        raise AssociationError(
            f"client {client_id!r} has no candidate APs"
        )
    beacons = {
        ap_id: gather_beacon(
            network, graph, model, ap_id, client_id, assignment,
            compiled=compiled,
        )
        for ap_id in candidates
    }
    utilities = {
        ap_id: association_utility(ap_id, beacons, model)
        for ap_id in candidates
    }
    # Deterministic argmax: highest utility, ties broken by AP id order
    # within the candidate tuple.
    best_ap = max(candidates, key=lambda ap_id: (utilities[ap_id],))
    return best_ap, utilities
