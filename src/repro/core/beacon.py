"""The modified beacon carrying ACORN's association metrics.

Section 4.1: the AP broadcasts, in its beacon, the number of associated
clients K_i (counting the prospective client u), the per-client
transmission delays d_cl, the aggregate transmission delay ATD_i, and its
channel access share M_i. From these the client derives the per-client
throughput with and without itself associated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import networkx as nx

from ..errors import AssociationError
from ..mac.airtime import medium_share
from ..net.channels import Channel
from ..net.interference import contenders
from ..net.state import CompiledNetwork, supports_compiled
from ..net.throughput import ThroughputModel
from ..net.topology import Network

__all__ = ["Beacon", "gather_beacon"]


@dataclass(frozen=True)
class Beacon:
    """The association-relevant contents of one AP's beacon, as seen by u.

    Attributes
    ----------
    ap_id:
        The transmitting AP.
    n_clients:
        K_i — the AP's client count *including* the prospective client.
    client_delays_s:
        d_cl per currently associated client.
    prospective_delay_s:
        d_u — the prospective client's own delay at this AP (measured
        by briefly associating, per the paper's methodology).
    atd_s:
        ATD_i — aggregate transmission delay including d_u.
    m_share:
        M_i — the AP's channel access share, 1/(|con_i| + 1).
    """

    ap_id: str
    n_clients: int
    client_delays_s: Mapping[str, float]
    prospective_delay_s: float
    atd_s: float
    m_share: float


def gather_beacon(
    network: Network,
    graph: nx.Graph,
    model: ThroughputModel,
    ap_id: str,
    client_id: str,
    assignment: Optional[Mapping[str, Channel]] = None,
    compiled: Optional[CompiledNetwork] = None,
) -> Beacon:
    """Compute the beacon AP ``ap_id`` would expose to client ``client_id``.

    The prospective client is counted into K_i and ATD_i exactly as the
    paper specifies (K_j "was defined as the number of clients associated
    with AP j, including client u").

    When ``compiled`` is given (and the model supports the compiled
    fast path) per-client delays are read from its precomputed rate
    tables — the identical floats the live computation derives, since
    the tables were filled through the same rate-decision cache. The
    live ``network`` still supplies the association state, which churns
    while the compiled arrays stay valid (they only freeze topology).
    """
    merged: Dict[str, Channel] = dict(network.channel_assignment)
    if assignment:
        merged.update(assignment)
    channel = merged.get(ap_id)
    if channel is None:
        raise AssociationError(
            f"AP {ap_id!r} has no channel assigned; allocate before associating"
        )
    existing = [
        client for client in network.clients_of(ap_id) if client != client_id
    ]
    if compiled is not None and supports_compiled(model):
        tables = compiled.rate_tables(model)
        width = 1 if channel.is_bonded else 0
        ap = compiled.ap_index[ap_id]
        delay_row = tables.delay[width][ap]
        client_index = compiled.client_index

        def _delay(client: str) -> float:
            index = client_index.get(client)
            if index is None or not compiled.has_link[ap, index]:
                # Unknown or linkless client: the live path raises the
                # proper topology error.
                return model.client_delay(network, ap_id, client, channel)
            return delay_row[index]

        delays = {client: _delay(client) for client in existing}
        prospective = _delay(client_id)
    else:
        delays = {
            client: model.client_delay(network, ap_id, client, channel)
            for client in existing
        }
        prospective = model.client_delay(network, ap_id, client_id, channel)
    m_share = medium_share(len(contenders(graph, ap_id, merged)))
    return Beacon(
        ap_id=ap_id,
        n_clients=len(existing) + 1,
        client_delays_s=delays,
        prospective_delay_s=prospective,
        atd_s=sum(delays.values()) + prospective,
        m_share=m_share,
    )
