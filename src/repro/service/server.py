"""JSON-lines TCP wrapper and the deterministic self-test harness.

The wire protocol is one JSON object per line, with an ``op`` field
naming the request (``admit``, ``depart``, ``beacon``, ``reconfigure``,
``status``) and the remaining fields passed as arguments; the response
is the handler's payload on one line. Malformed requests get an
``ok: False`` response instead of killing the connection.

:func:`run_self_test` is the CI smoke entry point (``repro serve
--self-test``): it boots a campus scenario, fires a scripted mix of
concurrent admissions, beacons, departures and reconfigurations, and
returns the responses plus their fingerprint — two runs of the same
script must print the same digest.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError, ServiceError
from ..net.channels import ChannelPlan
from ..net.throughput import WeightedThroughputModel
from ..net.topology import Network
from .frontend import AcornService, response_fingerprint

__all__ = ["serve_tcp", "run_self_test", "self_test_network"]

_OPS = ("admit", "depart", "beacon", "reconfigure", "status")


async def _dispatch(
    service: AcornService, request: Dict[str, Any]
) -> Dict[str, Any]:
    op = request.get("op")
    if op == "admit":
        position = request.get("position")
        return await service.admit(
            str(request.get("client")),
            position=tuple(position) if position is not None else None,
        )
    if op == "depart":
        return await service.depart(str(request.get("client")))
    if op == "beacon":
        return await service.beacon(str(request.get("client")))
    if op == "reconfigure":
        shard = request.get("shard")
        return await service.reconfigure(
            shard=int(shard) if shard is not None else None,
            warm=bool(request.get("warm", True)),
        )
    if op == "status":
        return await service.status()
    raise ServiceError(f"unknown op {op!r}; expected one of {_OPS}")


async def _handle_connection(
    service: AcornService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except asyncio.CancelledError:
                break  # server shutting down mid-read
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServiceError("request must be a JSON object")
                response = await _dispatch(service, request)
            except (json.JSONDecodeError, ReproError) as exc:
                response = {"ok": False, "error": str(exc)}
            writer.write(
                json.dumps(response, sort_keys=True).encode("ascii") + b"\n"
            )
            await writer.drain()
    finally:
        writer.close()


async def serve_tcp(
    service: AcornService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start serving ``service`` over JSON-lines TCP; returns the server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()``. The caller owns the server's
    lifetime (``async with server: await server.serve_forever()``).
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host=host, port=port
    )


def self_test_network(
    n_aps: int = 24, n_clients: int = 60, seed: int = 3
) -> Tuple[Network, List[str]]:
    """The (24, 60) smoke scenario: a fragmented campus plus clients.

    90 m spacing leaves the AP graph split into many interference
    components (the footnote-5 fragmentation regime), so the request
    script genuinely exercises shard routing, merging and per-shard
    locking rather than collapsing to one global lock.
    """
    from ..sim.timeline import campus_network

    network = campus_network(n_aps, spacing_m=90.0, seed=seed)
    rng = np.random.default_rng(seed + 1)
    aps = [network.ap(ap_id) for ap_id in network.ap_ids]
    xs = [float(ap.position[0]) for ap in aps]
    ys = [float(ap.position[1]) for ap in aps]
    span_x, span_y = max(xs) + 30.0, max(ys) + 30.0
    clients: List[str] = []
    positions = rng.uniform((0.0, 0.0), (span_x, span_y), size=(n_clients, 2))
    for index in range(n_clients):
        clients.append(f"sc{index}")
    return network, [
        json.dumps(
            {
                "client": clients[i],
                "position": [float(positions[i][0]), float(positions[i][1])],
            }
        )
        for i in range(n_clients)
    ]


async def _self_test_script(
    service: AcornService, arrivals: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    responses: List[Dict[str, Any]] = [await service.start(configure=True)]
    # Wave 1: concurrent admissions.
    responses += await asyncio.gather(
        *(
            service.admit(a["client"], position=tuple(a["position"]))
            for a in arrivals
        )
    )
    admitted = [
        r["client"] for r in responses if r.get("op") == "admit" and r["ok"]
    ]
    # Wave 2: concurrent beacon re-checks (drained in per-shard batches).
    responses += await asyncio.gather(
        *(service.beacon(client) for client in admitted[: len(admitted) // 2])
    )
    # Wave 3: a warm reconfiguration of every shard, concurrently.
    responses.append(await service.reconfigure(warm=True))
    # Wave 4: churn — every third client departs, then reconfigure again.
    responses += await asyncio.gather(
        *(service.depart(client) for client in admitted[::3])
    )
    responses.append(await service.reconfigure(warm=True))
    responses.append(await service.status())
    await service.stop()
    return responses


def run_self_test(
    n_aps: int = 24,
    n_clients: int = 60,
    seed: int = 3,
) -> Tuple[List[Dict[str, Any]], str]:
    """Run the scripted smoke mix; returns (responses, fingerprint)."""
    network, arrival_lines = self_test_network(n_aps, n_clients, seed)
    arrivals = [json.loads(line) for line in arrival_lines]
    service = AcornService(
        network, ChannelPlan(), WeightedThroughputModel(), seed=seed
    )
    responses = asyncio.run(_self_test_script(service, arrivals))
    return responses, response_fingerprint(responses)
