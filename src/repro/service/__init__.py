"""Serving layer: a shard-routed asyncio front-end for the controller.

See :mod:`repro.service.frontend` for the request model and the
determinism contract, :mod:`repro.service.server` for the JSON-lines
TCP wrapper and the self-test harness, and
:mod:`repro.service.clock` for the event-loop time seam (the only
module allowed to read ``loop.time()`` under reprolint RL001).
"""

from .clock import loop_clock
from .frontend import AcornService, response_fingerprint
from .server import run_self_test, serve_tcp

__all__ = [
    "AcornService",
    "response_fingerprint",
    "loop_clock",
    "serve_tcp",
    "run_self_test",
]
