"""Asyncio serving front-end over the :class:`~repro.core.controller.Acorn`.

The paper's controller is an offline optimiser; a campus deployment
runs it as a long-lived service that admits arriving clients, absorbs
churn, and reconfigures channels while earlier requests are still in
flight. This module supplies that layer:

* every request routes to the interference **shard** it touches
  (:attr:`Acorn.decomposition`), and independent shards are served
  concurrently under per-shard locks;
* topology mutations (admit/depart) take a global lock — client churn
  can merge or split shards, so it must not race a shard-scoped pass;
* beacon re-association checks are **batched per shard**: requests
  arriving in the same scheduling tick drain together under one lock
  acquisition and one obs span;
* shard reconfigurations **warm-start** from the shard's cached
  assignment, so steady-state churn costs a fraction of a cold
  multi-start (gated by ``benchmarks/bench_service.py``).

Every response is deterministic given the request script and the seed:
latency stamps (the only wall-dependent fields, read through the
:func:`repro.service.clock.loop_clock` seam) are segregated under the
``latency_s`` key and stripped by :func:`response_fingerprint`.

Obs spans wrap only *synchronous* compute sections. Tracer spans are a
stack; holding one across an ``await`` would interleave with other
requests' spans and corrupt the trace, so the rule here is: lock,
span, compute, close, then await.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.controller import Acorn
from ..errors import AssociationError, ReproError, ServiceError
from ..net.channels import ChannelPlan
from ..net.throughput import ThroughputModel
from ..net.topology import Network
from ..obs.tracer import active_tracer
from .clock import loop_clock

__all__ = ["AcornService", "response_fingerprint"]

# Beacon-batch size histogram buckets (requests per drain).
_BATCH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def _strip_latency(payload: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in payload.items() if k != "latency_s"}


def response_fingerprint(responses: Sequence[Dict[str, Any]]) -> str:
    """SHA-256 over the deterministic content of a response sequence.

    Latency stamps are measurement noise and are excluded; everything
    else — order included — must replay bit-identically for the same
    request script and seed, which the ``service-smoke`` CI job checks
    by diffing two runs' digests.
    """
    canonical = json.dumps(
        [_strip_latency(r) for r in responses],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


class AcornService:
    """Shard-routed asyncio front-end for one campus WLAN.

    Parameters mirror :class:`~repro.core.controller.Acorn`; the service
    owns the controller it builds. Call :meth:`start` from a running
    event loop before submitting requests.
    """

    def __init__(
        self,
        network: Network,
        plan: ChannelPlan,
        model: Optional[ThroughputModel] = None,
        seed: "int | None" = 2010,
        engine_mode: str = "auto",
        min_snr20_db: "float | None" = None,
    ) -> None:
        self.acorn = Acorn(
            network,
            plan,
            model,
            seed=seed,
            engine_mode=engine_mode,
            min_snr20_db=min_snr20_db,
        )
        self.network = network
        self._started = False
        self._global_lock: Optional[asyncio.Lock] = None
        self._shard_locks: Dict[int, asyncio.Lock] = {}
        self._beacon_pending: Dict[int, List[Tuple[str, asyncio.Future]]] = {}
        self._beacon_drains: Dict[int, asyncio.Task] = {}
        self._clock = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, configure: bool = True) -> Dict[str, Any]:
        """Boot the service: initial configuration + shard discovery."""
        if self._started:
            raise ServiceError("service already started")
        self._global_lock = asyncio.Lock()
        self._clock = loop_clock()
        began = self._clock()
        async with self._global_lock:
            tracer = active_tracer()
            if configure:
                with tracer.span("service.start"):
                    self.acorn.configure()
            decomposition = self.acorn.decomposition
        self._started = True
        return {
            "op": "start",
            "ok": True,
            "n_shards": decomposition.n_shards,
            "shards": {
                str(sid): list(decomposition.members(sid))
                for sid in decomposition.shard_ids
            },
            "latency_s": self._clock() - began,
        }

    async def stop(self) -> None:
        """Drain pending beacon batches and refuse further requests."""
        self._require_started()
        drains = list(self._beacon_drains.values())
        for task in drains:
            await task
        self._started = False

    def _require_started(self) -> None:
        if not self._started:
            raise ServiceError("service is not running; call start() first")

    def _shard_lock(self, sid: int) -> asyncio.Lock:
        lock = self._shard_locks.get(sid)
        if lock is None:
            lock = asyncio.Lock()
            self._shard_locks[sid] = lock
        return lock

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def admit(
        self,
        client_id: str,
        position: "Optional[Tuple[float, float]] | None" = None,
    ) -> Dict[str, Any]:
        """Admit one arriving client (Algorithm 1, incremental path).

        Unknown clients are first registered at ``position``. Rejection
        (no candidate AP) rolls the topology back and reports
        ``ok: False`` — the service stays consistent either way.
        """
        self._require_started()
        began = self._clock()
        async with self._global_lock:
            if client_id in self.network.client_ids:
                # Idempotent re-admit of a served client; re-admitting a
                # registered-but-unassociated client would double-patch
                # the compiled snapshot, so it is refused instead.
                current = self.network.associations.get(client_id)
                if current is not None:
                    return self._done({
                        "op": "admit",
                        "client": client_id,
                        "ok": True,
                        "ap": current,
                        "shard": self.acorn.shard_of(current),
                        "already": True,
                    }, began)
                return self._done({
                    "op": "admit",
                    "client": client_id,
                    "ok": False,
                    "reason": "client is registered but unassociated; "
                    "depart it first",
                }, began)
            if position is None:
                return self._done({
                    "op": "admit",
                    "client": client_id,
                    "ok": False,
                    "reason": "unknown client and no position given",
                }, began)
            self.network.add_client(
                client_id, (float(position[0]), float(position[1]))
            )
            tracer = active_tracer()
            try:
                with tracer.span("service.admit"):
                    ap_id = self.acorn.admit_client(
                        client_id, incremental=True
                    )
            except AssociationError as exc:
                self.network.remove_client(client_id)
                self.acorn.apply_churn(removed_clients=(client_id,))
                return self._done({
                    "op": "admit",
                    "client": client_id,
                    "ok": False,
                    "reason": str(exc),
                }, began)
            sid = self.acorn.shard_of(ap_id)
        return self._done({
            "op": "admit",
            "client": client_id,
            "ok": True,
            "ap": ap_id,
            "shard": sid,
        }, began)

    async def depart(self, client_id: str) -> Dict[str, Any]:
        """Remove a departing client and patch the derived caches."""
        self._require_started()
        began = self._clock()
        async with self._global_lock:
            if client_id not in self.network.client_ids:
                return self._done({
                    "op": "depart",
                    "client": client_id,
                    "ok": False,
                    "reason": "unknown client",
                }, began)
            tracer = active_tracer()
            with tracer.span("service.depart"):
                self.network.remove_client(client_id)
                delta = self.acorn.apply_churn(removed_clients=(client_id,))
        return self._done({
            "op": "depart",
            "client": client_id,
            "ok": True,
            "invalidated_shards": (
                list(delta.invalidated) if delta is not None else []
            ),
        }, began)

    async def reconfigure(
        self,
        shard: Optional[int] = None,
        warm: bool = True,
    ) -> Dict[str, Any]:
        """Reallocate channels — one shard, or all shards concurrently.

        With ``warm=True`` (the default) each shard resumes from its
        cached assignment when one survives churn, falling back to the
        network's committed channels; a cold pass multi-starts from
        scratch. Shards run under their own locks, so reconfigurations
        of independent components interleave freely with each other and
        with beacon batches.
        """
        self._require_started()
        began = self._clock()
        if shard is not None:
            payload = await self._reconfigure_shard(shard, warm)
            return self._done(payload, began)
        async with self._global_lock:
            sids = list(self.acorn.decomposition.shard_ids)
        results = await asyncio.gather(
            *(self._reconfigure_shard(sid, warm) for sid in sids)
        )
        total = sum(r["aggregate_mbps"] for r in results)
        evaluations = sum(r["evaluations"] for r in results)
        return self._done({
            "op": "reconfigure",
            "ok": True,
            "shards": results,
            "aggregate_mbps": total,
            "evaluations": evaluations,
        }, began)

    async def _reconfigure_shard(self, sid: int, warm: bool) -> Dict[str, Any]:
        decomposition = self.acorn.decomposition
        if sid not in decomposition.shard_ids:
            raise ServiceError(f"unknown shard {sid}")
        async with self._shard_lock(sid):
            tracer = active_tracer()
            warmable = warm and self._shard_is_warmable(sid)
            with tracer.span("service.reconfigure"):
                result = self.acorn.allocate(
                    shard=sid,
                    warm_start=warmable,
                    restarts=1 if warmable else 2,
                )
            members = decomposition.members(sid)
            return {
                "op": "reconfigure",
                "ok": True,
                "shard": sid,
                "warm": warmable,
                "assignment": {
                    ap: str(result.assignment[ap]) for ap in members
                },
                "aggregate_mbps": result.aggregate_mbps,
                "evaluations": result.total_evaluations,
                "rounds": result.rounds,
            }

    def _shard_is_warmable(self, sid: int) -> bool:
        if self.acorn.shard_assignment(sid) is not None:
            return True
        assignment = self.network.channel_assignment
        return all(
            ap in assignment for ap in self.acorn.decomposition.members(sid)
        )

    async def beacon(self, client_id: str) -> Dict[str, Any]:
        """Queue a re-association check; drained in per-shard batches.

        All beacons landing in the same scheduling tick for the same
        shard are served by one drain: one lock acquisition, one obs
        span, one ``service.beacon_batches`` increment. The response
        says whether the client moved APs.
        """
        self._require_started()
        began = self._clock()
        ap_id = self.network.associations.get(client_id)
        if ap_id is None:
            return self._done({
                "op": "beacon",
                "client": client_id,
                "ok": False,
                "reason": "client is not associated",
            }, began)
        sid = self.acorn.shard_of(ap_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._beacon_pending.setdefault(sid, []).append((client_id, future))
        if sid not in self._beacon_drains:
            self._beacon_drains[sid] = asyncio.ensure_future(
                self._drain_beacons(sid)
            )
        payload = await future
        return self._done(payload, began)

    async def _drain_beacons(self, sid: int) -> None:
        # One tick's grace so every beacon submitted in this scheduling
        # round joins the batch before the lock is taken.
        await asyncio.sleep(0)
        async with self._shard_lock(sid):
            batch = self._beacon_pending.pop(sid, [])
            self._beacon_drains.pop(sid, None)
            if not batch:
                return
            tracer = active_tracer()
            if tracer.enabled:
                tracer.metrics.counter("service.beacon_batches").inc()
                tracer.metrics.histogram(
                    "service.beacon_batch_size", _BATCH_BOUNDS
                ).observe(float(len(batch)))
            with tracer.span("service.beacon_batch"):
                for client_id, future in batch:
                    payload = self._recheck_association(client_id, sid)
                    if not future.done():
                        future.set_result(payload)

    def _recheck_association(self, client_id: str, sid: int) -> Dict[str, Any]:
        from ..core.association import choose_ap

        current = self.network.associations.get(client_id)
        try:
            best_ap, _ = choose_ap(
                self.network,
                self.acorn.graph,
                self.acorn.model,
                client_id,
                min_snr20_db=self.acorn.min_snr20_db,
            )
        except ReproError as exc:
            return {
                "op": "beacon",
                "client": client_id,
                "ok": False,
                "reason": str(exc),
            }
        moved = best_ap != current
        if moved:
            self.network.associate(client_id, best_ap)
            self.acorn.apply_churn()
        return {
            "op": "beacon",
            "client": client_id,
            "ok": True,
            "ap": best_ap,
            "moved": moved,
            "shard": sid,
        }

    async def status(self) -> Dict[str, Any]:
        """Shard map, client count and committed aggregate throughput."""
        self._require_started()
        began = self._clock()
        async with self._global_lock:
            decomposition = self.acorn.decomposition
            tracer = active_tracer()
            with tracer.span("service.status"):
                report = self.acorn.model.evaluate(
                    self.network, self.acorn.graph
                )
            payload = {
                "op": "status",
                "ok": True,
                "n_shards": decomposition.n_shards,
                "shard_sizes": {
                    str(sid): len(decomposition.members(sid))
                    for sid in decomposition.shard_ids
                },
                "n_clients": len(self.network.client_ids),
                "n_associated": len(self.network.associations),
                "total_mbps": report.total_mbps,
            }
        return self._done(payload, began)

    # ------------------------------------------------------------------
    def _done(self, payload: Dict[str, Any], began: float) -> Dict[str, Any]:
        payload["latency_s"] = self._clock() - began
        self.requests_served += 1
        tracer = active_tracer()
        if tracer.enabled:
            tracer.metrics.counter("service.requests").inc()
        return payload
