"""The event-loop time seam for :mod:`repro.service`.

Latency accounting inside the asyncio front-end reads the event loop's
monotonic clock (``loop.time()``) — the only clock that is coherent
with the loop's own scheduling (``call_later``, timeouts). Like
:mod:`repro.obs.clock` for wall timing, this module is the *single*
place allowed to touch it: reprolint RL001 flags loop-time reads
anywhere outside ``repro.service`` so simulation results can never
depend on serving-time measurements.

Everything a request handler stamps with this clock is observability
payload only — latencies are excluded from response fingerprints, which
is what keeps two runs of the same request script bit-identical.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

__all__ = ["loop_clock"]


def loop_clock(
    loop: "Optional[asyncio.AbstractEventLoop]" = None,
) -> Callable[[], float]:
    """A zero-argument monotonic-seconds callable bound to ``loop``.

    Defaults to the running loop, so handlers call
    ``clock = loop_clock()`` once and then ``clock()`` per measurement.
    Tests inject a fake by passing any object with a ``time`` attribute
    — the indirection, not the loop, is the seam.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    return loop.time
