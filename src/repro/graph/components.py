"""Interference-graph component decomposition with stable shard ids.

Footnote 5's interference graph routinely fragments: campus-scale
deployments (and the high-density regimes of Barrachina-Muñoz et al.)
consist of many disconnected components, and APs in different
components never contend — Algorithms 1 and 2 decompose exactly along
those boundaries. :class:`ComponentDecomposition` names each component
with a **stable shard id** that survives churn: client arrivals and
departures move footnote-5 edges, merging and splitting components,
and :meth:`ComponentDecomposition.update` re-derives the partition
while keeping ids attached to the surviving pieces. Stable ids are
what per-shard caches, warm-start hints and the service front-end key
on — an id change is an invalidation signal, not a cosmetic renumber.

Identity rules (deterministic, order-free of the churn path taken):

* Every shard remembers its **anchor** — its first member in AP order
  at creation time.
* A new component *claims* every old shard whose anchor it contains;
  it keeps the smallest claimed id (a merge collapses onto the oldest
  surviving id, the other ids retire).
* A component claiming no anchor (a split remainder, or brand-new
  nodes) receives a fresh id from a monotone counter — fresh ids are
  never recycled, so a retired id can never alias a new shard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import TopologyError

__all__ = ["ComponentDecomposition", "ShardDelta", "connected_members"]


def connected_members(
    ap_ids: Sequence[str], adjacency: Mapping[str, Iterable[str]]
) -> List[Tuple[str, ...]]:
    """Connected components over ``ap_ids``, deterministically ordered.

    Members within a component follow AP order; components are ordered
    by their first member. An iterative DFS keeps recursion depth off
    the table for campus-scale chains.
    """
    order = {ap_id: index for index, ap_id in enumerate(ap_ids)}
    seen: set = set()
    components: List[Tuple[str, ...]] = []
    for root in ap_ids:
        if root in seen:
            continue
        stack = [root]
        seen.add(root)
        members = [root]
        while stack:
            node = stack.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen and neighbour in order:
                    seen.add(neighbour)
                    members.append(neighbour)
                    stack.append(neighbour)
        members.sort(key=order.__getitem__)
        components.append(tuple(members))
    return components


@dataclass(frozen=True)
class ShardDelta:
    """What one :meth:`ComponentDecomposition.update` changed.

    ``created`` are fresh ids, ``retired`` are ids that no longer name
    a component, ``changed`` kept their id but not their member set,
    ``unchanged`` kept both. Per-shard caches stay valid exactly for
    ``unchanged``; everything in :attr:`invalidated` must be dropped.
    """

    created: Tuple[int, ...] = ()
    retired: Tuple[int, ...] = ()
    changed: Tuple[int, ...] = ()
    unchanged: Tuple[int, ...] = ()

    @property
    def invalidated(self) -> Tuple[int, ...]:
        """Shard ids whose derived caches are stale after the update."""
        return tuple(sorted(self.created + self.changed))

    @property
    def is_noop(self) -> bool:
        """True when the partition (ids and members) did not move."""
        return not (self.created or self.retired or self.changed)


class ComponentDecomposition:
    """A stable-id partition of the APs into interference components."""

    def __init__(
        self,
        members: Mapping[int, Sequence[str]],
        anchors: Mapping[int, str],
        next_id: int,
    ) -> None:
        self._members: Dict[int, Tuple[str, ...]] = {
            sid: tuple(group) for sid, group in members.items()
        }
        self._anchors: Dict[int, str] = dict(anchors)
        self._next_id = next_id
        self._shard_of: Dict[str, int] = {}
        for sid, group in self._members.items():
            for ap_id in group:
                self._shard_of[ap_id] = sid

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: nx.Graph, ap_ids: Optional[Sequence[str]] = None
    ) -> "ComponentDecomposition":
        """Decompose an interference graph (ids 0..k-1 in AP order)."""
        if ap_ids is None:
            ap_ids = tuple(graph.nodes)
        adjacency = {ap_id: tuple(graph.neighbors(ap_id)) for ap_id in ap_ids
                     if ap_id in graph}
        return cls.from_adjacency(ap_ids, adjacency)

    @classmethod
    def from_adjacency(
        cls,
        ap_ids: Sequence[str],
        adjacency: Mapping[str, Iterable[str]],
    ) -> "ComponentDecomposition":
        """Decompose from an explicit adjacency mapping."""
        groups = connected_members(ap_ids, adjacency)
        members = {sid: group for sid, group in enumerate(groups)}
        anchors = {sid: group[0] for sid, group in members.items()}
        return cls(members, anchors, next_id=len(groups))

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """All live shard ids, ascending."""
        return tuple(sorted(self._members))

    @property
    def n_shards(self) -> int:
        """Number of live shards."""
        return len(self._members)

    def members(self, sid: int) -> Tuple[str, ...]:
        """The APs of one shard, in AP order."""
        try:
            return self._members[sid]
        except KeyError:
            raise TopologyError(f"unknown shard id {sid}") from None

    def shard_of(self, ap_id: str) -> int:
        """The shard id owning an AP."""
        try:
            return self._shard_of[ap_id]
        except KeyError:
            raise TopologyError(f"AP {ap_id!r} is in no shard") from None

    def shards(self) -> Iterator[Tuple[int, Tuple[str, ...]]]:
        """Iterate ``(sid, members)`` in ascending shard-id order."""
        for sid in self.shard_ids:
            yield sid, self._members[sid]

    def position_shards(
        self, ap_ids: Sequence[str]
    ) -> List[List[int]]:
        """Partition positions into ``ap_ids`` by shard, id-ascending.

        The allocator-facing view: each inner list holds indices into
        ``ap_ids`` belonging to one shard, lists ordered by shard id,
        positions ascending within each list. Every AP must be covered.
        """
        by_shard: Dict[int, List[int]] = {}
        for position, ap_id in enumerate(ap_ids):
            by_shard.setdefault(self.shard_of(ap_id), []).append(position)
        return [by_shard[sid] for sid in sorted(by_shard)]

    # ------------------------------------------------------------------
    def update(
        self, graph: nx.Graph, ap_ids: Optional[Sequence[str]] = None
    ) -> ShardDelta:
        """Re-partition after churn, keeping ids stable; returns the delta."""
        if ap_ids is None:
            ap_ids = tuple(graph.nodes)
        adjacency = {ap_id: tuple(graph.neighbors(ap_id)) for ap_id in ap_ids
                     if ap_id in graph}
        groups = connected_members(ap_ids, adjacency)
        anchor_owner = {
            anchor: sid for sid, anchor in self._anchors.items()
        }
        new_members: Dict[int, Tuple[str, ...]] = {}
        new_anchors: Dict[int, str] = {}
        created: List[int] = []
        for group in groups:
            claimed = sorted(
                anchor_owner[ap_id] for ap_id in group if ap_id in anchor_owner
            )
            if claimed:
                sid = claimed[0]
                anchor = self._anchors[sid]
            else:
                sid = self._next_id
                self._next_id += 1
                anchor = group[0]
                created.append(sid)
            new_members[sid] = group
            new_anchors[sid] = anchor
        retired = sorted(set(self._members) - set(new_members))
        changed = sorted(
            sid
            for sid, group in new_members.items()
            if sid not in created and self._members.get(sid) != group
        )
        unchanged = sorted(
            sid
            for sid, group in new_members.items()
            if self._members.get(sid) == group
        )
        self._members = new_members
        self._anchors = new_anchors
        self._shard_of = {
            ap_id: sid for sid, group in new_members.items() for ap_id in group
        }
        return ShardDelta(
            created=tuple(created),
            retired=tuple(retired),
            changed=tuple(changed),
            unchanged=tuple(unchanged),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Canonical digest of the partition (ids, members, anchors)."""
        payload = {
            "members": {str(sid): list(group) for sid, group in self._members.items()},
            "anchors": {str(sid): anchor for sid, anchor in self._anchors.items()},
            "next_id": self._next_id,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {sid: len(group) for sid, group in sorted(self._members.items())}
        return f"ComponentDecomposition(shards={sizes})"
