"""Colouring utilities for the NP-completeness and approximation analysis.

Section 4.2 shows the allocation problem is NP-complete by reduction
from decision graph colouring: an assignment reaches the isolation bound
Y* exactly when the interference graph admits a conflict-free colouring
with the available palette. These helpers check conflict-freeness,
compute the worst-case 1/(Δ+1) factor, and solve small colouring
instances exactly (for tests and the Fig 14 references).
"""

from __future__ import annotations

from itertools import product
from typing import List, Mapping, Tuple

import networkx as nx

from ..errors import AllocationError
from ..net.channels import Channel

__all__ = [
    "is_conflict_free",
    "conflict_edges",
    "worst_case_ratio",
    "has_k_coloring",
    "exact_chromatic_number",
]

# Exhaustive colouring is exponential; refuse beyond this many nodes.
_MAX_EXACT_NODES = 12


def conflict_edges(
    graph: nx.Graph, assignment: Mapping[str, Channel]
) -> List[Tuple[str, str]]:
    """Interference-graph edges whose endpoints hold conflicting colours."""
    missing = [node for node in graph.nodes if node not in assignment]
    if missing:
        raise AllocationError(f"assignment misses APs {missing}")
    conflicts = []
    for a, b in graph.edges:
        if assignment[a].conflicts_with(assignment[b]):
            conflicts.append((a, b))
    return conflicts


def is_conflict_free(
    graph: nx.Graph, assignment: Mapping[str, Channel]
) -> bool:
    """True when no interfering APs share spectrum — the Y*-achieving case."""
    return not conflict_edges(graph, assignment)


def worst_case_ratio(graph: nx.Graph) -> float:
    """The paper's worst-case approximation factor 1/(Δ+1).

    The worst local optimum of Algorithm 2 has every AP on literally the
    same colour, each receiving a 1/(deg+1) share; the aggregate is then
    at least Y*/(Δ+1).
    """
    if graph.number_of_nodes() == 0:
        raise AllocationError("empty interference graph")
    delta = max(degree for _, degree in graph.degree())
    return 1.0 / (delta + 1.0)


def has_k_coloring(graph: nx.Graph, k: int) -> bool:
    """Exhaustively decide classic k-colourability (small graphs only)."""
    if k < 0:
        raise AllocationError(f"k must be non-negative, got {k}")
    nodes = list(graph.nodes)
    if not nodes:
        return True
    if k == 0:
        return False
    if len(nodes) > _MAX_EXACT_NODES:
        raise AllocationError(
            f"{len(nodes)} nodes exceeds the exact-colouring limit "
            f"{_MAX_EXACT_NODES}"
        )
    for colouring in product(range(k), repeat=len(nodes)):
        colour = dict(zip(nodes, colouring))
        if all(colour[a] != colour[b] for a, b in graph.edges):
            return True
    return False


def exact_chromatic_number(graph: nx.Graph) -> int:
    """χ(G) by exhaustive search (small graphs only)."""
    if graph.number_of_nodes() == 0:
        return 0
    for k in range(1, graph.number_of_nodes() + 1):
        if has_k_coloring(graph, k):
            return k
    raise AllocationError("unreachable: every graph is n-colourable")
