"""Graph-colouring theory behind the allocation problem."""

from .coloring import (
    conflict_edges,
    exact_chromatic_number,
    has_k_coloring,
    is_conflict_free,
    worst_case_ratio,
)

__all__ = [
    "is_conflict_free",
    "conflict_edges",
    "worst_case_ratio",
    "has_k_coloring",
    "exact_chromatic_number",
]
