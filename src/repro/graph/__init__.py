"""Graph-colouring theory and component structure of the allocation problem."""

from .coloring import (
    conflict_edges,
    exact_chromatic_number,
    has_k_coloring,
    is_conflict_free,
    worst_case_ratio,
)
from .components import ComponentDecomposition, ShardDelta, connected_members

__all__ = [
    "is_conflict_free",
    "conflict_edges",
    "worst_case_ratio",
    "has_k_coloring",
    "exact_chromatic_number",
    "ComponentDecomposition",
    "ShardDelta",
    "connected_members",
]
