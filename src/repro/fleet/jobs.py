"""Declarative sweep specifications and picklable job records.

A :class:`SweepSpec` describes an evaluation campaign the way the paper's
Sections 6-7 (and the channel-bonding literature it spawned) phrase one:
a grid of scenario × seed × algorithm × traffic cells, optionally
augmented with an explicit job list for off-grid cells. ``expand()``
turns the spec into deterministic, picklable :class:`Job` records that
worker processes can execute independently.

Determinism contract: every job carries its own
``numpy.random.SeedSequence`` state, spawned from the spec's root
entropy via ``SeedSequence.spawn`` — so a job's random stream depends
only on the spec and the job's position in the expansion, never on
which worker runs it or in what order. Two expansions of the same spec
are bit-identical, which is what makes the checkpoint journal's
resume-by-job-id sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import FleetError
from ..net.state import CompiledNetwork
from ..sim.scenario import scenario_accepts, scenario_names

__all__ = [
    "CompiledScenario",
    "DEFAULT_ENGINE_MODE",
    "Job",
    "SweepSpec",
    "TRAFFIC_MODELS",
    "payload_key",
]

# Engine mode every fleet job runs with: the batched evaluator is the
# fastest path and bit-identical to the scalar engines, so campaign
# results are unchanged while wall-clock drops.
DEFAULT_ENGINE_MODE = "batched"

# Traffic models understood by the job runner (repro.sim.traffic).
TRAFFIC_MODELS = ("udp", "tcp")

# A grid scenario entry: a registered name, or (name, factory kwargs).
ScenarioEntry = Union[str, Tuple[str, Mapping[str, Any]]]


def _canonical(data: Any) -> str:
    """Stable JSON used for fingerprints and job-id digests."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Job:
    """One executable sweep cell (picklable, JSON-serialisable).

    Attributes
    ----------
    job_id:
        Deterministic identifier — the journal's resume key.
    scenario / scenario_kwargs:
        Registered scenario name and the factory kwargs (including the
        scenario ``seed`` when the factory accepts one).
    algorithm:
        Name in the executor's algorithm registry (e.g. ``"acorn"``).
    traffic:
        ``"udp"`` or ``"tcp"``.
    seed:
        The grid seed of this cell (reporting axis; also fed to the
        scenario factory when it takes a ``seed``).
    entropy / spawn_key:
        ``numpy.random.SeedSequence`` state for this job's private
        random stream (drives e.g. ACORN's random initial channels).
    """

    job_id: str
    scenario: str
    scenario_kwargs: Dict[str, Any] = field(default_factory=dict)
    algorithm: str = "acorn"
    traffic: str = "udp"
    seed: int = 0
    entropy: int = 0
    spawn_key: Tuple[int, ...] = ()

    def seed_sequence(self) -> np.random.SeedSequence:
        """This job's private ``SeedSequence`` (reconstructed from state)."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=tuple(self.spawn_key)
        )

    def rng(self) -> np.random.Generator:
        """A fresh generator over this job's private seed stream."""
        return np.random.default_rng(self.seed_sequence())

    def build_scenario(self):
        """Materialise the scenario (resolved through the registry)."""
        from ..sim.scenario import make_scenario

        return make_scenario(self.scenario, **self.scenario_kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (journal header / debugging)."""
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "scenario_kwargs": dict(self.scenario_kwargs),
            "algorithm": self.algorithm,
            "traffic": self.traffic,
            "seed": self.seed,
            "entropy": self.entropy,
            "spawn_key": list(self.spawn_key),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Inverse of :meth:`to_dict`."""
        return cls(
            job_id=data["job_id"],
            scenario=data["scenario"],
            scenario_kwargs=dict(data.get("scenario_kwargs", {})),
            algorithm=data.get("algorithm", "acorn"),
            traffic=data.get("traffic", "udp"),
            seed=int(data.get("seed", 0)),
            entropy=int(data.get("entropy", 0)),
            spawn_key=tuple(data.get("spawn_key", ())),
        )


def payload_key(job: "Job") -> str:
    """The cell identity a compiled payload is valid for.

    Jobs that share a (scenario, factory-kwargs) pair build identical
    networks, so one compiled payload serves them all — algorithm,
    traffic and grid seed do not enter the key.
    """
    return _canonical(
        {"scenario": job.scenario, "kwargs": dict(job.scenario_kwargs)}
    )


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario frozen into compiled arrays — the fleet wire format.

    Workers receiving one skip the scenario factory (geometry, link
    budgets, palette construction) and thaw the compiled network
    instead: :meth:`to_scenario` yields a pristine
    :class:`~repro.sim.scenario.Scenario` whose network is
    bit-equivalent to a factory build (same fingerprint), so job
    results are identical with or without the payload.

    Attributes
    ----------
    compiled:
        The frozen network (picklable; per-model rate-table caches are
        process-local and dropped on the wire).
    channel_numbers / bonded_pairs:
        Plain numbers reconstructing the scenario's
        :class:`~repro.net.channels.ChannelPlan`.
    key:
        The :func:`payload_key` of the cell this payload was compiled
        for; :meth:`matches` guards against cross-cell reuse.
    checks:
        The scenario's invariant checks (frozen
        :class:`~repro.sim.checks.InvariantCheck` instances — picklable
        by class reference), re-attached on thaw so workers evaluate
        them exactly as a factory build would.
    """

    name: str
    description: str
    compiled: CompiledNetwork
    channel_numbers: Tuple[int, ...]
    bonded_pairs: Tuple[Tuple[int, int], ...]
    client_order: Tuple[str, ...]
    key: str
    checks: Tuple[Any, ...] = ()

    @classmethod
    def from_scenario(cls, scenario, key: str = "") -> "CompiledScenario":
        """Freeze a built scenario (``key`` from :func:`payload_key`)."""
        plan = scenario.plan
        return cls(
            name=scenario.name,
            description=scenario.description,
            compiled=CompiledNetwork.compile(scenario.network, plan=plan),
            channel_numbers=tuple(plan.channel_numbers),
            bonded_pairs=tuple(plan.bonded_pairs),
            client_order=tuple(scenario.client_order),
            key=key,
            checks=tuple(getattr(scenario, "checks", ())),
        )

    @classmethod
    def from_job(cls, job: "Job") -> "CompiledScenario":
        """Build and freeze the scenario of one sweep cell."""
        return cls.from_scenario(job.build_scenario(), key=payload_key(job))

    def matches(self, job: "Job") -> bool:
        """Whether this payload was compiled for ``job``'s cell."""
        return self.key == payload_key(job)

    def to_scenario(self):
        """Thaw into a pristine, mutable scenario (fresh per call)."""
        from ..net.channels import ChannelPlan
        from ..sim.scenario import Scenario

        scenario = Scenario(
            name=self.name,
            network=self.compiled.thaw(),
            plan=ChannelPlan(self.channel_numbers, self.bonded_pairs),
            client_order=list(self.client_order),
            description=self.description,
            checks=tuple(self.checks),
        )
        scenario._factory = self.to_scenario
        return scenario


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: grid axes and/or an explicit job list.

    Parameters
    ----------
    scenarios:
        Grid axis of scenario entries — registered names, or
        ``(name, kwargs)`` pairs for parameterised deployments.
    seeds:
        Grid axis of integer seeds. Each seed is passed to the scenario
        factory when it accepts one (``random_enterprise`` does;
        ``topology1`` does not) and always labels the cell.
    algorithms:
        Grid axis of algorithm names (see
        :func:`repro.fleet.executor.algorithm_names`).
    traffic:
        Grid axis of traffic models (``"udp"`` / ``"tcp"``).
    explicit:
        Extra off-grid cells, each a mapping with any of ``scenario``,
        ``scenario_kwargs``, ``algorithm``, ``traffic``, ``seed``.
    entropy:
        Root entropy for the per-job ``SeedSequence.spawn`` streams.
    """

    scenarios: Tuple[ScenarioEntry, ...] = ("random",)
    seeds: Tuple[int, ...] = (0,)
    algorithms: Tuple[str, ...] = ("acorn",)
    traffic: Tuple[str, ...] = ("udp",)
    explicit: Tuple[Mapping[str, Any], ...] = ()
    entropy: int = 2010

    def __post_init__(self) -> None:
        # Normalise list inputs into tuples so the spec stays hashable
        # and its fingerprint is insensitive to the caller's container.
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "traffic", tuple(self.traffic))
        object.__setattr__(self, "explicit", tuple(self.explicit))
        if not (self.scenarios or self.explicit):
            raise FleetError("a sweep needs at least one scenario or explicit job")
        if self.scenarios and not self.seeds:
            raise FleetError("a sweep grid needs at least one seed")
        for traffic in self.traffic:
            if traffic not in TRAFFIC_MODELS:
                raise FleetError(
                    f"unknown traffic model {traffic!r}; "
                    f"expected one of {TRAFFIC_MODELS}"
                )

    # ------------------------------------------------------------------
    def _cells(self) -> List[Dict[str, Any]]:
        """The flat (pre-seed-spawn) cell list: grid then explicit."""
        known = set(scenario_names())
        cells: List[Dict[str, Any]] = []
        for entry in self.scenarios:
            if isinstance(entry, str):
                name, kwargs = entry, {}
            else:
                name, kwargs = entry[0], dict(entry[1])
            if name not in known:
                raise FleetError(
                    f"sweep references unregistered scenario {name!r}; "
                    f"registered: {', '.join(sorted(known))}"
                )
            for seed in self.seeds:
                for algorithm in self.algorithms:
                    for traffic in self.traffic:
                        cell_kwargs = dict(kwargs)
                        if "seed" not in cell_kwargs and scenario_accepts(
                            name, "seed"
                        ):
                            cell_kwargs["seed"] = int(seed)
                        cells.append(
                            {
                                "scenario": name,
                                "scenario_kwargs": cell_kwargs,
                                "algorithm": algorithm,
                                "traffic": traffic,
                                "seed": int(seed),
                            }
                        )
        for extra in self.explicit:
            cell = {
                "scenario": extra.get("scenario", "random"),
                "scenario_kwargs": dict(extra.get("scenario_kwargs", {})),
                "algorithm": extra.get("algorithm", "acorn"),
                "traffic": extra.get("traffic", "udp"),
                "seed": int(extra.get("seed", 0)),
            }
            if cell["scenario"] not in known:
                raise FleetError(
                    f"explicit job references unregistered scenario "
                    f"{cell['scenario']!r}"
                )
            if cell["traffic"] not in TRAFFIC_MODELS:
                raise FleetError(
                    f"explicit job has unknown traffic {cell['traffic']!r}"
                )
            cells.append(cell)
        return cells

    def expand(self) -> List[Job]:
        """Expand into deterministic :class:`Job` records.

        Validates algorithm names against the executor registry and
        spawns one child ``SeedSequence`` per job from the spec's root
        entropy, so re-expanding the same spec is bit-identical.
        """
        from .executor import algorithm_names

        known_algorithms = set(algorithm_names())
        cells = self._cells()
        root = np.random.SeedSequence(self.entropy)
        children = root.spawn(len(cells))
        jobs: List[Job] = []
        for index, (cell, child) in enumerate(zip(cells, children)):
            if cell["algorithm"] not in known_algorithms:
                raise FleetError(
                    f"unknown algorithm {cell['algorithm']!r}; registered: "
                    f"{', '.join(sorted(known_algorithms))}"
                )
            digest = hashlib.sha256(
                _canonical(
                    {key: value for key, value in cell.items()}
                ).encode()
            ).hexdigest()[:8]
            job_id = (
                f"{index:04d}-{cell['scenario']}-{cell['algorithm']}"
                f"-{cell['traffic']}-s{cell['seed']}-{digest}"
            )
            jobs.append(
                Job(
                    job_id=job_id,
                    scenario=cell["scenario"],
                    scenario_kwargs=cell["scenario_kwargs"],
                    algorithm=cell["algorithm"],
                    traffic=cell["traffic"],
                    seed=cell["seed"],
                    entropy=int(child.entropy),
                    spawn_key=tuple(int(k) for k in child.spawn_key),
                )
            )
        if len({job.job_id for job in jobs}) != len(jobs):
            raise FleetError("sweep expansion produced duplicate job ids")
        return jobs

    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec — the journal compatibility key."""
        payload = {
            "scenarios": [
                entry
                if isinstance(entry, str)
                else [entry[0], dict(sorted(dict(entry[1]).items()))]
                for entry in self.scenarios
            ],
            "seeds": list(self.seeds),
            "algorithms": list(self.algorithms),
            "traffic": list(self.traffic),
            "explicit": [dict(sorted(dict(e).items())) for e in self.explicit],
            "entropy": self.entropy,
        }
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()
