"""Typed per-job results and the sweep-level aggregate store.

A :class:`JobResult` is the unit the executor produces and the journal
checkpoints: the deterministic metrics of one (scenario, seed,
algorithm, traffic) cell — aggregate throughput, Jain fairness,
proportional-fair utility, allocator work counters — plus
non-deterministic bookkeeping (wall-clock, attempt count) kept separate
so that resumed and uninterrupted runs compare bit-identical.

A :class:`ResultStore` aggregates JobResults and feeds the existing
analysis helpers: :func:`repro.analysis.stats.ecdf` /
:func:`~repro.analysis.stats.summary_statistics` for distributions and
:func:`repro.analysis.tables.render_table` for the report table.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from ..analysis.stats import ecdf, summary_statistics
from ..analysis.tables import render_table
from ..errors import FleetError

__all__ = ["JobResult", "ResultStore"]

_canonical = lambda data: json.dumps(  # noqa: E731 — one shared idiom
    data, sort_keys=True, separators=(",", ":")
)


@dataclass
class JobResult:
    """Outcome of one sweep job.

    ``metrics`` and ``per_ap_mbps`` are the deterministic payload (pure
    functions of the job record); ``attempts``, ``elapsed_s`` and the
    optional ``trace`` (a serialized :mod:`repro.obs` payload recorded
    under ``--profile``) are execution bookkeeping excluded from
    :meth:`deterministic_dict` — wall-clock spans can never perturb a
    resume fingerprint.
    """

    job_id: str
    scenario: str
    algorithm: str
    traffic: str
    seed: int
    status: str = "ok"
    metrics: Dict[str, float] = field(default_factory=dict)
    per_ap_mbps: Dict[str, float] = field(default_factory=dict)
    checks: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    trace: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when the job ran to completion."""
        return self.status == "ok"

    @property
    def check_failures(self) -> List[Dict[str, Any]]:
        """Violated invariant-check verdicts (empty when all passed).

        A violation is data, not an error: the job's ``status`` stays
        ``"ok"`` and its metrics are valid — the scenario simply did
        not uphold an invariant it declared.
        """
        return [v for v in self.checks if not v.get("passed", True)]

    def deterministic_dict(self) -> Dict[str, Any]:
        """The payload that must be identical across reruns and resumes."""
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "traffic": self.traffic,
            "seed": self.seed,
            "status": self.status,
            "metrics": dict(self.metrics),
            "per_ap_mbps": dict(self.per_ap_mbps),
            "checks": [dict(v) for v in self.checks],
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-compatible form (what the journal records)."""
        data = self.deterministic_dict()
        data["attempts"] = self.attempts
        data["elapsed_s"] = self.elapsed_s
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        """Rebuild a result from its journal/JSON form."""
        return cls(
            job_id=data["job_id"],
            scenario=data.get("scenario", ""),
            algorithm=data.get("algorithm", ""),
            traffic=data.get("traffic", "udp"),
            seed=int(data.get("seed", 0)),
            status=data.get("status", "ok"),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            per_ap_mbps={
                k: float(v) for k, v in data.get("per_ap_mbps", {}).items()
            },
            checks=[dict(v) for v in data.get("checks", [])],
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            trace=data.get("trace"),
        )


class ResultStore:
    """Aggregate over a sweep's :class:`JobResult` records.

    Results are keyed by ``job_id``; adding a result for an id that is
    already present replaces it (last write wins — matching the
    journal's retry semantics). ``reloaded`` counts results restored
    from a checkpoint journal rather than executed this run.
    """

    def __init__(self, spec_fingerprint: Optional[str] = None) -> None:
        self._results: Dict[str, JobResult] = {}
        self.spec_fingerprint = spec_fingerprint
        self.reloaded = 0

    # -- container protocol -------------------------------------------
    def add(self, result: JobResult) -> None:
        """Insert (or replace) one result."""
        self._results[result.job_id] = result

    def extend(self, results: Iterable[JobResult]) -> None:
        """Insert many results."""
        for result in results:
            self.add(result)

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results())

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._results

    def get(self, job_id: str) -> Optional[JobResult]:
        """The result for ``job_id``, or None."""
        return self._results.get(job_id)

    def results(self) -> List[JobResult]:
        """All results, sorted by job id (the canonical order)."""
        return [self._results[key] for key in sorted(self._results)]

    @property
    def completed(self) -> List[JobResult]:
        """Results with status ``ok``."""
        return [r for r in self.results() if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        """Results that ended failed / timed out / crashed."""
        return [r for r in self.results() if not r.ok]

    def check_violations(self) -> List[Dict[str, Any]]:
        """Invariant-check violations across the sweep, in job-id order.

        Each entry is ``{"job_id", "scenario", "check", "detail"}`` —
        the rows ``repro sweep`` prints under its summary and the
        ``--enforce-checks`` gate counts.
        """
        violations: List[Dict[str, Any]] = []
        for result in self.results():
            for verdict in result.check_failures:
                violations.append(
                    {
                        "job_id": result.job_id,
                        "scenario": result.scenario,
                        "check": verdict.get("name", "?"),
                        "detail": verdict.get("detail", ""),
                    }
                )
        return violations

    # -- analysis ------------------------------------------------------
    def metric_values(
        self, metric: str, algorithm: Optional[str] = None
    ) -> np.ndarray:
        """Values of ``metric`` over completed jobs (optionally filtered)."""
        values = [
            result.metrics[metric]
            for result in self.completed
            if metric in result.metrics
            and (algorithm is None or result.algorithm == algorithm)
        ]
        return np.asarray(values, dtype=float)

    def metric_ecdf(self, metric: str, algorithm: Optional[str] = None):
        """ECDF of a metric — plugs into the Table 3 style comparisons."""
        return ecdf(self.metric_values(metric, algorithm))

    def by_algorithm(self) -> Dict[str, List[JobResult]]:
        """Completed results grouped by algorithm name."""
        groups: Dict[str, List[JobResult]] = {}
        for result in self.completed:
            groups.setdefault(result.algorithm, []).append(result)
        return groups

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-algorithm summary statistics of the aggregate throughput."""
        summaries: Dict[str, Dict[str, float]] = {}
        for algorithm, results in sorted(self.by_algorithm().items()):
            totals = [r.metrics.get("total_mbps", 0.0) for r in results]
            stats = summary_statistics(totals)
            jain = [
                r.metrics["jain"] for r in results if "jain" in r.metrics
            ]
            stats["mean_jain"] = float(np.mean(jain)) if jain else float("nan")
            summaries[algorithm] = stats
        return summaries

    def summary_table(self, title: str = "Sweep summary") -> str:
        """Human-readable per-algorithm table (``analysis.tables``)."""
        rows = []
        for algorithm, stats in self.summary().items():
            rows.append(
                [
                    algorithm,
                    int(stats["n"]),
                    stats["mean"],
                    stats["median"],
                    stats["min"],
                    stats["max"],
                    stats["mean_jain"],
                ]
            )
        if not rows:
            return f"{title}: no completed jobs"
        return render_table(
            [
                "algorithm",
                "jobs",
                "mean Y (Mbps)",
                "median",
                "min",
                "max",
                "mean Jain",
            ],
            rows,
            float_format=".2f",
            title=title,
        )

    # -- persistence / identity ---------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the sorted deterministic payloads.

        Two stores fingerprint equal iff every job produced bit-identical
        deterministic results — the acceptance check for resume.
        """
        payload = [result.deterministic_dict() for result in self.results()]
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()

    def to_json(self, path: "str | pathlib.Path") -> None:
        """Persist the store (deterministic payloads + bookkeeping)."""
        data = {
            "spec_fingerprint": self.spec_fingerprint,
            "results": [result.to_dict() for result in self.results()],
        }
        pathlib.Path(path).write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_json(cls, path: "str | pathlib.Path") -> "ResultStore":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"cannot load result store from {path}: {exc}")
        store = cls(spec_fingerprint=data.get("spec_fingerprint"))
        store.extend(
            JobResult.from_dict(record) for record in data.get("results", [])
        )
        return store
