"""Fault-tolerant sweep execution: process pool, timeouts, retries.

The executor turns :class:`~repro.fleet.jobs.Job` records into
:class:`~repro.fleet.results.JobResult` records:

* **Parallel** — a ``ProcessPoolExecutor`` (fork context) with chunked
  dispatch: at most ``2 × workers`` jobs are in flight, so a 10k-cell
  sweep never materialises 10k pickled futures at once.
* **Per-job wall-clock timeout** — enforced *inside* the worker via
  ``SIGALRM`` (where available), so a diverging job cannot wedge a
  worker forever; it surfaces as a ``timeout`` result.
* **Bounded retry with exponential backoff** — jobs that time out or
  crash the worker are resubmitted up to ``retries`` extra times;
  deterministic library errors (:class:`~repro.errors.ReproError`)
  are *not* retried, they would fail identically.
* **Graceful degradation** — ``max_workers=1``, a missing ``fork``
  start method, or a platform without ``SIGALRM`` falls back to plain
  in-process serial execution with identical semantics and results
  (per-job randomness is carried by the job record, not the runner).

Every finished job is checkpointed to the optional
:class:`~repro.fleet.journal.JobJournal` before the next one is
dispatched, which is what makes ``--resume`` after a SIGKILL lossless.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import signal
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.fairness import throughput_fairness_report
from ..errors import FleetError, JobTimeout, ReproError
from ..obs.tracer import Tracer, activate, active_tracer
from ..sim.checks import evaluate_network_checks, evaluate_result_checks
from .jobs import CompiledScenario, Job, SweepSpec, payload_key
from .journal import JobJournal
from .results import JobResult, ResultStore

__all__ = [
    "ALGORITHMS",
    "register_algorithm",
    "algorithm_names",
    "execute_job",
    "run_sweep",
]


# ----------------------------------------------------------------------
# Algorithm registry: name → runner(scenario, traffic, rng) returning
# (NetworkReport, extra-metrics dict).

def _make_model(traffic: str):
    from ..net.throughput import ThroughputModel
    from ..sim.traffic import TcpTraffic

    if traffic == "tcp":
        return ThroughputModel(traffic=TcpTraffic())
    return ThroughputModel()


def _run_acorn(scenario, traffic, rng, refine=False):
    from ..core.controller import Acorn
    from .jobs import DEFAULT_ENGINE_MODE

    acorn = Acorn(
        scenario.network,
        scenario.plan,
        _make_model(traffic),
        seed=rng,
        engine_mode=DEFAULT_ENGINE_MODE,
    )
    result = acorn.configure(scenario.client_order, refine=refine)
    extra = {
        "evaluations": float(result.allocation.total_evaluations),
        "rounds": float(result.allocation.rounds),
    }
    return result.report, extra


def _run_acorn_refine(scenario, traffic, rng):
    return _run_acorn(scenario, traffic, rng, refine=True)


def _run_acorn_sharded(scenario, traffic, rng):
    """ACORN with the final allocation run shard-major over components.

    The configure pass is the standard pipeline; the closing allocation
    re-runs warm over the component decomposition — same assignment and
    aggregate as the monolithic scan (the sharded-equivalence
    guarantee), with the per-shard evaluation savings reported as an
    extra metric.
    """
    from ..core.controller import Acorn
    from .jobs import DEFAULT_ENGINE_MODE

    acorn = Acorn(
        scenario.network,
        scenario.plan,
        _make_model(traffic),
        seed=rng,
        engine_mode=DEFAULT_ENGINE_MODE,
    )
    result = acorn.configure(scenario.client_order)
    cold_evaluations = result.allocation.total_evaluations
    allocation = acorn.allocate(sharded=True, warm_start=True)
    report = acorn.model.evaluate(acorn.network, acorn.graph)
    extra = {
        "evaluations": float(allocation.total_evaluations),
        "cold_evaluations": float(cold_evaluations),
        "rounds": float(allocation.rounds),
        "n_shards": float(acorn.decomposition.n_shards),
    }
    return report, extra


def _run_kauffmann(scenario, traffic, rng):
    from ..baselines.kauffmann import KauffmannController

    controller = KauffmannController(
        scenario.network, scenario.plan, _make_model(traffic)
    )
    result = controller.configure(scenario.client_order)
    return result.report, {}


def _run_acorn_timeline(scenario, traffic, rng):
    """Timeline sweep cell: an hour of churn over the scenario's APs.

    Arrivals/departures follow the CRAWDAD session model with
    incremental recompilation per event; the reported network state is
    the end-of-horizon configuration, with the time-series aggregates
    riding along as extra metrics.
    """
    from ..net.interference import build_interference_graph
    from ..sim.timeline import (
        TimelineConfig,
        place_client_random_links,
        place_client_uniform,
        run_timeline,
    )

    network = scenario.network
    geometric = all(
        network.ap(ap_id).position is not None for ap_id in network.ap_ids
    )
    config = TimelineConfig(
        horizon_s=3600.0,
        arrival_rate_per_s=1 / 120.0,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    model = _make_model(traffic)
    result = run_timeline(
        network,
        scenario.plan,
        config,
        model,
        client_factory=(
            place_client_uniform if geometric else place_client_random_links
        ),
    )
    report = model.evaluate(network, build_interference_graph(network))
    extra = {
        "mean_mbps": float(result.mean_throughput_mbps),
        "arrivals": float(result.n_arrivals),
        "departures": float(result.n_departures),
        "rejected": float(result.n_rejected),
        "epochs": float(result.n_epochs),
        "peak_clients": float(result.peak_clients),
        "reconfig_wall_s": float(result.mean_reconfig_wall_s),
    }
    return report, extra


ALGORITHMS: Dict[str, Callable] = {
    "acorn": _run_acorn,
    "acorn_refine": _run_acorn_refine,
    "acorn_sharded": _run_acorn_sharded,
    "acorn_timeline": _run_acorn_timeline,
    "kauffmann": _run_kauffmann,
}


def register_algorithm(name: str, runner: Callable) -> None:
    """Register ``runner(scenario, traffic, rng) -> (report, extra)``.

    Registration must happen at import time (or before the pool forks)
    for worker processes to see it; the default fork context inherits
    the registry, the spawn context re-imports modules instead.
    """
    existing = ALGORITHMS.get(name)
    if existing is not None and existing is not runner:
        raise FleetError(f"algorithm {name!r} is already registered")
    ALGORITHMS[name] = runner


def algorithm_names() -> List[str]:
    """The registered algorithm names, sorted."""
    return sorted(ALGORITHMS)


# ----------------------------------------------------------------------
# Single-job execution (runs inside the worker process).

@contextlib.contextmanager
def _wall_clock_alarm(timeout_s: Optional[float]):
    """Raise :class:`JobTimeout` after ``timeout_s`` (best effort).

    Uses ``SIGALRM``, so it only engages on the main thread of a POSIX
    process — exactly where pool workers and the serial path run. When
    unavailable the job simply runs unbounded.
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded its {timeout_s:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_job(
    job: Job,
    timeout_s: Optional[float] = None,
    payload: Optional[CompiledScenario] = None,
    profile: bool = False,
) -> JobResult:
    """Run one job to a :class:`JobResult` (never raises on job failure).

    Library errors are captured as ``status="failed"``, a blown
    wall-clock budget as ``status="timeout"``; any other exception as
    ``status="crashed"`` (the retryable class). The deterministic
    metrics come from the job's private seed stream only.

    ``payload`` — a :class:`~repro.fleet.jobs.CompiledScenario` compiled
    for this job's cell — replaces the scenario-factory rebuild with a
    thaw of the shipped arrays; the thawed network is bit-equivalent,
    so the result is identical either way. A payload compiled for a
    different cell is a caller bug and fails the job deterministically.

    ``profile=True`` runs the algorithm under a fresh worker-local
    :class:`~repro.obs.tracer.Tracer` and attaches its serialized
    payload as ``JobResult.trace`` on successful jobs — the journal
    persists it and ``repro trace <journal>`` merges the payloads back
    into one sweep-level report. The tracer never changes the metrics
    (pinned by ``tests/test_obs_transparency.py``).
    """
    start = time.perf_counter()
    base = dict(
        job_id=job.job_id,
        scenario=job.scenario,
        algorithm=job.algorithm,
        traffic=job.traffic,
        seed=job.seed,
    )
    tracer: Optional[Tracer] = None
    try:
        runner = ALGORITHMS.get(job.algorithm)
        if runner is None:
            raise FleetError(
                f"unknown algorithm {job.algorithm!r}; registered: "
                f"{', '.join(sorted(ALGORITHMS))}"
            )
        if payload is not None and not payload.matches(job):
            raise FleetError(
                f"compiled payload for cell {payload.key!r} does not match "
                f"job {job.job_id!r}"
            )
        with _wall_clock_alarm(timeout_s):
            scenario = (
                payload.to_scenario()
                if payload is not None
                else job.build_scenario()
            )
            # Structural invariants run against the pristine build,
            # before the algorithm touches the network. Violations are
            # recorded on the result, never raised.
            check_verdicts = evaluate_network_checks(scenario)
            if profile:
                tracer = Tracer()
                with activate(tracer):
                    report, extra = runner(scenario, job.traffic, job.rng())
            else:
                report, extra = runner(scenario, job.traffic, job.rng())
    except JobTimeout as exc:
        return JobResult(
            status="timeout",
            error=str(exc),
            elapsed_s=time.perf_counter() - start,
            **base,
        )
    except ReproError as exc:
        return JobResult(
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - start,
            **base,
        )
    except Exception as exc:  # worker bug / OOM / etc — retryable
        return JobResult(
            status="crashed",
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - start,
            **base,
        )
    per_ap = {
        ap_id: float(mbps)
        for ap_id, mbps in sorted(report.per_ap_mbps.items())
    }
    fairness = throughput_fairness_report(per_ap.values())
    metrics = {
        "total_mbps": float(fairness["total"]),
        "jain": float(fairness["jain"]),
        "pf_utility": float(fairness["pf_utility"]),
        "min_ap_mbps": float(fairness["min"]),
        "max_ap_mbps": float(fairness["max"]),
        "n_aps": float(len(per_ap)),
        "n_associated": float(len(report.associations)),
    }
    metrics.update({key: float(value) for key, value in extra.items()})
    check_verdicts = check_verdicts + evaluate_result_checks(
        getattr(scenario, "checks", ()), metrics
    )
    return JobResult(
        status="ok",
        metrics=metrics,
        per_ap_mbps=per_ap,
        checks=[verdict.to_dict() for verdict in check_verdicts],
        elapsed_s=time.perf_counter() - start,
        trace=tracer.to_payload() if tracer is not None else None,
        **base,
    )


# ----------------------------------------------------------------------
# Sweep orchestration.

_RETRYABLE = ("timeout", "crashed")


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _backoff(attempt: int, base_s: float) -> float:
    return base_s * (2.0 ** max(0, attempt - 1))


def _run_serial(
    jobs: Sequence[Job],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    on_result: Callable[[JobResult], None],
    payloads: "Optional[Mapping[str, Optional[CompiledScenario]]]" = None,
    profile: bool = False,
) -> None:
    payloads = payloads or {}
    for job in jobs:
        attempts = 0
        while True:
            attempts += 1
            result = execute_job(
                job, timeout_s, payloads.get(payload_key(job)), profile
            )
            if result.status in _RETRYABLE and attempts <= retries:
                time.sleep(_backoff(attempts, backoff_s))
                continue
            result.attempts = attempts
            on_result(result)
            break


def _run_pool(
    jobs: Sequence[Job],
    workers: int,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    on_result: Callable[[JobResult], None],
    payloads: "Optional[Mapping[str, Optional[CompiledScenario]]]" = None,
    profile: bool = False,
) -> None:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    payloads = payloads or {}
    context = multiprocessing.get_context("fork")
    attempts: Dict[str, int] = {job.job_id: 0 for job in jobs}
    queue: "deque[Tuple[Job, float]]" = deque((job, 0.0) for job in jobs)
    window = max(1, 2 * workers)  # chunked dispatch: bound in-flight work

    def _terminal(job: Job, status: str, error: str) -> None:
        on_result(
            JobResult(
                job_id=job.job_id,
                scenario=job.scenario,
                algorithm=job.algorithm,
                traffic=job.traffic,
                seed=job.seed,
                status=status,
                error=error,
                attempts=attempts[job.job_id],
            )
        )

    executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    futures: Dict = {}
    try:
        while queue or futures:
            now = time.monotonic()
            requeue: List[Tuple[Job, float]] = []
            while queue and len(futures) < window:
                job, ready_at = queue.popleft()
                if ready_at > now and futures:
                    # Still backing off; revisit after the next wait().
                    requeue.append((job, ready_at))
                    continue
                if ready_at > now:
                    time.sleep(ready_at - now)
                attempts[job.job_id] += 1
                futures[
                    executor.submit(
                        execute_job,
                        job,
                        timeout_s,
                        payloads.get(payload_key(job)),
                        profile,
                    )
                ] = job
            queue.extend(requeue)
            if not futures:
                continue
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            broken: List[Job] = []
            for future in done:
                job = futures.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault, OOM-kill); the whole
                    # pool is unusable. Collect and rebuild below.
                    broken.append(job)
                    continue
                except Exception as exc:  # dispatch/unpickling failure
                    result = JobResult(
                        job_id=job.job_id,
                        scenario=job.scenario,
                        algorithm=job.algorithm,
                        traffic=job.traffic,
                        seed=job.seed,
                        status="crashed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if (
                    result.status in _RETRYABLE
                    and attempts[job.job_id] <= retries
                ):
                    queue.append(
                        (
                            job,
                            time.monotonic()
                            + _backoff(attempts[job.job_id], backoff_s),
                        )
                    )
                    continue
                result.attempts = attempts[job.job_id]
                on_result(result)
            if broken:
                # Retry every job that was in flight when the pool broke.
                in_flight = broken + list(futures.values())
                futures.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
                for job in in_flight:
                    if attempts[job.job_id] <= retries:
                        queue.append(
                            (
                                job,
                                time.monotonic()
                                + _backoff(attempts[job.job_id], backoff_s),
                            )
                        )
                    else:
                        _terminal(
                            job, "crashed", "worker process died (pool broken)"
                        )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    backoff_s: float = 0.05,
    journal_path: "Optional[str]" = None,
    resume: bool = False,
    progress: Optional[Callable[[JobResult], None]] = None,
    precompile: bool = True,
    profile: bool = False,
) -> ResultStore:
    """Run a sweep to a :class:`ResultStore`, checkpointing as it goes.

    Parameters
    ----------
    spec:
        The sweep to expand and execute.
    workers:
        Process count. ``1`` (or a platform without the ``fork`` start
        method) runs serially in-process.
    timeout_s:
        Per-job wall-clock budget (None = unbounded). Enforced via
        ``SIGALRM`` inside each worker, so it also works serially.
    retries:
        Extra attempts for jobs that time out or crash. Deterministic
        :class:`~repro.errors.ReproError` failures are never retried.
    backoff_s:
        Base of the exponential retry backoff
        (``backoff_s * 2**(attempt-1)``).
    journal_path:
        Optional JSONL checkpoint journal. With ``resume=True`` an
        existing journal's completed jobs are *reloaded*, not
        recomputed; without it the journal is truncated and rewritten.
    progress:
        Callback invoked once per freshly executed job (not for
        reloaded ones), in completion order.
    precompile:
        Compile each distinct (scenario, kwargs) cell once up front and
        ship the frozen arrays to workers (default). Jobs sharing a
        cell reuse one :class:`~repro.fleet.jobs.CompiledScenario`
        instead of re-running the scenario factory per job; results are
        bit-identical either way. ``False`` restores the per-job
        factory rebuild.
    profile:
        Run every job under a worker-local
        :class:`~repro.obs.tracer.Tracer` and attach the serialized
        span/counter payload to its result (and journal record). The
        driver additionally folds per-job bookkeeping — job counts,
        retries, timeouts, wall-clock histogram, checkpoint flushes —
        into whichever tracer is active *in the driver process* (see
        :func:`repro.obs.tracer.activate`); with the default
        ``NullTracer`` that bookkeeping is skipped entirely.

    Returns the store over all jobs (reloaded + fresh). The store's
    :meth:`~repro.fleet.results.ResultStore.fingerprint` is independent
    of ``workers`` and of interruption/resume boundaries.
    """
    if workers < 1:
        raise FleetError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise FleetError(f"retries must be >= 0, got {retries}")
    jobs = spec.expand()
    store = ResultStore(spec_fingerprint=spec.fingerprint())

    journal: Optional[JobJournal] = None
    done: Mapping[str, JobResult] = {}
    if journal_path is not None:
        journal = JobJournal(journal_path)
        if resume:
            done = journal.completed_results(spec.fingerprint())
    known_ids = {job.job_id for job in jobs}
    for job_id, result in done.items():
        if job_id in known_ids:
            store.add(result)
            store.reloaded += 1
    pending = [job for job in jobs if job.job_id not in store]

    payloads: Dict[str, Optional[CompiledScenario]] = {}
    if precompile:
        for job in pending:
            key = payload_key(job)
            if key not in payloads:
                try:
                    payloads[key] = CompiledScenario.from_job(job)
                except ReproError:
                    # A broken cell must fail per-job (status="failed"),
                    # not abort the sweep: leave it to the in-job build.
                    payloads[key] = None

    if journal is not None:
        journal.start(spec.fingerprint(), len(jobs), fresh=not resume)

    tracer = active_tracer()

    def _on_result(result: JobResult) -> None:
        store.add(result)
        if journal is not None:
            journal.record(result)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("fleet.jobs").inc()
            if result.status == "timeout":
                metrics.counter("fleet.timeouts").inc()
            if result.attempts > 1:
                metrics.counter("fleet.retries").inc(result.attempts - 1)
            metrics.histogram("fleet.job_seconds").observe(result.elapsed_s)
            if journal is not None:
                metrics.counter("fleet.checkpoint_flushes").inc()
        if progress is not None:
            progress(result)

    try:
        if workers == 1 or not _fork_available() or not pending:
            _run_serial(
                pending,
                timeout_s,
                retries,
                backoff_s,
                _on_result,
                payloads,
                profile,
            )
        else:
            _run_pool(
                pending,
                workers,
                timeout_s,
                retries,
                backoff_s,
                _on_result,
                payloads,
                profile,
            )
    finally:
        if journal is not None:
            journal.close()
    return store
