"""Parallel sweep orchestration with checkpoint/resume.

The evaluation layer above a single configuration run: declare a sweep
(:class:`SweepSpec`), shard it across worker processes
(:func:`run_sweep`), checkpoint every finished cell to an append-only
JSONL journal (:class:`JobJournal`), and aggregate the typed results
(:class:`ResultStore`). A sweep killed mid-run resumes losslessly —
completed jobs are reloaded from the journal, never recomputed — and
the final store is bit-identical to an uninterrupted serial run.

Quickstart::

    from repro.fleet import SweepSpec, run_sweep

    spec = SweepSpec(
        scenarios=(("random", {"n_aps": 5, "n_clients": 12}),),
        seeds=tuple(range(50)),
        algorithms=("acorn", "kauffmann"),
    )
    store = run_sweep(spec, workers=4, journal_path="sweep.jsonl")
    print(store.summary_table())
"""

from .executor import (
    ALGORITHMS,
    algorithm_names,
    execute_job,
    register_algorithm,
    run_sweep,
)
from .jobs import (
    TRAFFIC_MODELS,
    CompiledScenario,
    Job,
    SweepSpec,
    payload_key,
)
from .journal import JobJournal
from .results import JobResult, ResultStore

__all__ = [
    "ALGORITHMS",
    "TRAFFIC_MODELS",
    "CompiledScenario",
    "Job",
    "JobJournal",
    "JobResult",
    "ResultStore",
    "SweepSpec",
    "algorithm_names",
    "execute_job",
    "payload_key",
    "register_algorithm",
    "run_sweep",
]
