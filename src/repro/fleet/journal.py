"""Append-only JSONL checkpoint journal for sweep runs.

One line per event: a ``header`` line binding the journal to a
:class:`~repro.fleet.jobs.SweepSpec` fingerprint, then one ``job`` line
per finished job (ok, failed, timeout or crashed). Every append is
flushed and fsynced, so a driver killed mid-run (even SIGKILL) loses at
most the final, partially-written line — which :meth:`JobJournal.load`
tolerates by ignoring any undecodable tail. Resume therefore reduces
to: load, keep the last ``ok`` record per job id, skip those ids.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import FleetError
from .results import JobResult

__all__ = ["JobJournal"]

_FORMAT_VERSION = 1


class JobJournal:
    """Durable per-job checkpointing for :func:`repro.fleet.run_sweep`.

    Parameters
    ----------
    path:
        The JSONL file. Created (with its parent directory) on
        :meth:`start`; appended to on :meth:`record`.
    """

    def __init__(self, path: "str | pathlib.Path") -> None:
        self.path = pathlib.Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Read the journal: ``(header, job_records)``.

        Missing file → ``(None, [])``. A truncated or corrupt final line
        (the SIGKILL case) is ignored; corruption *before* the last line
        raises :class:`FleetError` because silently dropping interior
        results would recompute jobs the caller believes are done.
        """
        if not self.path.exists():
            return None, []
        raw_lines = self.path.read_text(encoding="utf-8").split("\n")
        # Anything after the final newline is a partial write.
        complete, tail = raw_lines[:-1], raw_lines[-1]
        header: Optional[Dict[str, Any]] = None
        records: List[Dict[str, Any]] = []
        for index, line in enumerate(complete):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(complete) - 1 and not tail:
                    # Torn final line that happened to end in a newline.
                    break
                raise FleetError(
                    f"corrupt journal {self.path} at line {index + 1}: {exc}"
                )
            if event.get("type") == "header":
                if event.get("version") != _FORMAT_VERSION:
                    raise FleetError(
                        f"journal {self.path} has unsupported version "
                        f"{event.get('version')!r}"
                    )
                header = event
            elif event.get("type") == "job":
                records.append(event)
        return header, records

    def completed_results(
        self, spec_fingerprint: Optional[str] = None
    ) -> Dict[str, JobResult]:
        """The last ``ok`` result per job id (the resume set).

        When ``spec_fingerprint`` is given, the journal's header must
        match — resuming a journal written by a *different* sweep would
        silently mix incompatible cells.
        """
        header, records = self.load()
        if header is None:
            return {}
        if (
            spec_fingerprint is not None
            and header.get("spec") != spec_fingerprint
        ):
            raise FleetError(
                f"journal {self.path} was written by a different sweep "
                f"(spec {header.get('spec')!r:.20} != {spec_fingerprint!r:.20}); "
                "use a fresh --out path or rerun without --resume"
            )
        done: Dict[str, JobResult] = {}
        for record in records:
            if record.get("status") == "ok":
                result = JobResult.from_dict(record)
                done[result.job_id] = result
        return done

    # ------------------------------------------------------------------
    def start(self, spec_fingerprint: str, n_jobs: int, fresh: bool) -> None:
        """Open for appending; write the header when starting fresh.

        ``fresh=True`` truncates any existing file; ``fresh=False``
        (resume) keeps it and only writes a header if none exists yet.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        had_header = False
        if not fresh and self.path.exists():
            header, _ = self.load()
            had_header = header is not None
        self._handle = open(
            self.path, "w" if fresh else "a", encoding="utf-8"
        )
        if fresh or not had_header:
            self._append(
                {
                    "type": "header",
                    "version": _FORMAT_VERSION,
                    "spec": spec_fingerprint,
                    "n_jobs": n_jobs,
                }
            )

    def record(self, result: JobResult) -> None:
        """Checkpoint one finished job (flushed and fsynced)."""
        event = {"type": "job", **result.to_dict()}
        self._append(event)

    def _append(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            raise FleetError(
                f"journal {self.path} is not open; call start() first"
            )
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        """Context-manager support (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()
