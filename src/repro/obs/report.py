"""Trace merging and report rendering for profiled runs and sweeps.

A *trace payload* is the JSON dict produced by
:meth:`repro.obs.tracer.Tracer.to_payload` — spans plus a metrics
snapshot. Fleet workers attach one per profiled job
(``JobResult.trace``), the journal persists them, and this module folds
any number of payloads into one merged view: span records concatenate,
metric instruments combine order-independently (counters add, gauges
max, histogram buckets add — see :mod:`repro.obs.metrics`), so a
32-worker sweep and its serial rerun render the same report.

``repro trace <journal>`` and the ``--profile`` CLI flags both end
here: :func:`render_trace_text` for the human table,
:func:`render_trace_json` for machines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..analysis.tables import render_table
from ..errors import FleetError, ObsError
from .metrics import MetricsRegistry

__all__ = [
    "merge_traces",
    "journal_trace",
    "render_trace_text",
    "render_trace_json",
    "trace_report",
]


def merge_traces(payloads: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold trace payloads into one (order of ``payloads`` is immaterial).

    Spans concatenate (each record already carries its own clock
    readings); metrics merge through the registry's commutative
    combine. Returns an empty trace for an empty iterable.
    """
    spans: List[Dict[str, Any]] = []
    registry = MetricsRegistry()
    for payload in payloads:
        spans.extend(dict(record) for record in payload.get("spans", ()))
        registry.merge_payload(payload.get("metrics", {}))
    return {"spans": spans, "metrics": registry.to_payload()}


def journal_trace(path: "str | pathlib.Path") -> Dict[str, Any]:
    """The merged trace of a sweep journal.

    Reads the JSONL journal written by :func:`repro.fleet.run_sweep`,
    merges every job's serialized trace payload (jobs recorded without
    ``--profile`` simply contribute none) and adds the fleet-level
    counters derivable from the job records themselves — job count per
    status, retries, and the wall-clock histogram — so even an
    unprofiled journal yields a useful report.
    """
    from ..fleet.journal import JobJournal

    journal = JobJournal(path)
    header, records = journal.load()
    if header is None and not records:
        raise ObsError(f"no journal at {path} (or it is empty)")

    payloads = [
        record["trace"]
        for record in records
        if isinstance(record.get("trace"), Mapping)
    ]
    merged = merge_traces(payloads)
    registry = MetricsRegistry.from_payload(merged["metrics"])
    for record in records:
        status = record.get("status", "ok")
        registry.counter(f"fleet.jobs.{status}").inc()
        attempts = int(record.get("attempts", 1))
        if attempts > 1:
            registry.counter("fleet.retries").inc(attempts - 1)
        registry.histogram("fleet.job_seconds").observe(
            float(record.get("elapsed_s", 0.0))
        )
    merged["metrics"] = registry.to_payload()
    return merged


def _span_rows(spans: Iterable[Mapping[str, Any]]) -> List[List[Any]]:
    """Aggregate span records into per-name count/total/mean/max rows."""
    totals: Dict[str, List[float]] = {}
    for record in spans:
        duration_ms = (
            float(record["end_s"]) - float(record["start_s"])
        ) * 1e3
        entry = totals.setdefault(record["name"], [0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += duration_ms
        entry[2] = max(entry[2], duration_ms)
    rows = []
    for name in sorted(totals, key=lambda n: -totals[n][1]):
        count, total_ms, max_ms = totals[name]
        rows.append(
            [name, int(count), total_ms, total_ms / count, max_ms]
        )
    return rows


def render_trace_text(
    payload: Mapping[str, Any], title: str = "Trace report"
) -> str:
    """Human-readable report: span table, counters, histograms."""
    blocks: List[str] = []
    span_rows = _span_rows(payload.get("spans", ()))
    if span_rows:
        blocks.append(
            render_table(
                ["span", "count", "total ms", "mean ms", "max ms"],
                span_rows,
                float_format=".2f",
                title=f"{title} — spans",
            )
        )
    metrics = payload.get("metrics", {})
    counter_rows = [
        [name, value]
        for name, value in sorted(metrics.get("counters", {}).items())
    ]
    gauge_rows = [
        [name, value]
        for name, value in sorted(metrics.get("gauges", {}).items())
        if value is not None
    ]
    if counter_rows or gauge_rows:
        blocks.append(
            render_table(
                ["metric", "value"],
                counter_rows + gauge_rows,
                float_format=".0f",
                title=f"{title} — counters",
            )
        )
    histogram_rows = []
    for name, data in sorted(metrics.get("histograms", {}).items()):
        count = int(data.get("count", 0))
        if not count:
            continue
        total = float(data.get("total", 0.0))
        histogram_rows.append(
            [
                name,
                count,
                total / count,
                data.get("min", 0.0),
                data.get("max", 0.0),
            ]
        )
    if histogram_rows:
        blocks.append(
            render_table(
                ["distribution", "count", "mean", "min", "max"],
                histogram_rows,
                float_format=".4f",
                title=f"{title} — distributions",
            )
        )
    series_rows = []
    for name, samples in sorted(metrics.get("series", {}).items()):
        if not samples:
            continue
        values = [float(sample[1]) for sample in samples]
        times = [float(sample[0]) for sample in samples]
        series_rows.append(
            [
                name,
                len(samples),
                min(times),
                max(times),
                sum(values) / len(values),
                min(values),
                max(values),
            ]
        )
    if series_rows:
        blocks.append(
            render_table(
                ["series", "samples", "t min", "t max", "mean", "min", "max"],
                series_rows,
                float_format=".4f",
                title=f"{title} — time series",
            )
        )
    if not blocks:
        return f"{title}: empty trace (run with --profile to record one)"
    return "\n\n".join(blocks)


def render_trace_json(payload: Mapping[str, Any]) -> str:
    """Canonical JSON form of a trace payload (sorted keys)."""
    return json.dumps(payload, indent=2, sort_keys=True)


def trace_report(
    path: "str | pathlib.Path", fmt: str = "text", title: Optional[str] = None
) -> str:
    """The ``repro trace <run>`` entry point: journal → rendered report."""
    if fmt not in ("text", "json"):
        raise ObsError(f"format must be 'text' or 'json', got {fmt!r}")
    try:
        merged = journal_trace(path)
    except FleetError as exc:
        raise ObsError(f"cannot read trace from {path}: {exc}") from exc
    if fmt == "json":
        return render_trace_json(merged)
    return render_trace_text(
        merged, title=title if title is not None else f"Trace of {path}"
    )
