"""Typed metric instruments and the per-tracer registry.

Three instrument kinds, chosen so that *merging* payloads from fleet
workers is order-independent (every combine step is commutative and
associative):

* :class:`Counter` — monotone event count; merge **adds**.
* :class:`Gauge` — a level observed at least once; merge takes the
  **max** (last-write-wins would depend on worker completion order).
* :class:`Histogram` — bucketed distribution with exact count/total/
  min/max; merge adds bucket counts and combines the extremes.
* :class:`TimeSeries` — timestamped samples (per-epoch throughput,
  fairness, reconfiguration latency in the timeline simulator); merge
  **concatenates and re-sorts** by ``(t, value)``, which commutes.

A :class:`MetricsRegistry` holds instruments by name with get-or-create
semantics; re-registering a name under a different instrument type is a
bug and raises :class:`~repro.errors.ObsError`. Payloads (plain JSON
dicts) round-trip through :meth:`MetricsRegistry.to_payload` /
:meth:`MetricsRegistry.merge_payload`, which is how worker traces ride
the fleet's JSONL journal back to the driver.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ObsError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "TimeSeries"]

# Default histogram bucket upper bounds (seconds-flavoured, log-spaced);
# one overflow bucket is appended implicitly.
_DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ObsError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def merge_value(self, value: float) -> None:
        """Fold another worker's count in (addition — order-free)."""
        if value < 0:
            raise ObsError(
                f"counter {self.name!r} cannot absorb a negative count"
            )
        self.value += value


class Gauge:
    """A level (queue depth, cache size) observed at least once."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def merge_value(self, value: Optional[float]) -> None:
        """Fold another worker's level in (max — order-free)."""
        if value is None:
            return
        self.value = value if self.value is None else max(self.value, value)


class Histogram:
    """A bucketed distribution with exact count, total, min and max.

    ``bounds`` are ascending bucket *upper* bounds; observations greater
    than the last bound land in an implicit overflow bucket, so
    ``len(counts) == len(bounds) + 1``.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float] = _DEFAULT_BOUNDS
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ObsError(
                f"histogram {self.name!r} bounds must be strictly "
                f"ascending, got {self.bounds}"
            )
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations (None when empty)."""
        return self.total / self.count if self.count else None

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold another histogram's payload in (bounds must match)."""
        bounds = tuple(float(b) for b in other.get("bounds", ()))
        if bounds != self.bounds:
            raise ObsError(
                f"histogram {self.name!r} bounds mismatch on merge: "
                f"{self.bounds} != {bounds}"
            )
        for index, count in enumerate(other.get("counts", ())):
            self.counts[index] += int(count)
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total", 0.0))
        for extreme, pick in (("min", min), ("max", max)):
            theirs = other.get(extreme)
            if theirs is None:
                continue
            ours = getattr(self, extreme)
            setattr(
                self,
                extreme,
                theirs if ours is None else pick(ours, float(theirs)),
            )


class TimeSeries:
    """Timestamped samples on a simulated (or wall) time axis.

    The instrument behind the timeline simulator's per-epoch outputs:
    each :meth:`append` records ``(t, value)``. Merging concatenates the
    two sample lists and re-sorts by ``(t, value)`` — commutative and
    associative like every other merge here, so fleet workers can land
    in any order. Timestamps carry whatever clock the caller uses
    (simulated seconds for timelines); they are data, not wall-clock
    reads.
    """

    kind = "series"

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def append(self, t: float, value: float) -> None:
        """Record one sample at time ``t``."""
        self.samples.append((float(t), float(value)))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    def merge(self, samples: "Sequence[Sequence[float]]") -> None:
        """Fold another worker's samples in (concat + sort — order-free)."""
        for sample in samples:
            t, value = sample
            self.samples.append((float(t), float(value)))
        self.samples.sort()


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    One registry belongs to one :class:`~repro.obs.tracer.Tracer`; the
    fleet driver merges worker payloads into its own registry via
    :meth:`merge_payload`, which commutes — any interleaving of worker
    completions yields the same merged payload.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, name: str, kind: str, factory) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ObsError(
                f"metric {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = _DEFAULT_BOUNDS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, "histogram", lambda: Histogram(name, bounds))

    def series(self, name: str) -> TimeSeries:
        """The time series called ``name`` (created on first use)."""
        return self._get(name, "series", lambda: TimeSeries(name))

    # -- payloads ------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-compatible snapshot of every instrument."""
        counters = {}
        gauges = {}
        histograms = {}
        series = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.kind == "counter":
                counters[name] = instrument.value
            elif instrument.kind == "gauge":
                gauges[name] = instrument.value
            elif instrument.kind == "series":
                series[name] = [list(sample) for sample in instrument.samples]
            else:
                histograms[name] = {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": series,
        }

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_payload` snapshot into this registry."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name).merge_value(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).merge_value(value)
        for name, data in payload.get("histograms", {}).items():
            self.histogram(
                name, tuple(data.get("bounds", _DEFAULT_BOUNDS))
            ).merge(data)
        for name, samples in payload.get("series", {}).items():
            self.series(name).merge(samples)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot."""
        registry = cls()
        registry.merge_payload(payload)
        return registry
