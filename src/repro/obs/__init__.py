"""Observability: tracing, counters and profiling for the hot path.

The subsystem has one hard contract, pinned by
``tests/test_obs_transparency.py``: **observed runs are bit-identical
to unobserved runs**. Instrumented library code (allocator loops, the
evaluation engines' stat bridge, controller caches, fleet jobs) guards
every recording behind a single ``tracer.enabled`` attribute check
against the :class:`NullTracer` default, so the disabled mode costs one
boolean read per instrumented block — gated at <2% end-to-end by
``benchmarks/bench_obs.py``.

Quickstart::

    from repro.obs import Tracer, activate

    tracer = Tracer()
    with activate(tracer):
        acorn.configure(scenario.client_order)
    print(render_trace_text(tracer.to_payload()))

Clocks are injected (:mod:`repro.obs.clock` is the RL001-approved
seam), metric merges are order-independent across fleet workers
(:mod:`repro.obs.metrics`), and sweep journals replay into merged
reports via ``repro trace <journal>`` (:mod:`repro.obs.report`).
"""

from .clock import ManualClock, monotonic_clock
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .report import (
    journal_trace,
    merge_traces,
    render_trace_json,
    render_trace_text,
    trace_report,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    active_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TimeSeries",
    "Tracer",
    "activate",
    "active_tracer",
    "journal_trace",
    "merge_traces",
    "monotonic_clock",
    "render_trace_json",
    "render_trace_text",
    "trace_report",
]
